"""Shared fixtures for the test suite."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Make `tests.helpers` / `tests.strategies` importable as plain modules.
sys.path.insert(0, str(Path(__file__).parent))

from repro.exec import faults  # noqa: E402
from repro.graph import GraphDatabase, generate_database  # noqa: E402

from helpers import paper_like_data, paper_like_query  # noqa: E402


@pytest.fixture(autouse=True)
def _no_leaked_faults():
    """Injected faults are process-global; never let one leak across tests."""
    faults.clear()
    yield
    faults.clear()


@pytest.fixture(scope="session")
def small_db() -> GraphDatabase:
    """20 random connected graphs — the workhorse database fixture."""
    return generate_database(
        num_graphs=20, num_vertices=12, avg_degree=2.8, num_labels=4, seed=42,
        name="small",
    )


@pytest.fixture(scope="session")
def dense_db() -> GraphDatabase:
    """A handful of denser graphs (stress for enumeration/index tests)."""
    return generate_database(
        num_graphs=6, num_vertices=20, avg_degree=6.0, num_labels=3, seed=7,
        name="dense",
    )


@pytest.fixture()
def square_query():
    return paper_like_query()


@pytest.fixture()
def square_data():
    return paper_like_data()
