"""Hypothesis strategies for graphs, queries and matching instances."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.graph import Graph, bfs_query, generate_graph, random_walk_query


@st.composite
def labeled_graphs(
    draw,
    min_vertices: int = 1,
    max_vertices: int = 10,
    max_labels: int = 3,
    connected: bool = False,
):
    """An arbitrary labeled undirected graph (optionally connected)."""
    n = draw(st.integers(min_vertices, max_vertices))
    labels = draw(
        st.lists(st.integers(0, max_labels - 1), min_size=n, max_size=n)
    )
    all_pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    if connected and n > 1:
        # Random spanning tree first, then optional extras.
        parents = [draw(st.integers(0, i - 1)) for i in range(1, n)]
        tree_edges = {(min(i + 1, p), max(i + 1, p)) for i, p in enumerate(parents)}
        extra_flags = draw(
            st.lists(st.booleans(), min_size=len(all_pairs), max_size=len(all_pairs))
        )
        edges = sorted(
            tree_edges
            | {pair for pair, keep in zip(all_pairs, extra_flags) if keep and draw(st.booleans())}
        )
    else:
        flags = draw(
            st.lists(st.booleans(), min_size=len(all_pairs), max_size=len(all_pairs))
        )
        edges = [pair for pair, keep in zip(all_pairs, flags) if keep]
    return Graph.from_edge_list(labels, edges)


@st.composite
def connected_graphs(draw, min_vertices: int = 1, max_vertices: int = 10, max_labels: int = 3):
    return draw(
        labeled_graphs(
            min_vertices=min_vertices,
            max_vertices=max_vertices,
            max_labels=max_labels,
            connected=True,
        )
    )


@st.composite
def random_data_graphs(
    draw,
    min_vertices: int = 6,
    max_vertices: int = 16,
    max_degree: float = 4.0,
    max_labels: int = 4,
):
    """A seeded :func:`generate_graph` output (always connected)."""
    n = draw(st.integers(min_vertices, max_vertices))
    degree = draw(st.floats(1.0, max_degree))
    num_labels = draw(st.integers(1, max_labels))
    seed = draw(st.integers(0, 2**32 - 1))
    return generate_graph(n, degree, num_labels, seed=seed)


@st.composite
def matching_instances(draw, guaranteed_match: bool | None = None):
    """A (query, data) pair for subgraph matching.

    ``guaranteed_match=True`` samples the query from the data graph (so at
    least one embedding exists); ``False`` draws an independent random
    query (may or may not match); ``None`` mixes both.
    """
    data = draw(random_data_graphs())
    if guaranteed_match is None:
        guaranteed_match = draw(st.booleans())
    if guaranteed_match:
        num_edges = draw(st.integers(1, min(6, data.num_edges)))
        dense = draw(st.booleans())
        seed = draw(st.integers(0, 2**32 - 1))
        generator = bfs_query if dense else random_walk_query
        query = generator(data, num_edges, seed=seed)
        if query is None:
            query = random_walk_query(data, 1, seed=seed)
        assert query is not None
    else:
        query = draw(connected_graphs(min_vertices=2, max_vertices=6, max_labels=4))
    return query, data
