"""Tests for repro.matching.base (interface contracts and outcomes)."""

from __future__ import annotations

import pytest

from repro.matching import (
    CFLMatcher,
    CFQLMatcher,
    GraphQLMatcher,
    MatchOutcome,
    QuickSIMatcher,
    SPathMatcher,
    TurboIsoMatcher,
    UllmannMatcher,
    VF2Matcher,
)

from helpers import paper_like_data, paper_like_query, path_graph, triangle

ALL = [
    VF2Matcher(),
    UllmannMatcher(),
    QuickSIMatcher(),
    SPathMatcher(),
    GraphQLMatcher(),
    TurboIsoMatcher(),
    CFLMatcher(),
    CFQLMatcher(),
]


class TestMatchOutcome:
    def test_defaults(self):
        outcome = MatchOutcome()
        assert not outcome.found
        assert outcome.num_embeddings == 0
        assert outcome.completed
        assert not outcome.filtered_out
        assert outcome.total_time == 0.0

    def test_total_time_sums_phases(self):
        outcome = MatchOutcome(
            filter_time=0.1, order_time=0.2, enumeration_time=0.3
        )
        assert outcome.total_time == pytest.approx(0.6)


@pytest.mark.parametrize("matcher", ALL, ids=lambda m: m.name)
class TestInterfaceContracts:
    def test_exists_count_find_all_consistent(self, matcher):
        q, g = paper_like_query(), paper_like_data()
        count = matcher.count(q, g)
        assert matcher.exists(q, g) == (count > 0)
        assert len(matcher.find_all(q, g)) == count

    def test_found_flag_matches_count(self, matcher):
        outcome = matcher.run(paper_like_query(), paper_like_data())
        assert outcome.found == (outcome.num_embeddings > 0)

    def test_empty_query_one_embedding(self, matcher):
        from repro.graph import Graph

        outcome = matcher.run(Graph.from_edge_list([], []), triangle())
        assert outcome.num_embeddings == 1 and outcome.found

    def test_no_match_outcome_clean(self, matcher):
        outcome = matcher.run(path_graph([8, 9]), triangle(0))
        assert not outcome.found
        assert outcome.num_embeddings == 0
        assert outcome.embeddings == []

    def test_repr_names_the_algorithm(self, matcher):
        assert matcher.name in repr(matcher)

    def test_limit_truncates_and_flags(self, matcher):
        outcome = matcher.run(triangle(), triangle(), limit=1)
        assert outcome.num_embeddings == 1
        assert not outcome.completed
