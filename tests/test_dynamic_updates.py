"""Integration: dynamic databases (the index-maintenance story).

The paper motivates index-free querying with frequently updated databases
(purchase networks, trading records).  These tests drive a mixed
add/remove/query workload through every algorithm category and check the
answers stay consistent with a from-scratch baseline at every step.
"""

from __future__ import annotations

import random

import pytest

from repro.core import create_engine
from repro.exec.parallel import ParallelExecutor
from repro.graph import GraphDatabase, generate_graph, random_walk_query
from repro.matching import VF2Matcher

ALGORITHMS = ["CFQL", "Grapes", "GGSX", "CT-Index", "vcGrapes"]


def fresh_db(seed: int = 0) -> GraphDatabase:
    db = GraphDatabase()
    rng = random.Random(seed)
    for _ in range(10):
        db.add_graph(generate_graph(10, 2.5, 3, seed=rng.getrandbits(32)))
    return db


def brute_force_answers(db: GraphDatabase, query) -> set[int]:
    vf2 = VF2Matcher()
    return {gid for gid, g in db.items() if vf2.exists(query, g)}


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_updates_keep_answers_consistent(algorithm):
    db = fresh_db()
    engine = create_engine(
        db, algorithm, index_max_path_edges=2, index_max_tree_edges=2
    )
    engine.build_index()
    rng = random.Random(99)
    for step in range(12):
        action = rng.choice(["add", "remove", "query"])
        if action == "add":
            engine.add_graph(generate_graph(10, 2.5, 3, seed=rng.getrandbits(32)))
        elif action == "remove" and len(db) > 3:
            engine.remove_graph(rng.choice(db.ids()))
        source = db[rng.choice(db.ids())]
        query = random_walk_query(source, 3, seed=rng.getrandbits(32))
        if query is None:
            continue
        assert engine.query(query).answers == brute_force_answers(db, query), (
            f"{algorithm} diverged at step {step} after {action}"
        )


@pytest.mark.parametrize("algorithm", ["Grapes", "GGSX"])
def test_random_interleaving_matches_fresh_rebuild(algorithm):
    """Property: after every random mutation batch, the incrementally
    maintained index answers exactly like an index rebuilt from scratch
    over the current database — through the serial executor AND a
    ``--jobs 2`` worker pool (whose workers hold stale index copies
    until containment invalidation reaches them)."""
    rng = random.Random(4242)
    serial = create_engine(fresh_db(seed=11), algorithm, index_max_path_edges=2)
    serial.build_index()
    pooled = create_engine(
        fresh_db(seed=11), algorithm, index_max_path_edges=2,
        executor=ParallelExecutor(jobs=2),
    )
    pooled.build_index()
    try:
        for batch in range(4):
            # One random batch of mutations, applied to both engines.
            for _ in range(rng.randint(1, 3)):
                if rng.random() < 0.6 or len(serial.db) <= 3:
                    graph = generate_graph(8, 2.0, 3, seed=rng.getrandbits(32))
                    gid = serial.add_graph(graph)
                    assert pooled.add_graph(graph) == gid
                else:
                    victim = rng.choice(serial.db.ids())
                    serial.remove_graph(victim)
                    pooled.remove_graph(victim)
            assert serial.db.ids() == pooled.db.ids()

            # A freshly rebuilt index over the current state (same gids).
            current = GraphDatabase()
            for gid, graph in serial.db.items():
                current.add_graph_with_id(gid, graph)
            rebuilt = create_engine(current, algorithm, index_max_path_edges=2)
            rebuilt.build_index()

            # A batch of random queries: four-way parity at every step.
            for _ in range(2):
                source = serial.db[rng.choice(serial.db.ids())]
                query = random_walk_query(source, 3, seed=rng.getrandbits(32))
                if query is None:
                    continue
                expected = brute_force_answers(serial.db, query)
                assert serial.query(query).answers == expected, (
                    f"{algorithm} serial diverged in batch {batch}"
                )
                assert rebuilt.query(query).answers == expected, (
                    f"{algorithm} rebuilt diverged in batch {batch}"
                )
                (pooled_result,) = pooled.query_many([query])
                assert pooled_result.answers == expected, (
                    f"{algorithm} --jobs 2 diverged in batch {batch}"
                )
    finally:
        pooled.close()


def test_removed_graph_never_returned():
    db = fresh_db(seed=5)
    engine = create_engine(db, "Grapes", index_max_path_edges=2)
    engine.build_index()
    victim = db.ids()[0]
    source = db[victim]
    query = random_walk_query(source, 3, seed=1)
    assert query is not None
    assert victim in engine.query(query).answers
    engine.remove_graph(victim)
    assert victim not in engine.query(query).answers


def test_added_graph_becomes_queryable():
    db = fresh_db(seed=6)
    engine = create_engine(db, "vcGGSX", index_max_path_edges=2)
    engine.build_index()
    new_graph = generate_graph(12, 3.0, 3, seed=1234)
    gid = engine.add_graph(new_graph)
    query = random_walk_query(new_graph, 4, seed=7)
    assert query is not None
    assert gid in engine.query(query).answers
