"""Integration: dynamic databases (the index-maintenance story).

The paper motivates index-free querying with frequently updated databases
(purchase networks, trading records).  These tests drive a mixed
add/remove/query workload through every algorithm category and check the
answers stay consistent with a from-scratch baseline at every step.
"""

from __future__ import annotations

import random

import pytest

from repro.core import create_engine
from repro.graph import GraphDatabase, generate_graph, random_walk_query
from repro.matching import VF2Matcher

ALGORITHMS = ["CFQL", "Grapes", "GGSX", "CT-Index", "vcGrapes"]


def fresh_db(seed: int = 0) -> GraphDatabase:
    db = GraphDatabase()
    rng = random.Random(seed)
    for _ in range(10):
        db.add_graph(generate_graph(10, 2.5, 3, seed=rng.getrandbits(32)))
    return db


def brute_force_answers(db: GraphDatabase, query) -> set[int]:
    vf2 = VF2Matcher()
    return {gid for gid, g in db.items() if vf2.exists(query, g)}


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_updates_keep_answers_consistent(algorithm):
    db = fresh_db()
    engine = create_engine(
        db, algorithm, index_max_path_edges=2, index_max_tree_edges=2
    )
    engine.build_index()
    rng = random.Random(99)
    for step in range(12):
        action = rng.choice(["add", "remove", "query"])
        if action == "add":
            engine.add_graph(generate_graph(10, 2.5, 3, seed=rng.getrandbits(32)))
        elif action == "remove" and len(db) > 3:
            engine.remove_graph(rng.choice(db.ids()))
        source = db[rng.choice(db.ids())]
        query = random_walk_query(source, 3, seed=rng.getrandbits(32))
        if query is None:
            continue
        assert engine.query(query).answers == brute_force_answers(db, query), (
            f"{algorithm} diverged at step {step} after {action}"
        )


def test_removed_graph_never_returned():
    db = fresh_db(seed=5)
    engine = create_engine(db, "Grapes", index_max_path_edges=2)
    engine.build_index()
    victim = db.ids()[0]
    source = db[victim]
    query = random_walk_query(source, 3, seed=1)
    assert query is not None
    assert victim in engine.query(query).answers
    engine.remove_graph(victim)
    assert victim not in engine.query(query).answers


def test_added_graph_becomes_queryable():
    db = fresh_db(seed=6)
    engine = create_engine(db, "vcGGSX", index_max_path_edges=2)
    engine.build_index()
    new_graph = generate_graph(12, 3.0, 3, seed=1234)
    gid = engine.add_graph(new_graph)
    query = random_walk_query(new_graph, 4, seed=7)
    assert query is not None
    assert gid in engine.query(query).answers
