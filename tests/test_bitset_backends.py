"""Cross-backend parity: python big-int vs numpy word-block bitsets.

The two :class:`~repro.utils.bitset.BitsetKernel` backends must be
observationally identical — same members, same popcounts, same decoded
orders, byte payloads revivable by either side — on randomized bitmaps
including the edge shapes that break word-block code (empty bitmaps,
single high bits, widths straddling the 64- and 256-bit boundaries).
On top sit end-to-end checks: every matcher path must produce the same
embedding counts under both backends and both enumeration kernels, and
backend selection (env var / ``auto`` threshold / fallback) must behave.

Everything numpy-specific skips cleanly when the ``[perf]`` extra is not
installed; the python-backend assertions always run.
"""

from __future__ import annotations

import os
import pickle
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import generate_graph, random_walk_query
from repro.matching.candidates import (
    CandidateSets,
    ldf_candidate_bits,
    nlf_candidate_bits,
    select_kernel,
)
from repro.matching.cfql import CFQLMatcher
from repro.matching.enumeration import (
    enumerate_embeddings_iterative,
    enumerate_embeddings_recursive,
)
from repro.matching.graphql import GraphQLMatcher
from repro.matching.plan import compile_plan
from repro.utils.bitset import (
    AUTO_MIN_VERTICES,
    available_backends,
    backend_override,
    get_kernel,
    numpy_available,
    pack_bits,
    python_kernel,
)

HAS_NUMPY = numpy_available()
needs_numpy = pytest.mark.skipif(
    not HAS_NUMPY, reason="numpy word-block backend not installed ([perf] extra)"
)

#: Bitmap widths straddling word (64) and decode-chunk (256) boundaries.
BOUNDARY_WIDTHS = (1, 63, 64, 65, 127, 128, 255, 256, 257, 1000)


def vertex_sets(max_n: int = 300):
    """(num_vertices, sorted vertex ids) pairs, biased toward boundaries."""
    return st.integers(min_value=1, max_value=max_n).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(
                st.integers(min_value=0, max_value=n - 1), unique=True, max_size=n
            ).map(sorted),
        )
    )


# ----------------------------------------------------------------------
# Randomized kernel-op parity
# ----------------------------------------------------------------------


@needs_numpy
@given(case=vertex_sets())
@settings(max_examples=120, deadline=None)
def test_single_bitmap_ops_agree(case):
    n, vs = case
    pk, nk = python_kernel(), get_kernel("numpy")
    pb = pk.pack(vs, n)
    nb = nk.pack(vs, n)
    assert nk.popcount(nb) == pk.popcount(pb) == len(vs)
    assert nk.any(nb) == pk.any(pb)
    assert nk.bit_list(nb) == pk.bit_list(pb) == list(vs)
    assert list(nk.iter_bits(nb)) == list(pk.iter_bits(pb))
    assert nk.to_int(nb) == pb
    probes = vs[:3] + [0, n - 1, n // 2]
    for v in probes:
        assert nk.test(nb, v) == pk.test(pb, v)


@needs_numpy
@given(case=vertex_sets(), other=st.lists(st.integers(0, 299), unique=True))
@settings(max_examples=120, deadline=None)
def test_binary_ops_agree(case, other):
    n, vs = case
    other = [v for v in other if v < n]
    pk, nk = python_kernel(), get_kernel("numpy")
    pa, pb = pk.pack(vs, n), pk.pack(other, n)
    na, nb = nk.pack(vs, n), nk.pack(other, n)
    for name in ("and_", "or_", "andnot"):
        want = getattr(pk, name)(pa, pb)
        got = getattr(nk, name)(na, nb)
        assert nk.to_int(got) == want
        assert nk.popcount(got) == pk.popcount(want)


@needs_numpy
@pytest.mark.parametrize("n", BOUNDARY_WIDTHS)
def test_boundary_widths_and_high_bits(n):
    pk, nk = python_kernel(), get_kernel("numpy")
    for vs in ([], [0], [n - 1], [0, n - 1], list(range(n))):
        unique = sorted(set(vs))
        pb, nb = pk.pack(vs, n), nk.pack(vs, n)
        assert nk.to_int(nb) == pb
        assert nk.popcount(nb) == len(unique)
        assert nk.bit_list(nb) == unique
        # Wire form is identical modulo trailing-zero padding.
        assert nk.to_bytes(nb).rstrip(b"\0") == pk.to_bytes(pb).rstrip(b"\0")


@needs_numpy
@given(case=vertex_sets())
@settings(max_examples=80, deadline=None)
def test_bytes_roundtrip_across_backends(case):
    n, vs = case
    pk, nk = python_kernel(), get_kernel("numpy")
    pb, nb = pk.pack(vs, n), nk.pack(vs, n)
    # python -> bytes -> numpy
    assert nk.bit_list(nk.from_bytes(pk.to_bytes(pb), n)) == list(vs)
    # numpy -> bytes -> python
    assert pk.bit_list(pk.from_bytes(nk.to_bytes(nb), n)) == list(vs)
    # int conversions both ways
    assert nk.bit_list(nk.from_int(pb, n)) == list(vs)
    assert pk.from_int(nk.to_int(nb), n) == pb


@needs_numpy
@given(
    n=st.integers(min_value=1, max_value=200),
    rows=st.lists(
        st.lists(st.integers(0, 199), unique=True), min_size=1, max_size=6
    ),
)
@settings(max_examples=60, deadline=None)
def test_batch_ops_agree(n, rows):
    rows = [[v for v in row if v < n] for row in rows]
    pk, nk = python_kernel(), get_kernel("numpy")
    prow = [pk.pack(r, n) for r in rows]
    nrow = [nk.pack(r, n) for r in rows]
    assert nk.to_int(nk.and_many(nrow)) == pk.and_many(prow)
    assert nk.to_int(nk.or_many(nrow, n)) == pk.or_many(prow, n)
    matrix = nk.stack(nrow)
    mask = nk.pack(rows[0], n)
    anded = nk.rows_and(matrix, mask)
    counts = nk.popcount_rows(anded)
    for i, row in enumerate(rows):
        assert int(counts[i]) == (prow[i] & prow[0]).bit_count()


# ----------------------------------------------------------------------
# CandidateSets across backends
# ----------------------------------------------------------------------


def _example_sets():
    return [[3, 1, 2], [9], [], [0, 63, 64, 65]]


@needs_numpy
def test_candidate_sets_backend_conversion():
    sets = _example_sets()
    nk = get_kernel("numpy")
    py = CandidateSets(sets)
    np_sets = CandidateSets(sets, kernel=nk, num_vertices=70)
    assert py.sizes() == np_sets.sizes()
    assert np_sets.backend == "numpy"
    for u in range(len(sets)):
        assert py[u] == np_sets[u]
        assert py.as_set(u) == np_sets.as_set(u)
        assert np_sets.int_bits(u) == py.bits(u)
    # Conversions are lossless in both directions.
    assert np_sets.to_python().sizes() == py.sizes()
    back = py.to_backend(nk, num_vertices=70)
    assert back.backend == "numpy"
    assert [back[u] for u in range(len(sets))] == [py[u] for u in range(len(sets))]
    # Paper-convention accounting is backend-independent; the true
    # footprint differs (fixed words vs occupied span).
    assert np_sets.memory_bytes() == py.memory_bytes()
    assert np_sets.backend_memory_bytes() == 4 * ((70 + 63) >> 6) * 8


@pytest.mark.parametrize(
    "backend", ["python"] + (["numpy"] if HAS_NUMPY else [])
)
def test_candidate_sets_pickle_roundtrip(backend):
    kernel = get_kernel(backend)
    sets = CandidateSets(_example_sets(), kernel=kernel, num_vertices=70)
    revived = pickle.loads(pickle.dumps(sets))
    assert revived.backend == backend
    assert revived.sizes() == sets.sizes()
    for u in range(len(sets)):
        assert revived[u] == sets[u]


@needs_numpy
def test_seed_filters_agree_across_backends():
    data = generate_graph(num_vertices=80, avg_degree=5.0, num_labels=3, seed=11)
    query = random_walk_query(data, num_edges=5, seed=12)
    assert query is not None
    nk = get_kernel("numpy")
    plan = compile_plan(query)
    for py_bits, np_bits in (
        (
            ldf_candidate_bits(query, data),
            ldf_candidate_bits(query, data, kernel=nk),
        ),
        (
            nlf_candidate_bits(query, data, plan=plan),
            nlf_candidate_bits(query, data, plan=plan, kernel=nk),
        ),
    ):
        assert len(py_bits) == len(np_bits)
        for pb, nb in zip(py_bits, np_bits):
            assert nk.to_int(nb) == pb


# ----------------------------------------------------------------------
# End-to-end embedding parity: backends × kernels
# ----------------------------------------------------------------------


def _e2e_cases(num: int, seed: int):
    rng = random.Random(seed)
    matchers = [CFQLMatcher(), GraphQLMatcher()]
    cases = []
    attempts = 0
    while len(cases) < num and attempts < num * 30:
        attempts += 1
        data = generate_graph(
            num_vertices=rng.randint(15, 60),
            avg_degree=rng.uniform(3.0, 6.0),
            num_labels=rng.randint(2, 4),
            seed=rng.randint(0, 10**6),
        )
        query = random_walk_query(
            data, num_edges=rng.randint(2, 6), seed=rng.randint(0, 10**6)
        )
        if query is None:
            continue
        matcher = rng.choice(matchers)
        candidates = matcher.build_candidates(query, data)
        if candidates is None or not candidates.all_nonempty:
            continue
        order = tuple(matcher.matching_order(query, data, candidates))
        cases.append((query, data, candidates, order))
    assert len(cases) == num, "could not generate enough parity cases"
    return cases


E2E_CASES = _e2e_cases(10, seed=20260809)


@needs_numpy
@pytest.mark.parametrize("case_index", range(len(E2E_CASES)))
def test_embedding_counts_agree_across_backends_and_kernels(
    case_index, monkeypatch
):
    query, data, candidates, order = E2E_CASES[case_index]
    nk = get_kernel("numpy")
    np_candidates = candidates.to_backend(nk, num_vertices=data.num_vertices)
    reference = enumerate_embeddings_recursive(query, data, candidates, order)
    outcomes = {
        "python/iterative": enumerate_embeddings_iterative(
            query, data, candidates, order
        ),
        # Default dispatch: word-block sets convert to int bitmaps.
        "numpy/iterative": enumerate_embeddings_iterative(
            query, data, np_candidates, order
        ),
        "numpy/recursive": enumerate_embeddings_recursive(
            query, data, np_candidates, order
        ),
    }
    # Opt-in vectorized tree walk must agree too.
    monkeypatch.setenv("REPRO_ENUM_KERNEL", "wordblock")
    outcomes["numpy/wordblock"] = enumerate_embeddings_iterative(
        query, data, np_candidates, order
    )
    for label, outcome in outcomes.items():
        assert outcome.num_embeddings == reference.num_embeddings, label
        assert outcome.completed == reference.completed, label


@needs_numpy
@pytest.mark.parametrize("case_index", range(0, len(E2E_CASES), 2))
@pytest.mark.parametrize("limit", [1, 3])
def test_limit_and_collect_agree_across_backends(case_index, limit, monkeypatch):
    query, data, candidates, order = E2E_CASES[case_index]
    nk = get_kernel("numpy")
    np_candidates = candidates.to_backend(nk, num_vertices=data.num_vertices)
    ref = enumerate_embeddings_iterative(
        query, data, candidates, order, limit=limit, collect=True
    )
    monkeypatch.setenv("REPRO_ENUM_KERNEL", "wordblock")
    got = enumerate_embeddings_iterative(
        query, data, np_candidates, order, limit=limit, collect=True
    )
    assert got.num_embeddings == ref.num_embeddings
    assert got.completed == ref.completed
    assert len(got.embeddings) == len(ref.embeddings)
    for emb in got.embeddings:
        assert len(set(emb.values())) == len(emb)
        for u, v in query.edges():
            assert emb[v] in data.neighbor_set(emb[u])


@needs_numpy
def test_full_collect_sets_agree_across_backends(monkeypatch):
    query, data, candidates, order = E2E_CASES[0]
    nk = get_kernel("numpy")
    np_candidates = candidates.to_backend(nk, num_vertices=data.num_vertices)
    ref = enumerate_embeddings_iterative(
        query, data, candidates, order, collect=True
    )
    monkeypatch.setenv("REPRO_ENUM_KERNEL", "wordblock")
    got = enumerate_embeddings_iterative(
        query, data, np_candidates, order, collect=True
    )
    as_sets = lambda embs: {frozenset(e.items()) for e in embs}
    assert as_sets(got.embeddings) == as_sets(ref.embeddings)


@needs_numpy
def test_matchers_agree_under_forced_numpy_backend():
    query, data, _, _ = E2E_CASES[1]
    for matcher in (CFQLMatcher(), GraphQLMatcher()):
        baseline = matcher.run(query, data).num_embeddings
        with backend_override("numpy"):
            forced = matcher.run(query, data)
        assert forced.num_embeddings == baseline


# ----------------------------------------------------------------------
# Backend selection
# ----------------------------------------------------------------------


def test_backend_names_and_python_always_available():
    names = available_backends()
    assert "python" in names and "auto" in names
    assert get_kernel("python") is python_kernel()


def test_auto_keeps_python_for_small_graphs():
    small = generate_graph(num_vertices=40, avg_degree=3.0, num_labels=2, seed=5)
    with backend_override("auto"):
        assert select_kernel(small).name == "python"


@needs_numpy
def test_auto_picks_numpy_above_threshold():
    with backend_override("auto"):
        assert get_kernel(num_vertices=AUTO_MIN_VERTICES).name == "numpy"
        assert get_kernel(num_vertices=AUTO_MIN_VERTICES - 1).name == "python"


def test_env_var_selects_backend(monkeypatch):
    monkeypatch.setenv("REPRO_BITSET_BACKEND", "python")
    with backend_override(None):
        assert get_kernel(num_vertices=10**6).name == "python"
    monkeypatch.setenv("REPRO_BITSET_BACKEND", "bogus")
    with backend_override(None):
        with pytest.warns(UserWarning, match="REPRO_BITSET_BACKEND"):
            kernel = get_kernel(num_vertices=10)
        assert kernel.name == "python"


def test_unknown_backend_rejected():
    with pytest.raises(ValueError, match="unknown bitset backend"):
        get_kernel("bitvector")


@needs_numpy
def test_graph_pickles_without_numpy_profile():
    data = generate_graph(num_vertices=50, avg_degree=4.0, num_labels=2, seed=8)
    nk = get_kernel("numpy")
    profile = data.bitset_profile(nk)
    assert profile is not None and data.bitset_profile(nk) is profile
    revived = pickle.loads(pickle.dumps(data))
    assert revived.num_vertices == data.num_vertices
    assert list(revived.edges()) == list(data.edges())
    # The profile is a per-process cache; a revived graph rebuilds its own.
    assert revived.bitset_profile(nk) is not profile
    assert data.profile_memory_bytes() >= profile.memory_bytes()
