"""Shared test helpers: networkx oracle and tiny example graphs."""

from __future__ import annotations

import networkx as nx

from repro.graph import Graph


def to_networkx(graph: Graph) -> nx.Graph:
    """Convert to a networkx graph with labels stored as node attributes."""
    result = nx.Graph()
    for v in graph.vertices():
        result.add_node(v, label=graph.label(v))
    result.add_edges_from(graph.edges())
    return result


def nx_monomorphism_count(query: Graph, data: Graph) -> int:
    """Number of label-preserving subgraph monomorphisms (the oracle).

    networkx's GraphMatcher enumerates mappings from the *host* to the
    *pattern*, so the data graph comes first.  Monomorphism semantics match
    Definition II.1 of the paper (non-induced).
    """
    matcher = nx.algorithms.isomorphism.GraphMatcher(
        to_networkx(data),
        to_networkx(query),
        node_match=lambda a, b: a["label"] == b["label"],
    )
    return sum(1 for _ in matcher.subgraph_monomorphisms_iter())


def nx_contains(query: Graph, data: Graph) -> bool:
    matcher = nx.algorithms.isomorphism.GraphMatcher(
        to_networkx(data),
        to_networkx(query),
        node_match=lambda a, b: a["label"] == b["label"],
    )
    return matcher.subgraph_monomorphism_is_present() if hasattr(
        matcher, "subgraph_monomorphism_is_present"
    ) else any(True for _ in matcher.subgraph_monomorphisms_iter())


# ----------------------------------------------------------------------
# Small named instances
# ----------------------------------------------------------------------

# The paper's Figure 1 spirit: a 4-vertex query with one cycle, and a data
# graph that contains it once plus a decoy vertex sharing a label.
A, B, C = 0, 1, 2


def paper_like_query() -> Graph:
    """Square query: u0(A)-u1(B)-u2(A)-u3(B)-u0, plus chord u0-u2."""
    return Graph.from_edge_list(
        [A, B, A, B], [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)], name="q"
    )


def paper_like_data() -> Graph:
    """Data graph embedding the square query once, with a decoy A vertex."""
    return Graph.from_edge_list(
        [A, B, A, B, A],
        [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (2, 4)],
        name="G",
    )


def triangle(label: int = 0) -> Graph:
    return Graph.from_edge_list([label] * 3, [(0, 1), (1, 2), (2, 0)])


def path_graph(labels: list[int]) -> Graph:
    return Graph.from_edge_list(labels, [(i, i + 1) for i in range(len(labels) - 1)])


def star_graph(center_label: int, leaf_labels: list[int]) -> Graph:
    labels = [center_label] + leaf_labels
    return Graph.from_edge_list(labels, [(0, i + 1) for i in range(len(leaf_labels))])
