"""Cross-algorithm set relations the theory guarantees.

These invariants connect the layers: candidate-set containments between
filters, candidate-graph containments between pipelines, and dominance
relations between index variants.  They hold for *every* instance, which
makes them ideal property tests.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipeline import IFVPipeline, IvcFVPipeline, VcFVPipeline
from repro.graph import generate_database, random_walk_query
from repro.index import GGSXIndex, GraphGrepIndex, GrapesIndex
from repro.matching import (
    CFLMatcher,
    CFQLMatcher,
    GraphQLMatcher,
    TurboIsoMatcher,
    VF2Matcher,
    ldf_candidates,
    nlf_candidates,
)

from strategies import matching_instances


class TestFilterContainments:
    """Each preprocessing filter only ever shrinks its seed filter."""

    @given(matching_instances())
    @settings(max_examples=30, deadline=None)
    def test_nlf_within_ldf(self, instance):
        query, data = instance
        ldf = ldf_candidates(query, data)
        nlf = nlf_candidates(query, data)
        for u in query.vertices():
            assert set(nlf[u]) <= set(ldf[u])

    @given(matching_instances())
    @settings(max_examples=30, deadline=None)
    def test_graphql_within_nlf(self, instance):
        query, data = instance
        phi = GraphQLMatcher().build_candidates(query, data)
        if phi is None:
            return
        nlf = nlf_candidates(query, data)
        for u in query.vertices():
            assert set(phi[u]) <= set(nlf[u])

    @given(matching_instances())
    @settings(max_examples=30, deadline=None)
    def test_cfl_and_turboiso_within_ldf(self, instance):
        query, data = instance
        ldf = ldf_candidates(query, data)
        for matcher in (CFLMatcher(), TurboIsoMatcher()):
            phi = matcher.build_candidates(query, data)
            if phi is None:
                continue
            for u in query.vertices():
                assert set(phi[u]) <= set(ldf[u]), matcher.name


@pytest.fixture(scope="module")
def workload():
    db = generate_database(16, 12, 2.8, 3, seed=51)
    queries = []
    import random

    rng = random.Random(3)
    while len(queries) < 12:
        q = random_walk_query(
            db[rng.choice(db.ids())], 3 + len(queries) % 3, seed=rng.getrandbits(32)
        )
        if q is not None:
            queries.append(q)
    return db, queries


class TestPipelineContainments:
    def test_ivcfv_candidates_within_ifv(self, workload):
        """Adding the vertex-connectivity filter can only shrink C(q)."""
        db, queries = workload
        ifv = IFVPipeline(GrapesIndex(max_path_edges=3), VF2Matcher())
        ifv.build_index(db)
        ivcfv = IvcFVPipeline(GrapesIndex(max_path_edges=3), CFQLMatcher())
        ivcfv.build_index(db)
        for query in queries:
            a = ifv.execute(query, db)
            b = ivcfv.execute(query, db)
            assert b.candidates <= a.candidates
            assert b.index_candidates == a.candidates
            assert a.answers == b.answers

    def test_vcfv_candidates_contain_answers(self, workload):
        db, queries = workload
        vcfv = VcFVPipeline(CFQLMatcher())
        for query in queries:
            result = vcfv.execute(query, db)
            assert result.answers <= result.candidates

    def test_ivcfv_candidates_within_vcfv(self, workload):
        """Index pre-filtering never adds candidates over pure vcFV."""
        db, queries = workload
        vcfv = VcFVPipeline(CFQLMatcher())
        ivcfv = IvcFVPipeline(GGSXIndex(max_path_edges=3), CFQLMatcher())
        ivcfv.build_index(db)
        for query in queries:
            assert (
                ivcfv.execute(query, db).candidates
                <= vcfv.execute(query, db).candidates
            )


class TestIndexDominance:
    def test_grapes_within_ggsx_and_graphgrep(self, workload):
        """Count-dominance (Grapes/GraphGrep) is a strictly stronger test
        than boolean containment over an edge cover (GGSX)."""
        db, queries = workload
        grapes = GrapesIndex(max_path_edges=3)
        ggsx = GGSXIndex(max_path_edges=3)
        flat = GraphGrepIndex(max_path_edges=3)
        for index in (grapes, ggsx, flat):
            index.build(db)
        for query in queries:
            g = grapes.candidates(query)
            assert g <= ggsx.candidates(query)
            assert g == flat.candidates(query)  # same rule, same features

    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=15, deadline=None)
    def test_longer_paths_filter_no_worse(self, workload, seed):
        db, _ = workload
        import random

        rng = random.Random(seed)
        query = random_walk_query(db[rng.choice(db.ids())], 4, seed=seed)
        if query is None:
            return
        short = GrapesIndex(max_path_edges=1)
        long = GrapesIndex(max_path_edges=3)
        short.build(db)
        long.build(db)
        assert long.candidates(query) <= short.candidates(query)
