"""Recovery behaviour of the engine + store pairing.

The robustness claims: a kill -9 during save leaves the store loadable
(the previous snapshot intact), any corrupted/stale snapshot triggers a
rebuild instead of a crash or a wrong answer, and the provenance of every
answer (warm start, rebuild, degraded fallback) is surfaced in
``QueryResult.metadata``.
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.core.algorithms import create_engine
from repro.exec import faults
from repro.exec.faults import CRASH_EXIT_CODE
from repro.store import IndexStore, read_snapshot
from repro.workloads.querysets import generate_query_set

SRC = str(Path(__file__).resolve().parent.parent / "src")


def _queries(db):
    return list(generate_query_set(db, 4, False, size=3, seed=9).queries)


def _answers(results):
    return [sorted(r.answers) for r in results]


class TestWarmStart:
    def test_second_engine_loads_instead_of_building(self, small_db, tmp_path):
        store = IndexStore(tmp_path / "store")
        queries = _queries(small_db)

        with create_engine(small_db, "Grapes") as cold:
            cold.build_index(store=store)
            assert cold.index_source == "build"
            assert cold.store_save_error is None
            cold_answers = _answers(cold.query_many(queries))

        with create_engine(small_db, "Grapes") as warm:
            warm.build_index(store=store)
            assert warm.index_source == "store"
            assert warm.store_recovery is None
            results = warm.query_many(queries)
            assert _answers(results) == cold_answers
            for r in results:
                assert r.metadata["degraded"] is False
                assert r.metadata["index_source"] == "store"

    def test_store_is_optional(self, small_db):
        with create_engine(small_db, "Grapes") as engine:
            engine.build_index()
            assert engine.index_source == "build"
            result = engine.query(_queries(small_db)[0])
            assert result.metadata["index_source"] == "build"

    def test_index_free_pipeline_ignores_store(self, small_db, tmp_path):
        store = IndexStore(tmp_path / "store")
        with create_engine(small_db, "CFQL") as engine:
            engine.build_index(store=store)
            assert engine.index_source is None
            assert store.snapshots() == []


class TestCorruptionRecovery:
    def test_corrupted_snapshot_triggers_rebuild(self, small_db, tmp_path):
        store = IndexStore(tmp_path / "store")
        queries = _queries(small_db)
        with create_engine(small_db, "Grapes") as cold:
            cold.build_index(store=store)
            expected = _answers(cold.query_many(queries))

        snap = store.snapshot_path("Grapes")
        damaged = bytearray(snap.read_bytes())
        damaged[len(damaged) // 2] ^= 0x10
        snap.write_bytes(bytes(damaged))

        with create_engine(small_db, "Grapes") as engine:
            engine.build_index(store=store)
            assert engine.index_source == "build"
            assert engine.store_recovery == "checksum"
            results = engine.query_many(queries)
            assert _answers(results) == expected
            for r in results:
                assert r.metadata["degraded"] is False
                assert r.metadata["store_recovery"] == "checksum"
                assert r.metadata["index_source"] == "build"

    def test_recovery_resaves_a_good_snapshot(self, small_db, tmp_path):
        store = IndexStore(tmp_path / "store")
        with create_engine(small_db, "Grapes") as cold:
            cold.build_index(store=store)
        snap = store.snapshot_path("Grapes")
        snap.write_bytes(b"garbage")
        with create_engine(small_db, "Grapes") as engine:
            engine.build_index(store=store)
            assert engine.store_recovery is not None
        # The rebuild republished a valid snapshot over the damage.
        with create_engine(small_db, "Grapes") as warm:
            warm.build_index(store=store)
            assert warm.index_source == "store"

    def test_injected_post_save_corruption_recovered(self, small_db, tmp_path):
        store = IndexStore(tmp_path / "store")
        queries = _queries(small_db)
        # Huge offset clamps to the file's last byte — inside the CRC-
        # protected index payload.
        faults.inject("store.corrupt_snapshot", "corrupt", arg=10**9, times=1)
        with create_engine(small_db, "Grapes") as cold:
            cold.build_index(store=store)  # saved, then bit-rotted
            expected = _answers(cold.query_many(queries))
        with create_engine(small_db, "Grapes") as engine:
            engine.build_index(store=store)
            assert engine.store_recovery == "checksum"
            assert _answers(engine.query_many(queries)) == expected

    def test_save_failure_is_not_fatal(self, small_db, tmp_path):
        store = IndexStore(tmp_path / "store")
        faults.inject("store.torn_write", "error")
        with create_engine(small_db, "Grapes") as engine:
            engine.build_index(store=store)
            assert engine.index_source == "build"
            assert engine.store_save_error is not None
            assert store.snapshots() == []
            result = engine.query(_queries(small_db)[0])
            assert result.metadata["index_source"] == "build"


class TestDegradedMetadata:
    def test_degraded_flag_surfaced_in_results(self, small_db):
        faults.inject("index.build", "oot")
        with create_engine(small_db, "Grapes") as engine:
            engine.build_index(fallback=True)
            assert engine.degraded
            result = engine.query(_queries(small_db)[0])
            assert result.metadata["degraded"] is True
            assert result.metadata["degraded_reason"] == "OOT"

    def test_degraded_rebuild_after_bad_snapshot(self, small_db, tmp_path):
        """Corrupt snapshot + failing rebuild → fallback, both surfaced."""
        store = IndexStore(tmp_path / "store")
        with create_engine(small_db, "Grapes") as cold:
            cold.build_index(store=store)
        store.snapshot_path("Grapes").write_bytes(b"\x00" * 64)
        faults.inject("index.build", "oom")
        with create_engine(small_db, "Grapes") as engine:
            engine.build_index(fallback=True, store=store)
            assert engine.degraded
            result = engine.query(_queries(small_db)[0])
            assert result.metadata["degraded"] is True
            assert result.metadata["degraded_reason"] == "OOM"
            assert result.metadata["store_recovery"] == "magic"


class TestKillDuringSave:
    def _run_killed_save(self, store_dir: Path) -> subprocess.CompletedProcess:
        script = textwrap.dedent(
            """
            import sys
            from repro.core.algorithms import create_engine
            from repro.exec import faults
            from repro.graph import generate_database
            from repro.store import IndexStore

            db = generate_database(num_graphs=8, num_vertices=10,
                                   avg_degree=2.5, num_labels=3, seed=21)
            store = IndexStore(sys.argv[1])
            faults.inject("store.torn_write", "crash", match="Grapes")
            engine = create_engine(db, "Grapes")
            engine.build_index(store=store)  # dies mid-save
            print("UNREACHABLE")
            """
        )
        env = dict(os.environ, PYTHONPATH=SRC)
        return subprocess.run(
            [sys.executable, "-c", script, str(store_dir)],
            env=env, capture_output=True, text=True, timeout=120,
        )

    def test_kill_on_first_save_leaves_store_empty_but_usable(self, tmp_path):
        store_dir = tmp_path / "store"
        proc = self._run_killed_save(store_dir)
        assert proc.returncode == CRASH_EXIT_CODE
        assert "UNREACHABLE" not in proc.stdout
        store = IndexStore(store_dir)
        assert store.snapshots() == []
        # A fresh engine over the same database simply cold-builds.
        from repro.graph import generate_database

        db = generate_database(num_graphs=8, num_vertices=10,
                               avg_degree=2.5, num_labels=3, seed=21)
        with create_engine(db, "Grapes") as engine:
            engine.build_index(store=store)
            assert engine.index_source == "build"
            assert engine.store_recovery == "missing"

    def test_kill_during_resave_keeps_previous_snapshot(self, tmp_path):
        from repro.graph import generate_database

        store_dir = tmp_path / "store"
        store = IndexStore(store_dir)
        db = generate_database(num_graphs=8, num_vertices=10,
                               avg_degree=2.5, num_labels=3, seed=21)
        with create_engine(db, "Grapes") as engine:
            engine.build_index(store=store)
        original = store.snapshot_path("Grapes").read_bytes()

        # The child sees a grown database: snapshot rejected
        # (db-fingerprint), rebuild, killed mid-resave.
        script_proc = subprocess.run(
            [sys.executable, "-c", textwrap.dedent(
                """
                import sys
                from repro.core.algorithms import create_engine
                from repro.exec import faults
                from repro.graph import generate_database
                from repro.store import IndexStore

                db = generate_database(num_graphs=8, num_vertices=10,
                                       avg_degree=2.5, num_labels=3, seed=21)
                db.add_graph(db[0])
                store = IndexStore(sys.argv[1])
                faults.inject("store.torn_write", "crash", match="Grapes")
                engine = create_engine(db, "Grapes")
                engine.build_index(store=store)
                """
            ), str(store_dir)],
            env=dict(os.environ, PYTHONPATH=SRC),
            capture_output=True, text=True, timeout=120,
        )
        assert script_proc.returncode == CRASH_EXIT_CODE
        # Old snapshot byte-identical and still structurally valid.
        assert store.snapshot_path("Grapes").read_bytes() == original
        read_snapshot(store.snapshot_path("Grapes"))
        # And the original database still warm-starts from it.
        with create_engine(db, "Grapes") as engine:
            engine.build_index(store=store)
            assert engine.index_source == "store"
