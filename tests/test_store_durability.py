"""Durable-mutation chaos: kill -9 a mutating process, recover, compare.

The durability contract under test: every acknowledged mutation survives
a hard process death, and the recovered engine answers queries
bit-identically to a cold engine built over the acknowledged prefix of
the mutation stream.  The suite runs the parity check for every
persisted index family, then exercises the compaction crash windows and
the quarantine policy for an untrusted database snapshot.

Socket-level crash chaos (the service acknowledging mutations over a
real connection and dying on either side of the ack boundary) lives in
TestServiceCrashChaos below; WAL byte-format recovery lives in
test_store_wal.py.
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.core.algorithms import create_engine
from repro.exec import faults
from repro.exec.faults import CRASH_EXIT_CODE
from repro.graph import generate_database
from repro.service.client import ServiceClient, ServiceUnavailable, wait_for_service
from repro.store import (
    DATABASE_SNAPSHOT_NAME,
    QUARANTINE_SUFFIX,
    WAL_NAME,
    IndexStore,
    database_fingerprint,
)
from repro.workloads.querysets import generate_query_set

SRC = str(Path(__file__).resolve().parent.parent / "src")

#: Every algorithm whose pipeline carries a persistable index.
FAMILIES = ("Grapes", "GGSX", "CT-Index", "GraphGrep", "TreePi", "SING")

DB_ARGS = dict(num_graphs=8, num_vertices=10, avg_degree=2.5,
               num_labels=3, seed=21)
EXTRA_ARGS = dict(num_graphs=4, num_vertices=8, avg_degree=2.0,
                  num_labels=3, seed=77)


def base_db():
    return generate_database(**DB_ARGS)


def extra_graphs(n=3):
    db = generate_database(**EXTRA_ARGS)
    return [db[i] for i in range(n)]


def acked_reference_db(acked_adds, removed=()):
    """Cold rebuild of base + exactly the acknowledged mutations."""
    db = base_db()
    for graph in acked_adds:
        db.add_graph(graph)
    for gid in removed:
        db.remove_graph(gid)
    return db


def answers_on(engine, db):
    queries = list(generate_query_set(db, 4, False, size=3, seed=9).queries)
    return [sorted(r.answers) for r in engine.query_many(queries)]


@pytest.fixture(autouse=True)
def _clear_faults():
    faults.clear()
    yield
    faults.clear()


class TestKillDuringMutationStream:
    """Per-family parity: journal, die without cleanup, recover, compare."""

    def _run_killed_mutator(self, store_dir, family):
        script = textwrap.dedent(
            """
            import os, sys
            from repro.core.algorithms import create_engine
            from repro.graph import generate_database
            from repro.store import IndexStore

            db = generate_database(num_graphs=8, num_vertices=10,
                                   avg_degree=2.5, num_labels=3, seed=21)
            extra = generate_database(num_graphs=4, num_vertices=8,
                                      avg_degree=2.0, num_labels=3, seed=77)
            store = IndexStore(sys.argv[1])
            engine = create_engine(db, sys.argv[2])
            engine.build_index(store=store)
            for i in range(3):
                gid = engine.add_graph(extra[i])
                print(f"ACK add {gid}", flush=True)
            engine.remove_graph(0)
            print("ACK remove 0", flush=True)
            os._exit(86)  # die with no cleanup: a segfault mid-service
            """
        )
        return subprocess.run(
            [sys.executable, "-c", script, str(store_dir), family],
            env=dict(os.environ, PYTHONPATH=SRC),
            capture_output=True, text=True, timeout=180,
        )

    @pytest.mark.parametrize("family", FAMILIES)
    def test_recovery_matches_cold_rebuild_of_acked_prefix(
        self, family, tmp_path
    ):
        store_dir = tmp_path / "store"
        proc = self._run_killed_mutator(store_dir, family)
        assert proc.returncode == CRASH_EXIT_CODE, proc.stderr
        acked = [line for line in proc.stdout.splitlines()
                 if line.startswith("ACK")]
        assert len(acked) == 4  # three adds + one remove reached the log

        reference = acked_reference_db(extra_graphs(3), removed=[0])
        store = IndexStore(store_dir)
        with create_engine(base_db(), family) as warm:
            warm.build_index(store=store)
            assert warm.index_source == "store"
            assert warm.wal_recovery["replayed"] == 4
            assert warm.wal_recovery["reason"] is None
            # Bit-identical state: same fingerprint as the cold rebuild.
            assert (database_fingerprint(warm.db)
                    == database_fingerprint(reference))
            with create_engine(reference, family) as cold:
                cold.build_index()
                assert (answers_on(warm, reference)
                        == answers_on(cold, reference))

    def test_second_recovery_after_compaction_replays_nothing(self, tmp_path):
        store_dir = tmp_path / "store"
        assert self._run_killed_mutator(
            store_dir, "Grapes"
        ).returncode == CRASH_EXIT_CODE
        reference = acked_reference_db(extra_graphs(3), removed=[0])
        store = IndexStore(store_dir)
        with create_engine(base_db(), "Grapes") as warm:
            warm.build_index(store=store)
            summary = warm.compact_store()
            assert summary["folded"] == 4
            assert summary["log_depth"] == 0
        with create_engine(base_db(), "Grapes") as again:
            again.build_index(store=IndexStore(store_dir))
            assert again.index_source == "store"
            assert again.wal_recovery["folded_seq"] == 4
            assert again.wal_recovery["replayed"] == 0
            assert (database_fingerprint(again.db)
                    == database_fingerprint(reference))


class TestCompactionCrashWindows:
    def test_crash_during_database_snapshot_write(self, tmp_path):
        """Index snapshot committed, database snapshot torn: the folded
        records still live in the journal and replay through phase 1."""
        script = textwrap.dedent(
            """
            import sys
            from repro.core.algorithms import create_engine
            from repro.exec import faults
            from repro.graph import generate_database
            from repro.store import IndexStore

            db = generate_database(num_graphs=8, num_vertices=10,
                                   avg_degree=2.5, num_labels=3, seed=21)
            extra = generate_database(num_graphs=4, num_vertices=8,
                                      avg_degree=2.0, num_labels=3, seed=77)
            store = IndexStore(sys.argv[1])
            engine = create_engine(db, "Grapes")
            engine.build_index(store=store)
            engine.add_graph(extra[0])
            engine.remove_graph(0)
            faults.inject("store.torn_write", "crash", match="database")
            engine.compact_store()  # dies writing database.dbsnap
            print("UNREACHABLE")
            """
        )
        proc = subprocess.run(
            [sys.executable, "-c", script, str(tmp_path / "store")],
            env=dict(os.environ, PYTHONPATH=SRC),
            capture_output=True, text=True, timeout=180,
        )
        assert proc.returncode == CRASH_EXIT_CODE, proc.stderr
        assert "UNREACHABLE" not in proc.stdout

        store = IndexStore(tmp_path / "store")
        assert not (tmp_path / "store" / DATABASE_SNAPSHOT_NAME).exists()
        reference = acked_reference_db(extra_graphs(1), removed=[0])
        with create_engine(base_db(), "Grapes") as warm:
            warm.build_index(store=store)
            # The index snapshot already folded both records, so they
            # replay database-side before the fingerprint check.
            assert warm.index_source == "store"
            assert warm.wal_recovery["replayed"] == 2
            assert (database_fingerprint(warm.db)
                    == database_fingerprint(reference))
            with create_engine(reference, "Grapes") as cold:
                cold.build_index()
                assert (answers_on(warm, reference)
                        == answers_on(cold, reference))

    def test_crash_after_database_snapshot_before_truncate(self, tmp_path):
        """Both snapshots committed, journal never truncated: the fold
        point filters every journaled record out of replay."""
        store = IndexStore(tmp_path / "store")
        db = base_db()
        graph = extra_graphs(1)[0]
        with create_engine(db, "Grapes") as engine:
            engine.build_index(store=store)
            engine.add_graph(graph)
            engine.remove_graph(0)
            # Compaction steps 1+2 by hand; "crash" before truncation.
            upto = store.wal.last_seq
            store.save(engine.pipeline.index, engine.db,
                       db_fingerprint=None, wal_seq=upto)
            store.save_database(engine.db, upto)
        assert (tmp_path / "store" / WAL_NAME).exists()

        reference = acked_reference_db([graph], removed=[0])
        with create_engine(base_db(), "Grapes") as warm:
            warm.build_index(store=IndexStore(tmp_path / "store"))
            assert warm.index_source == "store"
            assert warm.wal_recovery["folded_seq"] == 2
            assert warm.wal_recovery["replayed"] == 0
            assert (database_fingerprint(warm.db)
                    == database_fingerprint(reference))
            # New mutations never reuse folded sequence numbers.
            warm.add_graph(extra_graphs(2)[1])
            assert warm.store.wal.last_seq == 3


class TestDatabaseSnapshotQuarantine:
    def _store_with_folded_state(self, tmp_path):
        store = IndexStore(tmp_path / "store")
        graphs = extra_graphs(2)
        with create_engine(base_db(), "Grapes") as engine:
            engine.build_index(store=store)
            engine.add_graph(graphs[0])
            engine.compact_store()      # folds the add into database.dbsnap
            engine.add_graph(graphs[1])  # lives only in the journal
        return store

    def test_corrupt_dbsnap_quarantines_and_restarts_from_base(self, tmp_path):
        self._store_with_folded_state(tmp_path)
        snap = tmp_path / "store" / DATABASE_SNAPSHOT_NAME
        damaged = bytearray(snap.read_bytes())
        damaged[len(damaged) // 2] ^= 0x10
        snap.write_bytes(bytes(damaged))

        with create_engine(base_db(), "Grapes") as warm:
            warm.build_index(store=IndexStore(tmp_path / "store"))
            # Folded mutations may exist only inside the untrusted
            # snapshot, so replaying the journal tail onto the base
            # would fabricate state: everything is set aside instead.
            assert warm.wal_recovery["quarantined"] is True
            assert warm.wal_recovery["replayed"] == 0
            assert (database_fingerprint(warm.db)
                    == database_fingerprint(base_db()))
            # Stale, never wrong: answers match a cold engine on base.
            with create_engine(base_db(), "Grapes") as cold:
                cold.build_index()
                assert (answers_on(warm, base_db())
                        == answers_on(cold, base_db()))
        # Both artefacts preserved for forensics, nothing deleted.
        for name in (DATABASE_SNAPSHOT_NAME, WAL_NAME):
            assert (tmp_path / "store" / (name + QUARANTINE_SUFFIX)).exists()
            assert not (tmp_path / "store" / name).exists()

    def test_foreign_dbsnap_is_quarantined(self, tmp_path):
        self._store_with_folded_state(tmp_path)
        other = generate_database(num_graphs=6, num_vertices=9,
                                  avg_degree=2.0, num_labels=3, seed=5)
        with create_engine(other, "Grapes") as warm:
            warm.build_index(store=IndexStore(tmp_path / "store"))
            assert warm.wal_recovery["quarantined"] is True
            assert (database_fingerprint(warm.db)
                    == database_fingerprint(other))


class TestServiceCrashChaos:
    """kill -9 the serving process on either side of the ack boundary."""

    SERVER = textwrap.dedent(
        """
        import sys
        from repro.core.algorithms import create_engine
        from repro.exec import faults
        from repro.graph import generate_database
        from repro.service.server import QueryService, ServiceConfig
        from repro.store import IndexStore

        db = generate_database(num_graphs=8, num_vertices=10,
                               avg_degree=2.5, num_labels=3, seed=21)
        store = IndexStore(sys.argv[1])
        engine = create_engine(db, "Grapes")
        engine.build_index(store=store)
        faults.inject(sys.argv[3], "crash", match="add", times=1)
        service = QueryService(engine, ServiceConfig())
        sys.exit(service.serve(f"unix:{sys.argv[2]}"))
        """
    )

    def _crash_serving_process(self, tmp_path, site, mutations=2):
        sock = tmp_path / "serve.sock"
        proc = subprocess.Popen(
            [sys.executable, "-c", self.SERVER,
             str(tmp_path / "store"), str(sock), site],
            env=dict(os.environ, PYTHONPATH=SRC),
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        acked = []
        try:
            wait_for_service(f"unix:{sock}", timeout=30.0)
            with ServiceClient(f"unix:{sock}", timeout=10.0) as client:
                for graph in extra_graphs(mutations):
                    acked.append(client.add_graph(graph))
        except (ServiceUnavailable, OSError):
            pass
        finally:
            output = proc.communicate(timeout=60)[0]
        assert proc.returncode == CRASH_EXIT_CODE, output
        return acked

    def test_crash_after_ack_preserves_every_acked_mutation(self, tmp_path):
        acked = self._crash_serving_process(
            tmp_path, "wal.crash_after_ack", mutations=2
        )
        # The first add was acknowledged, then the server died.
        assert len(acked) == 1
        reference = acked_reference_db(extra_graphs(1))
        with create_engine(base_db(), "Grapes") as warm:
            warm.build_index(store=IndexStore(tmp_path / "store"))
            assert warm.index_source == "store"
            assert warm.wal_recovery["replayed"] == 1
            assert warm.db.ids() == reference.ids()
            assert (database_fingerprint(warm.db)
                    == database_fingerprint(reference))
            with create_engine(reference, "Grapes") as cold:
                cold.build_index()
                assert (answers_on(warm, reference)
                        == answers_on(cold, reference))

    def test_crash_before_ack_is_at_least_once(self, tmp_path):
        """A mutation journaled but never acknowledged still survives:
        the journal commits before the ack, so the client cannot tell a
        lost ack from a lost mutation (the documented duplicate window —
        the in-memory dedup table dies with the process)."""
        acked = self._crash_serving_process(
            tmp_path, "wal.crash_before_ack", mutations=1
        )
        assert acked == []  # the ack never made it out
        with create_engine(base_db(), "Grapes") as warm:
            warm.build_index(store=IndexStore(tmp_path / "store"))
            assert warm.wal_recovery["replayed"] == 1
            assert (database_fingerprint(warm.db)
                    == database_fingerprint(acked_reference_db(extra_graphs(1))))
