"""Tests for repro.core.metrics (Equations 1-3 and aggregation)."""

from __future__ import annotations

import pytest

from repro.core import QueryResult, aggregate_results


def make_result(**kwargs) -> QueryResult:
    defaults = dict(algorithm="X", answers={0}, candidates={0, 1})
    defaults.update(kwargs)
    return QueryResult(**defaults)


class TestQueryResult:
    def test_precision(self):
        result = make_result(answers={0}, candidates={0, 1, 2, 3})
        assert result.precision == 0.25

    def test_precision_undefined_without_candidates(self):
        assert make_result(answers=set(), candidates=set()).precision is None

    def test_precision_undefined_on_timeout(self):
        assert make_result(timed_out=True).precision is None

    def test_per_si_test_time(self):
        result = make_result(candidates={0, 1}, verification_time=1.0)
        assert result.per_si_test_time == 0.5

    def test_counts(self):
        result = make_result(answers={1, 2}, candidates={1, 2, 3})
        assert result.num_answers == 2
        assert result.num_candidates == 3


class TestAggregation:
    def test_equation_one_filtering_precision(self):
        results = [
            make_result(answers={0}, candidates={0, 1}),        # 0.5
            make_result(answers={0, 1}, candidates={0, 1}),     # 1.0
        ]
        report = aggregate_results(results)
        assert report.filtering_precision == pytest.approx(0.75)

    def test_equation_three_per_si_test_time(self):
        results = [
            make_result(candidates={0, 1}, verification_time=1.0),   # 0.5
            make_result(candidates={0}, verification_time=0.1),      # 0.1
        ]
        report = aggregate_results(results)
        assert report.per_si_test_time == pytest.approx(0.3)

    def test_timeouts_counted_and_excluded(self):
        results = [
            make_result(),
            make_result(timed_out=True, query_time=10.0),
        ]
        report = aggregate_results(results)
        assert report.num_timeouts == 1
        assert report.completed == 1
        assert report.failed_fraction() == 0.5
        # Precision ignores the timed-out query.
        assert report.filtering_precision == 0.5

    def test_avg_times(self):
        results = [
            make_result(filtering_time=0.2, verification_time=0.4, query_time=0.6),
            make_result(filtering_time=0.4, verification_time=0.0, query_time=0.4),
        ]
        report = aggregate_results(results)
        assert report.avg_filtering_time == pytest.approx(0.3)
        assert report.avg_verification_time == pytest.approx(0.2)
        assert report.avg_query_time == pytest.approx(0.5)

    def test_max_auxiliary_memory(self):
        results = [
            make_result(auxiliary_memory_bytes=100),
            make_result(auxiliary_memory_bytes=50),
        ]
        assert aggregate_results(results).max_auxiliary_memory_bytes == 100

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_results([])

    def test_mixed_algorithms_rejected(self):
        with pytest.raises(ValueError, match="mix"):
            aggregate_results([make_result(), make_result(algorithm="Y")])

    def test_all_timed_out(self):
        report = aggregate_results([make_result(timed_out=True)])
        assert report.filtering_precision is None
        assert report.per_si_test_time is None
        assert report.avg_candidates is None
