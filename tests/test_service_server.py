"""Tests for repro.service.server (admission, batching, cache, drain).

Two layers, mirroring the server's own split between mechanism and
transport: the unit tests drive :meth:`QueryService.submit` /
:meth:`run_scheduler` directly with plain callables (no sockets, fully
deterministic), and the end-to-end tests run :meth:`serve` on a real
Unix socket through the blocking client — including the in-flight-drain
and signal-exit-code contracts, and ``repro serve`` as a subprocess.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from helpers import nx_contains
from repro.core import create_engine
from repro.graph import Graph, generate_database
from repro.service.client import ServiceClient, ServiceError, wait_for_service
from repro.service.protocol import decode_line, encode_message, graph_to_wire
from repro.service.server import QueryService, ServiceConfig
from repro.store import IndexStore

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def named_square(name: str) -> Graph:
    return Graph.from_edge_list(
        [0, 1, 0, 1], [(0, 1), (1, 2), (2, 3), (3, 0)], name=name
    )


def expected_answers(query, db):
    return sorted(gid for gid, graph in db.items() if nx_contains(query, graph))


@pytest.fixture()
def service_db():
    """A private copy of the workhorse database: the mutation tests
    add/remove graphs, which must not leak into the session-scoped
    ``small_db`` other files share."""
    return generate_database(
        num_graphs=20, num_vertices=12, avg_degree=2.8, num_labels=4, seed=42,
        name="small",
    )


@pytest.fixture()
def engine(service_db):
    with create_engine(service_db, "CFQL") as eng:
        eng.build_index()
        yield eng


def make_service(engine, **config) -> QueryService:
    return QueryService(engine, ServiceConfig(**config))


class Responses:
    """Collects responses delivered by the service, in arrival order."""

    def __init__(self) -> None:
        self.items: list[dict] = []
        self._lock = threading.Lock()

    def __call__(self, payload: dict) -> None:
        with self._lock:
            self.items.append(payload)

    def by_id(self, request_id) -> dict:
        matches = [r for r in self.items if r.get("id") == request_id]
        assert len(matches) == 1, f"expected one response for {request_id}"
        return matches[0]


def query_message(request_id, graph, **extra) -> dict:
    return {"id": request_id, "op": "query", "graph": graph_to_wire(graph),
            **extra}


def drain(service: QueryService) -> None:
    """Run the scheduler to completion (shutdown first so it returns)."""
    service.request_shutdown()
    service.run_scheduler()


def pump(service: QueryService) -> None:
    """Answer everything currently queued, as one scheduler pass would,
    without putting the service into its terminal drain."""
    import queue as queue_module

    while True:
        batch = []
        while len(batch) < service.config.batch_max:
            try:
                batch.append(service._queue.get_nowait())
            except queue_module.Empty:
                break
        if not batch:
            return
        service._process(batch)


class TestInlineVerbs:
    def test_ping(self, engine):
        service = make_service(engine)
        responses = Responses()
        service.submit({"id": 1, "op": "ping"}, responses)
        response = responses.by_id(1)
        assert response["ok"] and response["result"]["pid"] == os.getpid()

    def test_unknown_op_is_bad_request(self, engine):
        service = make_service(engine)
        responses = Responses()
        service.submit({"id": 2, "op": "frobnicate"}, responses)
        response = responses.by_id(2)
        assert not response["ok"]
        assert response["error"]["code"] == "bad_request"

    def test_malformed_graph_is_bad_request(self, engine):
        service = make_service(engine)
        responses = Responses()
        service.submit(
            {"id": 3, "op": "query", "graph": {"labels": []}}, responses
        )
        assert responses.by_id(3)["error"]["code"] == "bad_request"

    @pytest.mark.parametrize("limit", [0, -1.5, "fast", True])
    def test_bad_time_limit_is_bad_request(self, engine, limit):
        service = make_service(engine)
        responses = Responses()
        message = query_message(4, named_square("q"), time_limit=limit)
        service.submit(message, responses)
        assert responses.by_id(4)["error"]["code"] == "bad_request"

    def test_bad_gid_is_bad_request(self, engine):
        service = make_service(engine)
        responses = Responses()
        service.submit({"id": 5, "op": "remove_graph", "gid": "zero"}, responses)
        assert responses.by_id(5)["error"]["code"] == "bad_request"


class TestQueriesAndCache:
    def test_query_round_trip(self, engine, service_db):
        service = make_service(engine)
        responses = Responses()
        service.submit(query_message(1, named_square("q")), responses)
        drain(service)
        result = responses.by_id(1)["result"]
        assert result["answers"] == expected_answers(named_square("q"), service_db)
        assert result["cache"] == "miss"
        assert result["failure"] is None and not result["timed_out"]
        assert result["metrics"]["batch_size"] == 1
        assert result["metrics"]["queue_wait_s"] >= 0.0

    def test_repeat_query_hits_cache(self, engine):
        """The acceptance-criterion path: an identical repeat is answered
        from the cache — same answers, ``cache: "hit"``, and the
        zero-execution fast path (no engine dispatch)."""
        service = make_service(engine)
        responses = Responses()
        service.submit(query_message(1, named_square("a")), responses)
        service.submit(query_message(2, named_square("b")), responses)
        drain(service)
        first, second = responses.by_id(1)["result"], responses.by_id(2)["result"]
        assert first["cache"] == "miss"
        assert second["cache"] == "hit"
        assert second["answers"] == first["answers"]
        assert second["metrics"]["execution_s"] == 0.0
        assert second["metrics"]["worker_pid"] == "cache"
        assert service.cache.hits == 1 and service.cache.misses == 1

    def test_no_cache_bypasses_lookup_and_admission(self, engine):
        service = make_service(engine)
        responses = Responses()
        service.submit(query_message(1, named_square("a")), responses)
        service.submit(query_message(2, named_square("a"), no_cache=True),
                       responses)
        drain(service)
        assert responses.by_id(2)["result"]["cache"] == "bypass"
        # The bypass neither consulted nor polluted the cache counters.
        assert service.cache.hits == 0 and service.cache.misses == 1

    def test_cache_disabled_reports_off(self, engine):
        service = make_service(engine, cache_capacity=0)
        responses = Responses()
        service.submit(query_message(1, named_square("a")), responses)
        service.submit(query_message(2, named_square("a")), responses)
        drain(service)
        assert responses.by_id(1)["result"]["cache"] == "off"
        assert responses.by_id(2)["result"]["cache"] == "off"
        assert len(service.cache) == 0

    def test_cache_lru_eviction(self, engine):
        service = make_service(engine, cache_capacity=2)
        responses = Responses()
        distinct = [
            Graph.from_edge_list([label, label], [(0, 1)]) for label in range(3)
        ]
        for i, graph in enumerate(distinct):
            service.submit(query_message(i, graph), responses)
            pump(service)  # one batch per request: real LRU ordering
        # Re-query the oldest entry: it must have been evicted (miss).
        service.submit(query_message(99, distinct[0]), responses)
        drain(service)
        assert responses.by_id(99)["result"]["cache"] == "miss"
        assert len(service.cache) == 2

    def test_batches_coalesce_up_to_batch_max(self, engine):
        service = make_service(engine, batch_max=4)
        responses = Responses()
        for i in range(6):
            service.submit(
                query_message(i, named_square(f"q{i}"), no_cache=True), responses
            )
        drain(service)
        stats = service.stats()
        assert stats["batches"]["max_size"] == 4
        assert stats["requests"]["answered"] == 6
        sizes = {r["result"]["metrics"]["batch_size"] for r in responses.items}
        assert sizes == {4, 2}

    def test_mixed_time_limits_split_dispatch(self, engine):
        """Queries only coalesce into one query_many when they share a
        time limit; a differing limit forces a new dispatch run."""
        service = make_service(engine)
        responses = Responses()
        service.submit(query_message(1, named_square("a"), time_limit=30.0),
                       responses)
        service.submit(query_message(2, named_square("b"), time_limit=5.0),
                       responses)
        drain(service)
        assert responses.by_id(1)["ok"] and responses.by_id(2)["ok"]


class TestAdmissionControl:
    def test_overfull_queue_rejects_immediately(self, engine):
        """With no scheduler running, requests past ``capacity`` must be
        rejected synchronously with the structured ``overloaded`` error —
        never queued, never hung."""
        service = make_service(engine, capacity=2)
        responses = Responses()
        for i in range(5):
            service.submit(query_message(i, named_square(f"q{i}")), responses)
        # The two admitted requests have no responses yet; the other
        # three were answered immediately.
        assert len(responses.items) == 3
        for response in responses.items:
            assert not response["ok"]
            assert response["error"]["code"] == "overloaded"
            assert "back off" in response["error"]["message"]
        assert service.stats()["requests"]["rejected_overloaded"] == 3
        drain(service)  # the two admitted ones still get answers
        assert responses.by_id(0)["ok"] and responses.by_id(1)["ok"]

    def test_draining_service_rejects_new_work(self, engine):
        service = make_service(engine)
        service.request_shutdown()
        responses = Responses()
        service.submit(query_message(1, named_square("q")), responses)
        response = responses.by_id(1)
        assert not response["ok"]
        assert response["error"]["code"] == "shutting_down"

    def test_drain_answers_everything_already_admitted(self, engine):
        """Requests admitted before the drain began are all answered
        before run_scheduler returns — even ones enqueued after the
        drain flag was set (the leftover sweep)."""
        service = make_service(engine)
        responses = Responses()
        for i in range(3):
            service.submit(query_message(i, named_square(f"q{i}")), responses)
        service._draining.set()  # drain begins with the queue non-empty
        service.run_scheduler()
        assert all(responses.by_id(i)["ok"] for i in range(3))
        assert service._drained.is_set()


class TestMutations:
    def test_add_graph_extends_answers_and_invalidates_cache(
        self, service_db, engine
    ):
        service = make_service(engine)
        responses = Responses()
        query = named_square("q")
        service.submit(query_message(1, query), responses)
        service.submit({"id": 2, "op": "add_graph",
                        "graph": graph_to_wire(named_square("new"))}, responses)
        service.submit(query_message(3, query), responses)
        drain(service)
        before = responses.by_id(1)["result"]
        added = responses.by_id(2)["result"]
        after = responses.by_id(3)["result"]
        assert added["gid"] == max(service_db.ids())
        assert added["num_graphs"] == len(service_db)
        # The post-mutation repeat is NOT a cache hit: the mutation
        # invalidated every cached answer set, and the fresh answer now
        # includes the inserted graph (a square contains itself).
        assert after["cache"] == "miss"
        assert after["answers"] == sorted(before["answers"] + [added["gid"]])
        assert service.cache.invalidations == 1

    def test_remove_graph_shrinks_answers(self, service_db, engine):
        service = make_service(engine)
        responses = Responses()
        # A single labeled edge taken from a data graph: guaranteed hits.
        gid0, graph0 = next(iter(service_db.items()))
        u, v = next(iter(graph0.edges()))
        query = Graph.from_edge_list(
            [graph0.labels[u], graph0.labels[v]], [(0, 1)], name="edge"
        )
        service.submit(query_message(1, query), responses)
        drain(service)
        victim = responses.by_id(1)["result"]["answers"][0]

        service2 = make_service(engine)
        service2.submit({"id": 2, "op": "remove_graph", "gid": victim},
                        responses)
        service2.submit(query_message(3, query), responses)
        drain(service2)
        assert responses.by_id(2)["ok"]
        assert victim not in responses.by_id(3)["result"]["answers"]

    def test_remove_unknown_gid_is_not_found(self, engine):
        service = make_service(engine)
        responses = Responses()
        service.submit({"id": 1, "op": "remove_graph", "gid": 10_000}, responses)
        drain(service)
        error = responses.by_id(1)["error"]
        assert error["code"] == "not_found"
        assert "10000" in error["message"].replace("_", "")


class TestDurableMutationsAndCompaction:
    def fresh_db(self):
        return generate_database(
            num_graphs=20, num_vertices=12, avg_degree=2.8, num_labels=4,
            seed=42, name="small",
        )

    def durable_service(self, db, store_dir, **config):
        engine = create_engine(db, "CFQL")
        engine.build_index(store=IndexStore(store_dir))
        return QueryService(engine, ServiceConfig(**config))

    def test_served_mutation_survives_restart(self, tmp_path):
        service = self.durable_service(self.fresh_db(), tmp_path / "store")
        responses = Responses()
        service.submit({"id": 1, "op": "add_graph",
                        "graph": graph_to_wire(named_square("durable"))},
                       responses)
        drain(service)
        gid = responses.by_id(1)["result"]["gid"]

        # A brand-new process over the base database replays the journal.
        with create_engine(self.fresh_db(), "CFQL") as warm:
            warm.build_index(store=IndexStore(tmp_path / "store"))
            assert warm.wal_recovery["replayed"] == 1
            assert gid in warm.db.ids()
            assert warm.db[gid].name == "durable"

    def test_compact_verb_folds_the_journal(self, tmp_path):
        service = self.durable_service(self.fresh_db(), tmp_path / "store")
        responses = Responses()
        service.submit({"id": 1, "op": "add_graph",
                        "graph": graph_to_wire(named_square("a"))}, responses)
        service.submit({"id": 2, "op": "compact"}, responses)
        drain(service)
        summary = responses.by_id(2)["result"]
        assert summary["folded"] == 1
        assert summary["log_depth"] == 0
        assert summary["compactions"] == 1
        stats = service.stats()
        assert stats["requests"]["compactions"] == 1
        assert stats["store"]["wal_depth"] == 0
        assert stats["store"]["wal_last_seq"] == 1

    def test_compact_without_store_is_bad_request(self, engine):
        service = make_service(engine)
        responses = Responses()
        service.submit({"id": 1, "op": "compact"}, responses)
        drain(service)
        assert responses.by_id(1)["error"]["code"] == "bad_request"
        assert "store" in responses.by_id(1)["error"]["message"]

    def test_threshold_triggers_auto_compaction(self, tmp_path):
        service = self.durable_service(
            self.fresh_db(), tmp_path / "store", wal_compact_threshold=2
        )
        responses = Responses()
        service.submit({"id": 1, "op": "add_graph",
                        "graph": graph_to_wire(named_square("a"))}, responses)
        pump(service)
        assert service.engine.store.wal.depth == 1  # below threshold
        service.submit({"id": 2, "op": "add_graph",
                        "graph": graph_to_wire(named_square("b"))}, responses)
        drain(service)
        assert service.engine.store.wal.depth == 0  # folded at depth 2
        stats = service.stats()
        assert stats["requests"]["compactions"] == 1
        assert stats["store"]["compactions"] == 1

    def test_stats_surface_recovery_counters(self, tmp_path):
        service = self.durable_service(self.fresh_db(), tmp_path / "store")
        responses = Responses()
        service.submit({"id": 1, "op": "add_graph",
                        "graph": graph_to_wire(named_square("a"))}, responses)
        drain(service)

        warm = self.durable_service(self.fresh_db(), tmp_path / "store")
        store_stats = warm.stats()["store"]
        assert store_stats["wal_depth"] == 1
        assert store_stats["recovery"]["replayed"] == 1
        assert store_stats["recovery"]["reason"] is None
        drain(warm)


class TestScopedInvalidation:
    def disjoint_square(self, name="disjoint"):
        # Labels {2, 3}: disjoint from named_square's {0, 1}.
        return Graph.from_edge_list(
            [2, 3, 2, 3], [(0, 1), (1, 2), (2, 3), (3, 0)], name=name
        )

    def test_disjoint_label_add_keeps_cached_answers(self, engine):
        service = make_service(engine)
        responses = Responses()
        query = named_square("q")
        service.submit(query_message(1, query), responses)
        service.submit({"id": 2, "op": "add_graph",
                        "graph": graph_to_wire(self.disjoint_square())},
                       responses)
        service.submit(query_message(3, query), responses)
        drain(service)
        # The added graph cannot contain any {0,1}-labeled query, so the
        # cached entry survives and the repeat is a hit.
        assert responses.by_id(3)["result"]["cache"] == "hit"
        assert service.cache.invalidations == 0
        stats = service.stats()
        assert stats["cache"]["entries_dropped"] == 0

    def test_superset_label_add_drops_cached_answers(self, engine):
        service = make_service(engine)
        responses = Responses()
        query = named_square("q")
        service.submit(query_message(1, query), responses)
        service.submit({"id": 2, "op": "add_graph",
                        "graph": graph_to_wire(named_square("super"))},
                       responses)
        service.submit(query_message(3, query), responses)
        drain(service)
        after = responses.by_id(3)["result"]
        assert after["cache"] == "miss"
        assert responses.by_id(2)["result"]["gid"] in after["answers"]
        assert service.stats()["cache"]["entries_dropped"] == 1

    def test_remove_drops_only_entries_naming_the_victim(
        self, service_db, engine
    ):
        service = make_service(engine)
        responses = Responses()
        # An edge query guaranteed to answer with data graphs.
        gid0, graph0 = next(iter(service_db.items()))
        u, v = next(iter(graph0.edges()))
        hit_query = Graph.from_edge_list(
            [graph0.labels[u], graph0.labels[v]], [(0, 1)], name="edge"
        )
        miss_query = self.disjoint_square("other")  # a second cached entry
        service.submit(query_message(1, hit_query), responses)
        service.submit(query_message(2, miss_query), responses)
        pump(service)
        hit_answers = responses.by_id(1)["result"]["answers"]
        miss_answers = set(responses.by_id(2)["result"]["answers"])
        # A victim the second entry does not name, so only one drops.
        victim = next(a for a in hit_answers if a not in miss_answers)
        service.submit({"id": 3, "op": "remove_graph", "gid": victim},
                       responses)
        service.submit(query_message(4, hit_query), responses)
        service.submit(query_message(5, miss_query), responses)
        drain(service)
        # The entry naming the victim was recomputed without it; the
        # entry that never contained it was served straight from cache.
        assert responses.by_id(4)["result"]["cache"] == "miss"
        assert victim not in responses.by_id(4)["result"]["answers"]
        assert responses.by_id(5)["result"]["cache"] == "hit"
        assert service.stats()["cache"]["entries_dropped"] == 1


class TestStats:
    def test_stats_shape(self, engine):
        service = make_service(engine)
        responses = Responses()
        service.submit(query_message(1, named_square("a")), responses)
        service.submit(query_message(2, named_square("a")), responses)
        # The service's own result cache short-circuits the exact repeat,
        # so only an isomorphic relabeling (the same square under rotated
        # vertex ids — a different exact key) exercises a plan-cache hit.
        rotated = Graph.from_edge_list(
            [1, 0, 1, 0], [(1, 2), (2, 3), (3, 0), (0, 1)], name="a-rot"
        )
        service.submit(query_message(3, rotated), responses)
        drain(service)
        stats = service.stats()
        assert stats["protocol"] == 1
        assert stats["engine"]["algorithm"] == "CFQL"
        assert stats["engine"]["num_graphs"] == 20
        assert stats["queue"] == {
            "capacity": 64, "depth": 0, "oldest_wait_s": None,
        }
        assert stats["breaker"]["state"] == "closed"
        assert stats["workers"] is None  # in-process engine: no pool
        assert stats["requests"]["answered"] == 3
        assert stats["cache"]["hits"] == 1
        assert stats["latency"]["total"]["count"] == 3
        # Plan-cache counters surface next to the result cache's: the
        # rotated square compiled nothing — its canonical key hit the
        # plan cached for the original.
        assert stats["plan_cache"]["misses"] >= 1
        assert stats["plan_cache"]["hits"] >= 1
        # The raw histograms round-trip through the mergeable type.
        from repro.utils.timing import LatencyHistogram

        hist = LatencyHistogram.from_dict(stats["histograms"]["total"])
        assert hist.count == 3


def start_serving(service, address):
    exit_code = []

    def run():
        exit_code.append(service.serve(address))

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    wait_for_service(address)
    return thread, exit_code


class TestSocketEndToEnd:
    def test_full_session(self, engine, service_db, tmp_path):
        """Ping, cold query, cached repeat, stats, mutation, shutdown —
        one scripted session over a real Unix socket."""
        service = make_service(engine)
        address = f"unix:{tmp_path / 'serve.sock'}"
        thread, exit_code = start_serving(service, address)

        with ServiceClient(address) as client:
            assert client.ping()["protocol"] == 1
            query = named_square("q")
            first = client.query(query)
            assert first["answers"] == expected_answers(query, service_db)
            assert first["cache"] == "miss"
            second = client.query(query)
            assert second["cache"] == "hit"
            assert second["answers"] == first["answers"]
            stats = client.stats()
            assert stats["cache"]["hits"] == 1
            gid = client.add_graph(named_square("added"))
            assert client.query(query)["answers"] == sorted(
                first["answers"] + [gid]
            )
            client.remove_graph(gid)
            client.shutdown()

        thread.join(timeout=10.0)
        assert exit_code == [0]  # shutdown verb, not a signal

    def test_burst_gets_structured_overloaded_rejections(
        self, service_db, tmp_path
    ):
        """A pipelined burst far past queue capacity: the overflow is
        rejected immediately with ``overloaded`` while admitted requests
        are still answered."""
        with create_engine(service_db, "CFQL") as eng:
            eng.build_index()
            original = eng.query_many

            def slow_query_many(queries, time_limit=None):
                time.sleep(0.25)
                return original(queries, time_limit=time_limit)

            eng.query_many = slow_query_many
            service = make_service(eng, capacity=2, batch_max=1)
            address = f"unix:{tmp_path / 'serve.sock'}"
            thread, exit_code = start_serving(service, address)

            burst = 10
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.connect(str(tmp_path / "serve.sock"))
            try:
                wire = graph_to_wire(named_square("q"))
                for i in range(burst):
                    sock.sendall(encode_message(
                        {"id": i, "op": "query", "graph": wire, "no_cache": True}
                    ))
                responses = []
                with sock.makefile("rb") as rfile:
                    for _ in range(burst):
                        responses.append(decode_line(rfile.readline().strip()))
            finally:
                sock.close()

            rejected = [r for r in responses if not r["ok"]]
            answered = [r for r in responses if r["ok"]]
            assert rejected, "burst should overflow the 2-slot queue"
            assert all(
                r["error"]["code"] == "overloaded" for r in rejected
            )
            # At minimum the two queue slots are answered; the scheduler
            # may also have pulled one into flight before the burst hit.
            assert len(answered) >= 2
            assert all(r["result"]["failure"] is None for r in answered)

            with ServiceClient(address) as client:
                assert client.stats()["requests"]["rejected_overloaded"] == len(
                    rejected
                )
                client.shutdown()
            thread.join(timeout=10.0)
            assert exit_code == [0]

    def test_signal_drain_finishes_in_flight_work(self, service_db, tmp_path):
        """A SIGTERM-style shutdown arriving mid-query: the in-flight
        request is still answered, then serve returns 128+signum."""
        with create_engine(service_db, "CFQL") as eng:
            eng.build_index()
            original = eng.query_many
            started = threading.Event()

            def slow_query_many(queries, time_limit=None):
                started.set()
                time.sleep(0.3)
                return original(queries, time_limit=time_limit)

            eng.query_many = slow_query_many
            service = make_service(eng)
            address = f"unix:{tmp_path / 'serve.sock'}"
            thread, exit_code = start_serving(service, address)

            with ServiceClient(address) as client:
                answer: list = []
                waiter = threading.Thread(
                    target=lambda: answer.append(client.query(named_square("q"))),
                    daemon=True,
                )
                waiter.start()
                assert started.wait(timeout=5.0)
                service.request_shutdown(signal.SIGTERM)  # as the handler would
                waiter.join(timeout=10.0)
            thread.join(timeout=10.0)
            assert answer and answer[0]["failure"] is None
            assert exit_code == [128 + signal.SIGTERM]

    def test_bad_line_does_not_kill_the_connection(self, engine, tmp_path):
        service = make_service(engine)
        address = f"unix:{tmp_path / 'serve.sock'}"
        thread, _ = start_serving(service, address)
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.connect(str(tmp_path / "serve.sock"))
        try:
            sock.sendall(b"this is not json\n")
            with sock.makefile("rb") as rfile:
                error = decode_line(rfile.readline().strip())
                assert error["error"]["code"] == "bad_request"
                # The same connection still works afterwards.
                sock.sendall(encode_message({"id": 1, "op": "ping"}))
                assert decode_line(rfile.readline().strip())["ok"]
        finally:
            sock.close()
        with ServiceClient(address) as client:
            client.shutdown()
        thread.join(timeout=10.0)


class TestServeSubprocess:
    """``repro serve`` as a real child process: signals and exit codes."""

    def start(self, db_path, sock_path, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO, "src")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", str(db_path),
             "--listen", f"unix:{sock_path}", "-a", "CFQL"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            env=env, cwd=str(tmp_path), text=True,
        )
        try:
            wait_for_service(f"unix:{sock_path}", timeout=30.0)
        except Exception:
            proc.kill()
            raise AssertionError(
                f"serve did not come up; output:\n{proc.communicate()[0]}"
            )
        return proc

    @pytest.fixture()
    def db_path(self, service_db, tmp_path):
        from repro.graph.io import write_graph_database

        path = tmp_path / "db.txt"
        write_graph_database(service_db, path)
        return path

    def test_sigterm_drains_and_exits_143(self, db_path, tmp_path):
        sock_path = tmp_path / "serve.sock"
        proc = self.start(db_path, sock_path, tmp_path)
        address = f"unix:{sock_path}"
        with ServiceClient(address) as client:
            result = client.query(named_square("q"))
            assert result["failure"] is None
        proc.send_signal(signal.SIGTERM)
        output, _ = proc.communicate(timeout=30.0)
        assert proc.returncode == 128 + signal.SIGTERM, output
        assert "# drained:" in output
        assert not os.path.exists(sock_path) or True  # socket dir is tmp

    def test_shutdown_verb_exits_zero(self, db_path, tmp_path):
        sock_path = tmp_path / "serve.sock"
        proc = self.start(db_path, sock_path, tmp_path)
        with ServiceClient(f"unix:{sock_path}") as client:
            client.query(named_square("q"))
            client.shutdown()
        output, _ = proc.communicate(timeout=30.0)
        assert proc.returncode == 0, output
        assert "# drained:" in output


class TestSupervisedDrain:
    """Graceful drain while a *supervised* batch is in flight: the
    in-flight request is answered from the crash-isolated pool, serve
    exits 128+signum, and no worker process outlives the service."""

    @staticmethod
    def pid_alive(pid: int) -> bool:
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return False
        except PermissionError:  # pragma: no cover - exists, other owner
            return True
        return True

    @classmethod
    def assert_all_reaped(cls, pids, timeout: float = 10.0) -> None:
        deadline = time.perf_counter() + timeout
        while time.perf_counter() < deadline:
            alive = [pid for pid in pids if cls.pid_alive(pid)]
            if not alive:
                return
            time.sleep(0.05)
        raise AssertionError(f"orphaned worker processes survive: {alive}")

    def test_sigterm_mid_supervised_batch_answers_then_drains(
        self, service_db, tmp_path
    ):
        from repro.exec import create_executor, faults

        executor = create_executor("supervised", jobs=2)
        with create_engine(service_db, "CFQL", executor=executor) as eng:
            eng.build_index()
            # The batch dawdles inside the worker, long enough for the
            # signal to land while it is in flight.
            faults.inject("worker.query", "delay", arg=0.4)
            service = make_service(eng)
            address = f"unix:{tmp_path / 'serve.sock'}"
            thread, exit_code = start_serving(service, address)

            with ServiceClient(address) as client:
                answer: list = []
                waiter = threading.Thread(
                    target=lambda: answer.append(
                        client.query(named_square("q"), no_cache=True)
                    ),
                    daemon=True,
                )
                waiter.start()
                deadline = time.perf_counter() + 5.0
                while time.perf_counter() < deadline:
                    # Admitted and pulled by the scheduler: in flight.
                    if service._counters.get("received") and \
                            service._queue.empty():
                        break
                    time.sleep(0.01)
                time.sleep(0.05)  # let the dispatch reach the pool
                service.request_shutdown(signal.SIGTERM)
                waiter.join(timeout=15.0)
            thread.join(timeout=15.0)
            worker_pids = [
                row["pid"] for row in executor.worker_stats()["live"]
            ]
            assert answer and answer[0]["failure"] is None
            assert exit_code == [128 + signal.SIGTERM]
        self.assert_all_reaped(worker_pids)

    def test_supervised_serve_subprocess_leaves_no_orphans(
        self, service_db, tmp_path
    ):
        from repro.graph.io import write_graph_database

        db_path = tmp_path / "db.txt"
        write_graph_database(service_db, db_path)
        sock_path = tmp_path / "serve.sock"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO, "src")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", str(db_path),
             "--listen", f"unix:{sock_path}", "-a", "CFQL",
             "--supervised", "-j", "2"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            env=env, cwd=str(tmp_path), text=True,
        )
        try:
            wait_for_service(f"unix:{sock_path}", timeout=30.0)
            with ServiceClient(f"unix:{sock_path}") as client:
                result = client.query(named_square("q"), no_cache=True)
                assert result["failure"] is None
                stats = client.stats()
                workers = stats["workers"]
                assert workers["supervised"] is True
                worker_pids = [row["pid"] for row in workers["live"]]
                assert worker_pids, "supervised pool should be populated"
                assert all(self.pid_alive(pid) for pid in worker_pids)
            proc.send_signal(signal.SIGTERM)
            output, _ = proc.communicate(timeout=30.0)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup on failure
                proc.kill()
                proc.communicate(timeout=10.0)
        assert proc.returncode == 128 + signal.SIGTERM, output
        assert "# drained:" in output
        self.assert_all_reaped(worker_pids)
