"""Tests for repro.index.grapes."""

from __future__ import annotations

import pytest

from repro.graph import Graph, GraphDatabase
from repro.index import GrapesIndex
from repro.utils.errors import MemoryLimitExceeded, TimeLimitExceeded
from repro.utils.timing import Deadline

from helpers import path_graph, triangle


@pytest.fixture()
def two_graph_db() -> GraphDatabase:
    db = GraphDatabase()
    db.add_graph(triangle(0))                 # gid 0
    db.add_graph(path_graph([0, 0, 0, 1]))    # gid 1
    return db


class TestBuildAndFilter:
    def test_count_filter_distinguishes_multiplicity(self, two_graph_db):
        index = GrapesIndex(max_path_edges=2)
        index.build(two_graph_db)
        # Two disjoint 0-0 edges exist only in the path graph... both have
        # >= 2 directed instances; use the triangle (3 edges → 6 instances).
        q2 = triangle(0)
        assert index.candidates(q2) == {0}

    def test_path_query_matches_both(self, two_graph_db):
        index = GrapesIndex(max_path_edges=2)
        index.build(two_graph_db)
        assert index.candidates(path_graph([0, 0])) == {0, 1}

    def test_unknown_feature_filters_all(self, two_graph_db):
        index = GrapesIndex(max_path_edges=2)
        index.build(two_graph_db)
        assert index.candidates(path_graph([5, 5])) == set()

    def test_label_only_query(self, two_graph_db):
        index = GrapesIndex()
        index.build(two_graph_db)
        assert index.candidates(Graph.from_edge_list([1], [])) == {1}

    def test_indexed_ids(self, two_graph_db):
        index = GrapesIndex()
        index.build(two_graph_db)
        assert index.indexed_ids == {0, 1}

    def test_duplicate_graph_id_rejected(self, two_graph_db):
        index = GrapesIndex()
        index.build(two_graph_db)
        with pytest.raises(ValueError, match="already indexed"):
            index.add_graph(0, triangle())

    def test_invalid_path_length(self):
        with pytest.raises(ValueError):
            GrapesIndex(max_path_edges=0)


class TestMaintenance:
    def test_incremental_add(self, two_graph_db):
        index = GrapesIndex(max_path_edges=2)
        index.build(two_graph_db)
        index.add_graph(7, triangle(0))
        assert index.candidates(triangle(0)) == {0, 7}

    def test_remove(self, two_graph_db):
        index = GrapesIndex(max_path_edges=2)
        index.build(two_graph_db)
        index.remove_graph(0)
        assert index.candidates(triangle(0)) == set()
        assert index.indexed_ids == {1}

    def test_remove_unknown_raises(self, two_graph_db):
        index = GrapesIndex()
        with pytest.raises(KeyError):
            index.remove_graph(3)


class TestBudgets:
    def test_indexing_deadline(self):
        g = Graph.from_edge_list(
            [0] * 14, [(u, v) for u in range(14) for v in range(u + 1, 14)]
        )
        index = GrapesIndex(max_path_edges=4)
        with pytest.raises(TimeLimitExceeded):
            index.add_graph(0, g, deadline=Deadline(0.0))

    def test_feature_budget(self):
        g = path_graph(list(range(12)))
        index = GrapesIndex(max_path_edges=4, max_features_per_graph=3)
        with pytest.raises(MemoryLimitExceeded):
            index.add_graph(0, g)


class TestLocations:
    def test_occurrence_locations(self, two_graph_db):
        index = GrapesIndex(max_path_edges=2, with_locations=True)
        index.build(two_graph_db)
        locations = index.occurrence_locations(path_graph([0, 0]), 0)
        assert locations == {0, 1, 2}  # every triangle vertex starts a 0-0 path

    def test_locations_none_when_disabled(self, two_graph_db):
        index = GrapesIndex(with_locations=False)
        index.build(two_graph_db)
        assert index.occurrence_locations(path_graph([0, 0]), 0) is None

    def test_memory_larger_with_locations(self, two_graph_db):
        with_loc = GrapesIndex(max_path_edges=2, with_locations=True)
        without = GrapesIndex(max_path_edges=2, with_locations=False)
        with_loc.build(two_graph_db)
        without.build(two_graph_db)
        assert with_loc.memory_bytes() > without.memory_bytes()
