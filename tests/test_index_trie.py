"""Tests for repro.index.trie (Grapes' path trie)."""

from __future__ import annotations

from repro.index import PathTrie


class TestInsertAndFind:
    def test_lookup_returns_counts(self):
        trie = PathTrie()
        trie.insert((1, 2), graph_id=0, count=3)
        trie.insert((1, 2), graph_id=1, count=1)
        node = trie.find((1, 2))
        assert node is not None
        assert node.counts == {0: 3, 1: 1}

    def test_missing_sequence(self):
        trie = PathTrie()
        trie.insert((1,), 0, 1)
        assert trie.find((2,)) is None
        assert trie.graph_count((9, 9), 0) == 0

    def test_repeated_insert_accumulates(self):
        trie = PathTrie()
        trie.insert((5,), 0, 2)
        trie.insert((5,), 0, 3)
        assert trie.graph_count((5,), 0) == 5

    def test_prefixes_are_distinct_nodes(self):
        trie = PathTrie()
        trie.insert((1, 2, 3), 0, 1)
        trie.insert((1, 2), 0, 7)
        assert trie.graph_count((1, 2), 0) == 7
        assert trie.graph_count((1, 2, 3), 0) == 1

    def test_node_count_shares_prefixes(self):
        trie = PathTrie()
        trie.insert((1, 2, 3), 0, 1)
        trie.insert((1, 2, 4), 0, 1)
        assert trie.num_nodes == 5  # root + 1 + 2 + {3,4}


class TestGraphsWithCount:
    def test_minimum_threshold(self):
        trie = PathTrie()
        trie.insert((1,), 0, 1)
        trie.insert((1,), 1, 5)
        assert trie.graphs_with_count((1,), 2) == {1}
        assert trie.graphs_with_count((1,), 1) == {0, 1}
        assert trie.graphs_with_count((2,), 1) == set()


class TestLocations:
    def test_locations_stored_when_enabled(self):
        trie = PathTrie(with_locations=True)
        trie.insert((1, 2), 0, 2, locations={4, 7})
        trie.insert((1, 2), 0, 1, locations={9})
        node = trie.find((1, 2))
        assert node is not None and node.locations is not None
        assert node.locations[0] == {4, 7, 9}

    def test_locations_ignored_when_disabled(self):
        trie = PathTrie(with_locations=False)
        trie.insert((1,), 0, 1, locations={2})
        node = trie.find((1,))
        assert node is not None and node.locations is None


class TestRemoveGraph:
    def test_remove_erases_everywhere(self):
        trie = PathTrie(with_locations=True)
        trie.insert((1, 2), 0, 1, locations={0})
        trie.insert((1, 2), 1, 1, locations={1})
        trie.insert((3,), 0, 2, locations={2})
        trie.remove_graph(0)
        assert trie.graph_count((1, 2), 0) == 0
        assert trie.graph_count((1, 2), 1) == 1
        # The (3,) subtree lost its last payload and is pruned outright.
        assert trie.find((3,)) is None

    def test_remove_prunes_dead_subtrees(self):
        trie = PathTrie()
        trie.insert((1, 2, 3), 0, 1)
        trie.insert((1,), 1, 1)
        nodes_before = trie.num_nodes
        trie.remove_graph(0)
        # (1,2) and (1,2,3) are payload-free and childless — dropped;
        # (1,) survives because graph 1 still uses it.
        assert trie.find((1, 2)) is None
        assert trie.find((1, 2, 3)) is None
        assert trie.graph_count((1,), 1) == 1
        assert trie.num_nodes == nodes_before - 2
        # Pruning keeps the node count consistent with a rebuilt twin.
        rebuilt = PathTrie()
        rebuilt.insert((1,), 1, 1)
        assert trie.num_nodes == rebuilt.num_nodes

    def test_num_entries(self):
        trie = PathTrie()
        trie.insert((1,), 0, 1)
        trie.insert((1,), 1, 1)
        trie.insert((2,), 0, 1)
        assert trie.num_entries() == 3
