"""Tests for repro.cli (the command-line interface)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.graph import GraphDatabase, read_graph_database, write_graph_database

from helpers import path_graph, triangle


@pytest.fixture()
def db_file(tmp_path):
    db = GraphDatabase()
    db.add_graphs([triangle(0), path_graph([0, 0, 0]), path_graph([1, 2])])
    path = tmp_path / "db.txt"
    write_graph_database(db, path)
    return path


@pytest.fixture()
def query_file(tmp_path):
    queries = GraphDatabase()
    queries.add_graph(path_graph([0, 0]))
    path = tmp_path / "q.txt"
    write_graph_database(queries, path)
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "a", "b", "-a", "NoSuch"])


class TestGenerate:
    def test_writes_database(self, tmp_path):
        out = tmp_path / "g.txt"
        code = main([
            "generate", "--graphs", "5", "--vertices", "8",
            "--degree", "2", "--labels", "3", "-o", str(out),
        ])
        assert code == 0
        db = read_graph_database(out)
        assert len(db) == 5
        assert db[0].num_vertices == 8

    def test_deterministic_seed(self, tmp_path):
        a, b = tmp_path / "a.txt", tmp_path / "b.txt"
        for out in (a, b):
            main(["generate", "--graphs", "2", "--vertices", "6",
                  "--degree", "2", "--labels", "2", "--seed", "7",
                  "-o", str(out)])
        assert a.read_text() == b.read_text()


class TestDataset:
    def test_writes_stand_in(self, tmp_path):
        out = tmp_path / "aids.txt"
        code = main(["dataset", "AIDS", "--scale", "0.01", "-o", str(out)])
        assert code == 0
        db = read_graph_database(out)
        assert len(db) == 8  # 800 × 0.01
        assert db[0].num_vertices == 45


class TestStats:
    def test_prints_table_iv_rows(self, db_file, capsys):
        assert main(["stats", str(db_file)]) == 0
        out = capsys.readouterr().out
        assert "#graphs" in out and "degree per graph" in out


class TestQuery:
    def test_answers_printed(self, db_file, query_file, capsys):
        code = main(["query", str(db_file), str(query_file), "-a", "CFQL"])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 answers [0,1]" in out

    def test_index_based_algorithm(self, db_file, query_file, capsys):
        code = main(["query", str(db_file), str(query_file), "-a", "Grapes"])
        assert code == 0
        out = capsys.readouterr().out
        assert "index built" in out
        assert "2 answers [0,1]" in out


def _answer_lines(out: str) -> list[str]:
    """Query output lines with the (run-dependent) timings stripped."""
    return [
        line.split(" filter=")[0]
        for line in out.splitlines()
        if line.startswith("query")
    ]


class TestJobsValidation:
    @pytest.mark.parametrize("value", ["0", "-3", "nope"])
    @pytest.mark.parametrize("command", ["query", "reproduce", "bench-micro"])
    def test_bad_jobs_rejected_with_clear_error(self, command, value, capsys):
        argv = {
            "query": ["query", "db", "q", "--jobs", value],
            "reproduce": ["reproduce", "table4", "--jobs", value],
            "bench-micro": ["bench-micro", "--jobs", value],
        }[command]
        with pytest.raises(SystemExit) as err:
            main(argv)
        assert err.value.code == 2
        assert "--jobs" in capsys.readouterr().err

    def test_env_jobs_rejected_with_clear_error(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_BENCH_JOBS", "0")
        code = main(["reproduce", "table4"])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err and "REPRO_BENCH_JOBS" in err

    def test_jobs_one_accepted(self, db_file, query_file):
        assert main(["query", str(db_file), str(query_file), "--jobs", "1"]) == 0


class TestShardsFlag:
    @pytest.mark.parametrize("value", ["0", "-2", "many"])
    @pytest.mark.parametrize("command", ["query", "serve", "reproduce"])
    def test_bad_shards_rejected_with_clear_error(self, command, value, capsys):
        argv = {
            "query": ["query", "db", "q", "--shards", value],
            "serve": ["serve", "db", "--listen", "unix:/tmp/x.sock",
                      "--shards", value],
            "reproduce": ["reproduce", "table4", "--shards", value],
        }[command]
        with pytest.raises(SystemExit) as err:
            main(argv)
        assert err.value.code == 2
        assert "--shards" in capsys.readouterr().err

    def test_query_sharded_matches_unsharded(self, db_file, query_file,
                                             capsys):
        assert main(["query", str(db_file), str(query_file)]) == 0
        baseline = _answer_lines(capsys.readouterr().out)
        assert main([
            "query", str(db_file), str(query_file), "--shards", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert _answer_lines(out) == baseline
        assert "# sharded: 2 shards (hash placement, thread host)" in out

    def test_connect_plus_shards_rejected(self, query_file, capsys):
        code = main([
            "query", str(query_file), "--connect", "unix:/tmp/x.sock",
            "--shards", "2",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err and "--connect" in err

    def test_reproduce_shards_plus_store_rejected(self, tmp_path, capsys):
        code = main([
            "reproduce", "table4", "--shards", "2",
            "--index-store", str(tmp_path / "idx"),
        ])
        assert code == 2
        assert "--shards" in capsys.readouterr().err

    def test_sharded_store_requires_matching_flag(self, db_file, query_file,
                                                  tmp_path, capsys):
        store = tmp_path / "store"
        assert main([
            "query", str(db_file), str(query_file), "-a", "Grapes",
            "--shards", "2", "--index-store", str(store),
        ]) == 0
        capsys.readouterr()
        # Reopening the sharded store unsharded is a structured error...
        code = main([
            "query", str(db_file), str(query_file), "-a", "Grapes",
            "--index-store", str(store),
        ])
        assert code == 2
        assert "pass --shards 2" in capsys.readouterr().err
        # ...and reopening with the right count warm-starts.
        assert main([
            "query", str(db_file), str(query_file), "-a", "Grapes",
            "--shards", "2", "--index-store", str(store),
        ]) == 0
        assert "warm-started" in capsys.readouterr().out


class TestIndexStore:
    def test_query_warm_starts_from_store(self, db_file, query_file,
                                          tmp_path, capsys):
        store = tmp_path / "idx"
        args = ["query", str(db_file), str(query_file), "-a", "Grapes",
                "--index-store", str(store)]
        assert main(args) == 0
        cold_out = capsys.readouterr().out
        assert "index built" in cold_out
        assert main(args) == 0
        warm_out = capsys.readouterr().out
        assert "warm-started from snapshot" in warm_out
        # Same answers either way.
        assert _answer_lines(cold_out) == _answer_lines(warm_out)

    def test_query_recovers_from_corrupt_snapshot(self, db_file, query_file,
                                                  tmp_path, capsys):
        store = tmp_path / "idx"
        args = ["query", str(db_file), str(query_file), "-a", "Grapes",
                "--index-store", str(store)]
        assert main(args) == 0
        baseline = capsys.readouterr().out
        snap = store / "Grapes.snap"
        damaged = bytearray(snap.read_bytes())
        damaged[-1] ^= 0x01
        snap.write_bytes(bytes(damaged))
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "snapshot rejected (checksum)" in out
        assert _answer_lines(out) == _answer_lines(baseline)

    def test_index_build_and_verify(self, db_file, tmp_path, capsys):
        store = tmp_path / "idx"
        code = main(["index", "build", str(db_file), "--store", str(store),
                     "-a", "Grapes", "-a", "GGSX"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Grapes: built" in out and "GGSX: built" in out
        assert sorted(p.name for p in store.iterdir()) == [
            "GGSX.snap", "Grapes.snap"
        ]
        code = main(["index", "verify", str(store), "-d", str(db_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Grapes.snap: ok" in out and "GGSX.snap: ok" in out

    def test_index_build_skips_index_free_algorithms(self, db_file, tmp_path,
                                                     capsys):
        store = tmp_path / "idx"
        code = main(["index", "build", str(db_file), "--store", str(store),
                     "-a", "CFQL"])
        assert code == 0
        assert "index-free" in capsys.readouterr().out
        assert not store.exists()

    def test_index_verify_flags_corruption(self, db_file, tmp_path, capsys):
        store = tmp_path / "idx"
        main(["index", "build", str(db_file), "--store", str(store),
              "-a", "Grapes"])
        capsys.readouterr()
        snap = store / "Grapes.snap"
        snap.write_bytes(snap.read_bytes()[:-4])  # truncate
        code = main(["index", "verify", str(store), "-d", str(db_file)])
        assert code == 1
        assert "INVALID [truncated]" in capsys.readouterr().out

    def test_index_verify_flags_stale_database(self, db_file, tmp_path,
                                               capsys):
        store = tmp_path / "idx"
        main(["index", "build", str(db_file), "--store", str(store),
              "-a", "Grapes"])
        capsys.readouterr()
        other = tmp_path / "other.txt"
        db = GraphDatabase()
        db.add_graphs([triangle(1), path_graph([2, 2])])
        write_graph_database(db, other)
        code = main(["index", "verify", str(store), "-d", str(other)])
        assert code == 1
        assert "INVALID [db-fingerprint]" in capsys.readouterr().out

    def test_index_verify_empty_store(self, tmp_path, capsys):
        assert main(["index", "verify", str(tmp_path / "empty")]) == 1
        assert "no snapshots" in capsys.readouterr().err


class TestErrorReporting:
    def test_malformed_database_is_one_line_error(self, tmp_path, query_file,
                                                  capsys):
        bad = tmp_path / "bad.txt"
        bad.write_text("t # 0\nv 0 0\ne 0 7\n")
        code = main(["query", str(bad), str(query_file)])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "line 3" in err


class TestReproduce:
    def test_unknown_artifact_rejected(self, capsys):
        code = main(["reproduce", "table99"])
        assert code == 2
        assert "unknown artifact" in capsys.readouterr().err


class TestQueryCache:
    """Satellite 1: the --cache flag on local query runs."""

    def test_cache_flag_stamps_outcomes_and_summary(
        self, db_file, tmp_path, capsys
    ):
        queries = GraphDatabase()
        queries.add_graph(path_graph([0, 0]))
        queries.add_graph(path_graph([0, 0]))  # identical repeat
        qpath = tmp_path / "qq.txt"
        write_graph_database(queries, qpath)

        code = main(["query", str(db_file), str(qpath), "-a", "CFQL",
                     "--cache", "8"])
        assert code == 0
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines() if l.startswith("query")]
        assert lines[0].endswith("cache=miss")
        assert lines[1].endswith("cache=hit")
        assert "[0,1]" in lines[0] and "[0,1]" in lines[1]
        assert "# cache: 1/2 queries hit" in out

    def test_without_cache_flag_no_cache_output(self, db_file, query_file,
                                                capsys):
        assert main(["query", str(db_file), str(query_file), "-a", "CFQL"]) == 0
        out = capsys.readouterr().out
        assert "cache=" not in out and "# cache:" not in out


class TestServeParser:
    def test_listen_is_required(self, db_file, capsys):
        with pytest.raises(SystemExit) as err:
            main(["serve", str(db_file)])
        assert err.value.code == 2
        assert "--listen" in capsys.readouterr().err

    def test_connect_rejects_database_plus_queries(
        self, db_file, query_file, capsys
    ):
        code = main(["query", str(db_file), str(query_file),
                     "--connect", "unix:/tmp/nope.sock"])
        assert code == 2
        assert "only the query file" in capsys.readouterr().err

    def test_local_query_requires_query_file(self, db_file, capsys):
        code = main(["query", str(db_file)])
        assert code == 2
        assert "query file" in capsys.readouterr().err

    def test_bench_serve_parser_defaults(self):
        args = build_parser().parse_args(["bench-serve"])
        assert args.output == "BENCH_serve.json"
        assert args.quick is False


class TestServeRoundTrip:
    def test_serve_answers_cli_query_connect(self, db_file, query_file,
                                             tmp_path, capsys):
        """`repro serve` in a thread, `repro query --connect` against it:
        the remote output matches the local run, plus a cache column."""
        import threading

        from repro.service.client import ServiceClient, wait_for_service

        address = f"unix:{tmp_path / 'cli.sock'}"
        codes = []
        thread = threading.Thread(
            target=lambda: codes.append(
                main(["serve", str(db_file), "--listen", address,
                      "-a", "CFQL"])
            ),
            daemon=True,
        )
        thread.start()
        wait_for_service(address)

        local = main(["query", str(db_file), str(query_file), "-a", "CFQL"])
        remote = main(["query", str(query_file), "--connect", address])
        remote_again = main(["query", str(query_file), "--connect", address])
        out = capsys.readouterr().out
        assert local == remote == remote_again == 0
        stripped = _answer_lines(out)
        assert stripped[0] == stripped[1] == stripped[2]  # same answers
        raw = [l for l in out.splitlines() if l.startswith("query")]
        assert raw[1].endswith("cache=miss")
        assert raw[2].endswith("cache=hit")

        with ServiceClient(address) as client:
            assert client.stats()["cache"]["hits"] == 1
            client.shutdown()
        thread.join(timeout=10.0)
        assert codes == [0]
