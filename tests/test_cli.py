"""Tests for repro.cli (the command-line interface)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.graph import GraphDatabase, read_graph_database, write_graph_database

from helpers import path_graph, triangle


@pytest.fixture()
def db_file(tmp_path):
    db = GraphDatabase()
    db.add_graphs([triangle(0), path_graph([0, 0, 0]), path_graph([1, 2])])
    path = tmp_path / "db.txt"
    write_graph_database(db, path)
    return path


@pytest.fixture()
def query_file(tmp_path):
    queries = GraphDatabase()
    queries.add_graph(path_graph([0, 0]))
    path = tmp_path / "q.txt"
    write_graph_database(queries, path)
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "a", "b", "-a", "NoSuch"])


class TestGenerate:
    def test_writes_database(self, tmp_path):
        out = tmp_path / "g.txt"
        code = main([
            "generate", "--graphs", "5", "--vertices", "8",
            "--degree", "2", "--labels", "3", "-o", str(out),
        ])
        assert code == 0
        db = read_graph_database(out)
        assert len(db) == 5
        assert db[0].num_vertices == 8

    def test_deterministic_seed(self, tmp_path):
        a, b = tmp_path / "a.txt", tmp_path / "b.txt"
        for out in (a, b):
            main(["generate", "--graphs", "2", "--vertices", "6",
                  "--degree", "2", "--labels", "2", "--seed", "7",
                  "-o", str(out)])
        assert a.read_text() == b.read_text()


class TestDataset:
    def test_writes_stand_in(self, tmp_path):
        out = tmp_path / "aids.txt"
        code = main(["dataset", "AIDS", "--scale", "0.01", "-o", str(out)])
        assert code == 0
        db = read_graph_database(out)
        assert len(db) == 8  # 800 × 0.01
        assert db[0].num_vertices == 45


class TestStats:
    def test_prints_table_iv_rows(self, db_file, capsys):
        assert main(["stats", str(db_file)]) == 0
        out = capsys.readouterr().out
        assert "#graphs" in out and "degree per graph" in out


class TestQuery:
    def test_answers_printed(self, db_file, query_file, capsys):
        code = main(["query", str(db_file), str(query_file), "-a", "CFQL"])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 answers [0,1]" in out

    def test_index_based_algorithm(self, db_file, query_file, capsys):
        code = main(["query", str(db_file), str(query_file), "-a", "Grapes"])
        assert code == 0
        out = capsys.readouterr().out
        assert "index built" in out
        assert "2 answers [0,1]" in out


class TestReproduce:
    def test_unknown_artifact_rejected(self, capsys):
        code = main(["reproduce", "table99"])
        assert code == 2
        assert "unknown artifact" in capsys.readouterr().err
