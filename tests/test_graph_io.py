"""Tests for repro.graph.io (the t/v/e exchange format)."""

from __future__ import annotations

import pytest

from repro.graph import (
    GraphDatabase,
    parse_graph_database,
    read_graph_database,
    serialize_graph_database,
    write_graph_database,
)
from repro.graph.generators import generate_database
from repro.utils.errors import GraphFormatError

from helpers import triangle

SAMPLE = """
t # mol0
v 0 0
v 1 1
e 0 1
t # mol1
v 0 2
"""


class TestParsing:
    def test_basic_parse(self):
        db = parse_graph_database(SAMPLE)
        assert len(db) == 2
        assert db[0].num_edges == 1
        assert db[0].name == "mol0"
        assert db[1].num_vertices == 1
        assert db[1].label(0) == 2

    def test_blank_lines_and_comments_ignored(self):
        db = parse_graph_database("# comment\n\nt # g\nv 0 1\n")
        assert len(db) == 1

    def test_string_labels_interned(self):
        db = parse_graph_database("t # g\nv 0 C\nv 1 N\ne 0 1\nt # h\nv 0 C\n")
        assert db.label_names is not None
        assert sorted(db.label_names.values()) == ["C", "N"]
        # Same token maps to the same integer across graphs.
        assert db[0].label(0) == db[1].label(0)

    def test_integer_labels_have_no_name_table(self):
        db = parse_graph_database(SAMPLE)
        assert db.label_names is None

    def test_vertex_before_graph_rejected(self):
        with pytest.raises(GraphFormatError, match="before any 't'"):
            parse_graph_database("v 0 1\n")

    def test_edge_before_graph_rejected(self):
        with pytest.raises(GraphFormatError, match="before any 't'"):
            parse_graph_database("e 0 1\n")

    def test_out_of_order_vertex_ids_rejected(self):
        with pytest.raises(GraphFormatError, match="dense and in order"):
            parse_graph_database("t # g\nv 1 0\n")

    def test_unknown_record_rejected(self):
        with pytest.raises(GraphFormatError, match="unknown record"):
            parse_graph_database("t # g\nx 0 1\n")

    def test_malformed_record_rejected(self):
        with pytest.raises(GraphFormatError, match="malformed"):
            parse_graph_database("t # g\nv zero one\n")

    def test_error_includes_line_number(self):
        with pytest.raises(GraphFormatError, match="line 3"):
            parse_graph_database("t # g\nv 0 1\ne 0 5\n")


class TestRoundTrip:
    def test_serialize_parse_round_trip(self):
        db = generate_database(5, 8, 2.0, 3, seed=9)
        text = serialize_graph_database(db)
        restored = parse_graph_database(text)
        assert len(restored) == len(db)
        for gid in db.ids():
            original, copy = db[gid], restored[gid]
            assert copy.labels == original.labels
            assert list(copy.edges()) == list(original.edges())

    def test_file_round_trip(self, tmp_path):
        db = GraphDatabase()
        db.add_graph(triangle(3))
        path = tmp_path / "db.txt"
        write_graph_database(db, path)
        restored = read_graph_database(path)
        assert restored.name == "db"
        assert restored[0].labels == (3, 3, 3)

    def test_string_labels_round_trip(self, tmp_path):
        db = parse_graph_database("t # g\nv 0 C\nv 1 O\ne 0 1\n")
        path = tmp_path / "mol.txt"
        write_graph_database(db, path)
        text = path.read_text()
        assert "v 0 C" in text and "v 1 O" in text
        restored = read_graph_database(path)
        assert restored.label_names == db.label_names


class TestGraphNames:
    def test_name_is_last_token(self):
        db = parse_graph_database("t # mol alpha\nv 0 1\n")
        assert db[0].name == "alpha"

    def test_bare_t_line(self):
        db = parse_graph_database("t\nv 0 1\n")
        assert db[0].name is None

    def test_numeric_names_preserved(self):
        db = parse_graph_database("t # 42\nv 0 1\n")
        assert db[0].name == "42"


class TestCorruptInputs:
    """Truncated and garbage files must raise structured parse errors —
    never IndexError, ValueError, or UnicodeDecodeError."""

    def _write(self, tmp_path, data: bytes):
        path = tmp_path / "db.txt"
        path.write_bytes(data)
        return path

    def test_every_truncation_is_structured(self, tmp_path):
        full = serialize_graph_database(
            generate_database(num_graphs=3, num_vertices=6, avg_degree=2,
                              num_labels=2, seed=5)
        ).encode()
        for n in range(len(full)):
            path = self._write(tmp_path, full[:n])
            try:
                read_graph_database(path)
            except GraphFormatError:
                pass  # structured rejection is fine
            # Many prefixes are valid smaller databases — also fine.

    def test_truncated_mid_edge_names_the_line(self, tmp_path):
        path = self._write(tmp_path, b"t # 0\nv 0 1\nv 1 1\ne 0")
        with pytest.raises(GraphFormatError) as err:
            read_graph_database(path)
        assert err.value.lineno == 4
        assert "line 4" in str(err.value)

    def test_dangling_edge_at_eof_is_structured(self, tmp_path):
        # The final graph's build error (edge to a missing vertex) used
        # to escape unwrapped from the end-of-stream flush.
        path = self._write(tmp_path, b"t # 0\nv 0 1\ne 0 5\n")
        with pytest.raises(GraphFormatError):
            read_graph_database(path)

    def test_binary_garbage_is_structured(self, tmp_path):
        path = self._write(tmp_path, b"t # 0\nv 0 1\n\xff\xfe\x80garbage")
        with pytest.raises(GraphFormatError) as err:
            read_graph_database(path)
        assert "UTF-8" in str(err.value)

    def test_bit_flipped_file_never_escapes_unstructured(self, tmp_path):
        base = serialize_graph_database(
            generate_database(num_graphs=2, num_vertices=5, avg_degree=2,
                              num_labels=2, seed=6)
        ).encode()
        for offset in range(len(base)):
            flipped = bytearray(base)
            flipped[offset] ^= 0x80  # force high bit: often invalid UTF-8
            path = self._write(tmp_path, bytes(flipped))
            try:
                read_graph_database(path)
            except GraphFormatError:
                pass

    def test_error_carries_line_context(self):
        with pytest.raises(GraphFormatError) as err:
            parse_graph_database("t # 0\nv 0 1\nv 2 1\n")
        assert err.value.lineno == 3
        assert err.value.line == "v 2 1"


class TestAtomicWrites:
    def test_write_replaces_atomically(self, tmp_path):
        path = tmp_path / "db.txt"
        db = GraphDatabase()
        db.add_graph(triangle(0))
        write_graph_database(db, path)
        before = path.read_text()
        write_graph_database(db, path)
        assert path.read_text() == before
        assert [p.name for p in tmp_path.iterdir()] == ["db.txt"]
