"""Tests for repro.core.pipeline (IFV / vcFV / IvcFV / naive)."""

from __future__ import annotations

import pytest

from repro.core.pipeline import (
    IFVPipeline,
    IvcFVPipeline,
    NaiveFVPipeline,
    VcFVPipeline,
)
from repro.graph import GraphDatabase
from repro.index import GrapesIndex
from repro.matching import CFQLMatcher, VF2Matcher
from repro.utils.timing import Deadline

from helpers import path_graph, triangle


@pytest.fixture()
def db() -> GraphDatabase:
    db = GraphDatabase()
    db.add_graph(triangle(0))                 # 0: contains triangle
    db.add_graph(path_graph([0, 0, 0]))       # 1: path only
    db.add_graph(path_graph([5, 5]))          # 2: other labels
    return db


class TestVcFV:
    def test_answers_and_candidates(self, db):
        pipeline = VcFVPipeline(CFQLMatcher())
        result = pipeline.execute(path_graph([0, 0, 0]), db)
        assert result.answers == {0, 1}
        assert result.candidates >= result.answers
        assert 2 not in result.candidates
        assert result.algorithm == "CFQL"

    def test_phase_times_recorded(self, db):
        result = VcFVPipeline(CFQLMatcher()).execute(triangle(0), db)
        assert result.filtering_time > 0.0
        assert result.verification_time >= 0.0

    def test_auxiliary_memory_tracked(self, db):
        result = VcFVPipeline(CFQLMatcher()).execute(path_graph([0, 0]), db)
        assert result.auxiliary_memory_bytes > 0

    def test_no_index_hooks(self, db):
        pipeline = VcFVPipeline(CFQLMatcher())
        assert not pipeline.uses_index
        assert pipeline.index_memory_bytes() == 0
        pipeline.build_index(db)  # no-op must not raise


class TestIFV:
    def test_matches_vcfv_answers(self, db):
        ifv = IFVPipeline(GrapesIndex(max_path_edges=2), VF2Matcher())
        ifv.build_index(db)
        query = path_graph([0, 0, 0])
        assert ifv.execute(query, db).answers == {0, 1}

    def test_requires_built_index_for_candidates(self, db):
        ifv = IFVPipeline(GrapesIndex(max_path_edges=2), VF2Matcher())
        ifv.build_index(db)
        result = ifv.execute(triangle(0), db)
        assert result.candidates == {0}
        assert result.answers == {0}

    def test_index_maintenance_hooks(self, db):
        ifv = IFVPipeline(GrapesIndex(max_path_edges=2), VF2Matcher())
        ifv.build_index(db)
        gid = db.add_graph(triangle(0))
        ifv.on_graph_added(gid, db[gid])
        assert ifv.execute(triangle(0), db).answers == {0, gid}
        db.remove_graph(gid)
        ifv.on_graph_removed(gid)
        assert ifv.execute(triangle(0), db).answers == {0}

    def test_index_memory_positive(self, db):
        ifv = IFVPipeline(GrapesIndex(max_path_edges=2), VF2Matcher())
        ifv.build_index(db)
        assert ifv.index_memory_bytes() > 0
        assert ifv.uses_index


class TestIvcFV:
    def test_two_level_filtering(self, db):
        pipeline = IvcFVPipeline(GrapesIndex(max_path_edges=2), CFQLMatcher())
        pipeline.build_index(db)
        result = pipeline.execute(path_graph([0, 0, 0]), db)
        assert result.answers == {0, 1}
        assert result.index_candidates is not None
        assert result.candidates <= result.index_candidates
        assert result.algorithm == "vcGrapes"

    def test_vc_filter_can_prune_past_index(self, db):
        # A query the index accepts (features present) but vertex
        # connectivity rejects would show candidates < index_candidates;
        # at minimum the containment invariant must hold.
        pipeline = IvcFVPipeline(GrapesIndex(max_path_edges=2), CFQLMatcher())
        pipeline.build_index(db)
        result = pipeline.execute(triangle(0), db)
        assert result.answers == {0}
        assert result.candidates <= (result.index_candidates or set())


class TestNaive:
    def test_all_graphs_are_candidates(self, db):
        pipeline = NaiveFVPipeline(VF2Matcher())
        result = pipeline.execute(path_graph([0, 0]), db)
        assert result.candidates == set(db.ids())
        assert result.answers == {0, 1}
        assert result.algorithm == "VF2-FV"

    def test_no_filtering_time(self, db):
        result = NaiveFVPipeline(VF2Matcher()).execute(triangle(0), db)
        assert result.filtering_time == 0.0
        assert result.verification_time > 0.0


class TestTimeouts:
    def test_expired_deadline_flags_timeout(self, db):
        # An unsatisfiable dense query forces an exhaustive search that is
        # guaranteed to pass the deadline's check stride.
        from repro.graph import Graph, generate_graph

        big = GraphDatabase()
        for i in range(3):
            big.add_graph(generate_graph(30, 12.0, 1, seed=i))
        clique = Graph.from_edge_list(
            [0] * 8, [(u, v) for u in range(8) for v in range(u + 1, 8)]
        )
        pipeline = NaiveFVPipeline(VF2Matcher())
        result = pipeline.execute(clique, big, deadline=Deadline(0.0))
        assert result.timed_out
        assert result.query_time >= 0.0

    def test_unlimited_deadline_completes(self, db):
        result = VcFVPipeline(CFQLMatcher()).execute(
            triangle(0), db, deadline=Deadline(None)
        )
        assert not result.timed_out
