"""Tests for repro.workloads.synthetic (the Section IV-C sweeps)."""

from __future__ import annotations

import pytest

from repro.workloads import (
    BASE_CONFIG,
    PAPER_SWEEP_VALUES,
    SWEEP_VALUES,
    SyntheticConfig,
    synthetic_sweep,
)


class TestConfig:
    def test_base_matches_paper_shape(self):
        # Scaled analogue of |D|=1000, |Σ|=20, |V|=200, d=8.
        assert BASE_CONFIG.num_labels == 20
        assert BASE_CONFIG.avg_degree == 8.0

    def test_instantiate(self):
        db = SyntheticConfig(num_graphs=5, num_vertices=12).instantiate(seed=1)
        assert len(db) == 5
        assert db[0].num_vertices == 12

    def test_axes_match_paper(self):
        assert set(SWEEP_VALUES) == set(PAPER_SWEEP_VALUES) == {
            "num_graphs", "num_labels", "num_vertices", "avg_degree",
        }
        for axis, values in SWEEP_VALUES.items():
            assert len(values) == len(PAPER_SWEEP_VALUES[axis]) == 5


class TestSweep:
    def test_varies_only_requested_parameter(self):
        base = SyntheticConfig(num_graphs=4, num_vertices=10)
        sweep = synthetic_sweep("num_labels", values=(1, 3), base=base, seed=0)
        assert set(sweep) == {1, 3}
        for value, db in sweep.items():
            assert len(db) == 4
            assert db[0].num_vertices == 10
            assert all(lab < value for g in db.graphs() for lab in g.labels)

    def test_num_graphs_axis(self):
        base = SyntheticConfig(num_vertices=8)
        sweep = synthetic_sweep("num_graphs", values=(2, 5), base=base, seed=0)
        assert len(sweep[2]) == 2 and len(sweep[5]) == 5

    def test_degree_axis(self):
        base = SyntheticConfig(num_graphs=2, num_vertices=20)
        sweep = synthetic_sweep("avg_degree", values=(2, 6), base=base, seed=0)
        assert sweep[6][0].average_degree > sweep[2][0].average_degree

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep parameter"):
            synthetic_sweep("temperature")

    def test_deterministic(self):
        base = SyntheticConfig(num_graphs=2, num_vertices=8)
        a = synthetic_sweep("num_labels", values=(2,), base=base, seed=3)
        b = synthetic_sweep("num_labels", values=(2,), base=base, seed=3)
        assert a[2][0].labels == b[2][0].labels

    def test_databases_are_named(self):
        sweep = synthetic_sweep(
            "num_labels", values=(2,), base=SyntheticConfig(num_graphs=2, num_vertices=6)
        )
        assert sweep[2].name == "synthetic-num_labels-2"
