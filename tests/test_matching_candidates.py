"""Tests for repro.matching.candidates (Φ and the seed filters)."""

from __future__ import annotations

from hypothesis import given, settings

from repro.graph import Graph
from repro.matching import CandidateSets, VF2Matcher, ldf_candidates, nlf_candidates

from helpers import paper_like_data, paper_like_query, path_graph, star_graph
from strategies import matching_instances


class TestCandidateSets:
    def test_sorted_and_deduplicated_access(self):
        phi = CandidateSets([[3, 1, 2], [9]])
        assert phi[0] == (1, 2, 3)
        assert phi.as_set(1) == frozenset({9})
        assert len(phi) == 2

    def test_contains(self):
        phi = CandidateSets([[1, 2]])
        assert phi.contains(0, 2)
        assert not phi.contains(0, 5)

    def test_all_nonempty(self):
        assert CandidateSets([[1], [2]]).all_nonempty
        assert not CandidateSets([[1], []]).all_nonempty

    def test_sizes_and_total(self):
        phi = CandidateSets([[1, 2], [], [3]])
        assert phi.sizes() == (2, 0, 1)
        assert phi.total_candidates == 3

    def test_memory_is_one_word_per_candidate(self):
        phi = CandidateSets([[1, 2], [3]])
        assert phi.memory_bytes() == 4 * 3
        assert phi.memory_bytes(word_bytes=8) == 8 * 3


class TestLDF:
    def test_label_and_degree_filtering(self):
        query = path_graph([0, 1, 0])      # middle vertex: label 1, degree 2
        data = star_graph(1, [0, 0, 0])    # center: label 1, degree 3
        cands = ldf_candidates(query, data)
        assert cands[1] == [0]             # only the center survives degree
        assert set(cands[0]) == {1, 2, 3}

    def test_no_label_match_gives_empty(self):
        query = path_graph([7, 7])
        data = path_graph([0, 0, 0])
        assert ldf_candidates(query, data) == [[], []]


class TestNLF:
    def test_profile_prunes_beyond_ldf(self):
        # Query center needs one 0-neighbor and one 2-neighbor.
        query = path_graph([0, 1, 2])
        # Data has two label-1 vertices of degree 2: one with the right
        # profile, one whose neighbors are both label 0.
        data = Graph.from_edge_list(
            [0, 1, 2, 0, 1, 0],
            [(0, 1), (1, 2), (3, 4), (4, 5)],
        )
        ldf = ldf_candidates(query, data)
        nlf = nlf_candidates(query, data)
        assert set(ldf[1]) == {1, 4}
        assert nlf[1] == [1]

    def test_nlf_subset_of_ldf(self):
        query = paper_like_query()
        data = paper_like_data()
        ldf = ldf_candidates(query, data)
        nlf = nlf_candidates(query, data)
        for u in query.vertices():
            assert set(nlf[u]) <= set(ldf[u])


class TestCompleteness:
    """Definition III.1: every embedding's image must be inside Φ."""

    @given(matching_instances())
    @settings(max_examples=40, deadline=None)
    def test_seed_filters_are_complete(self, instance):
        query, data = instance
        embeddings = VF2Matcher().find_all(query, data)
        for cands in (ldf_candidates(query, data), nlf_candidates(query, data)):
            phi = CandidateSets(cands)
            for embedding in embeddings:
                for u, v in embedding.items():
                    assert phi.contains(u, v)
