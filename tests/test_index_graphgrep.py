"""Tests for repro.index.graphgrep (flat hash path index)."""

from __future__ import annotations

import pytest

from repro.graph import Graph, GraphDatabase
from repro.index import GraphGrepIndex, GrapesIndex
from repro.utils.errors import MemoryLimitExceeded

from helpers import path_graph, triangle


@pytest.fixture()
def db() -> GraphDatabase:
    db = GraphDatabase()
    db.add_graph(triangle(0))
    db.add_graph(path_graph([0, 0, 0, 1]))
    return db


class TestFiltering:
    def test_count_dominance(self, db):
        index = GraphGrepIndex(max_path_edges=2)
        index.build(db)
        assert index.candidates(triangle(0)) == {0}
        assert index.candidates(path_graph([0, 0])) == {0, 1}
        assert index.candidates(path_graph([5, 5])) == set()

    def test_same_candidates_as_grapes(self, db):
        """GraphGrep and Grapes implement the same count-dominance rule
        over the same features; only the storage differs."""
        flat = GraphGrepIndex(max_path_edges=2)
        trie = GrapesIndex(max_path_edges=2, with_locations=False)
        flat.build(db)
        trie.build(db)
        for query in (triangle(0), path_graph([0, 0]), path_graph([0, 1])):
            assert flat.candidates(query) == trie.candidates(query)


class TestMaintenance:
    def test_add_remove(self, db):
        index = GraphGrepIndex(max_path_edges=2)
        index.build(db)
        index.add_graph(9, triangle(0))
        assert index.candidates(triangle(0)) == {0, 9}
        index.remove_graph(0)
        assert index.candidates(triangle(0)) == {9}
        assert index.indexed_ids == {1, 9}

    def test_duplicate_rejected(self, db):
        index = GraphGrepIndex()
        index.build(db)
        with pytest.raises(ValueError):
            index.add_graph(0, triangle())

    def test_remove_unknown_raises(self):
        with pytest.raises(KeyError):
            GraphGrepIndex().remove_graph(1)

    def test_invalid_path_length(self):
        with pytest.raises(ValueError):
            GraphGrepIndex(max_path_edges=0)


class TestBudgets:
    def test_feature_budget(self):
        g = path_graph(list(range(12)))
        with pytest.raises(MemoryLimitExceeded):
            GraphGrepIndex(max_path_edges=4, max_features_per_graph=3).add_graph(0, g)

    def test_num_features(self, db):
        index = GraphGrepIndex(max_path_edges=1)
        index.build(db)
        # Features: labels (0,), (1,) and edges (0,0), (0,1).
        assert index.num_features == 4
