"""Tests for repro.core.cache (GraphCache-style query caching)."""

from __future__ import annotations

import random

import pytest

from repro.core import CachingPipeline, DatabaseView, create_pipeline
from repro.core.pipeline import VcFVPipeline
from repro.graph import GraphDatabase, generate_database, random_walk_query
from repro.matching import CFQLMatcher

from helpers import path_graph, triangle


@pytest.fixture()
def db() -> GraphDatabase:
    db = GraphDatabase()
    db.add_graphs([
        triangle(0),                      # 0
        path_graph([0, 0, 0]),            # 1
        path_graph([0, 0, 0, 0]),         # 2
        path_graph([1, 1]),               # 3
    ])
    return db


def make_cached(capacity: int = 8) -> CachingPipeline:
    return CachingPipeline(VcFVPipeline(CFQLMatcher()), capacity=capacity)


class TestDatabaseView:
    def test_restriction(self, db):
        view = DatabaseView(db, {0, 2})
        assert len(view) == 2
        assert view.ids() == [0, 2]
        assert 0 in view and 1 not in view
        assert view[2].num_vertices == 4
        with pytest.raises(KeyError):
            view[1]
        assert [gid for gid, _ in view.items()] == [0, 2]
        assert len(view.graphs()) == 2

    def test_preserves_parent_order(self, db):
        view = DatabaseView(db, {2, 0, 3})
        assert view.ids() == [0, 2, 3]


class TestBounds:
    def test_subgraph_hit_prunes(self, db):
        cached = make_cached()
        small = path_graph([0, 0])            # edge query: answers {0,1,2}
        larger = path_graph([0, 0, 0])        # contains the edge query
        first = cached.execute(small, db)
        assert first.answers == {0, 1, 2}
        second = cached.execute(larger, db)
        assert second.answers == {0, 1, 2}
        assert cached.stats.subgraph_hits >= 1
        assert cached.stats.graphs_pruned >= 1  # graph 3 never touched

    def test_supergraph_hit_yields_definite_answers(self, db):
        cached = make_cached()
        big = path_graph([0, 0, 0, 0])        # answers {2}
        small = path_graph([0, 0, 0])         # contained in big
        cached.execute(big, db)
        result = cached.execute(small, db)
        assert result.answers == {0, 1, 2}
        assert cached.stats.supergraph_hits >= 1

    def test_unrelated_query_unaffected(self, db):
        cached = make_cached()
        cached.execute(path_graph([0, 0]), db)
        result = cached.execute(path_graph([1, 1]), db)
        assert result.answers == {3}


class TestEviction:
    def test_capacity_bounded(self, db):
        cached = make_cached(capacity=2)
        for labels in ([0, 0], [1, 1], [0, 0, 0], [0, 0, 0, 0]):
            cached.execute(path_graph(labels), db)
        assert len(cached._entries) == 2

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            make_cached(capacity=0)


class TestInvalidation:
    def test_update_clears_cache(self, db):
        cached = make_cached()
        cached.execute(path_graph([0, 0]), db)
        assert cached._entries
        gid = db.add_graph(triangle(0))
        cached.on_graph_added(gid, db[gid])
        assert not cached._entries
        assert cached.stats.invalidations == 1
        # Fresh answers include the new graph.
        assert gid in cached.execute(path_graph([0, 0]), db).answers

    def test_removal_clears_cache(self, db):
        cached = make_cached()
        cached.execute(path_graph([0, 0]), db)
        db.remove_graph(0)
        cached.on_graph_removed(0)
        assert 0 not in cached.execute(path_graph([0, 0]), db).answers


class TestEquivalenceUnderRandomWorkload:
    def test_cached_always_matches_plain(self):
        db = generate_database(25, 12, 3.0, 3, seed=15)
        plain = VcFVPipeline(CFQLMatcher())
        cached = make_cached(capacity=16)
        rng = random.Random(4)
        checked = 0
        for _ in range(40):
            query = random_walk_query(
                db[rng.choice(db.ids())], 2 + rng.randrange(4), seed=rng.getrandbits(32)
            )
            if query is None:
                continue
            assert cached.execute(query, db).answers == plain.execute(query, db).answers
            checked += 1
        assert checked > 20
        assert cached.stats.hit_rate() > 0.0

    def test_works_with_index_based_inner(self, db):
        cached = CachingPipeline(
            create_pipeline("Grapes", index_max_path_edges=2), capacity=8
        )
        cached.build_index(db)
        first = cached.execute(path_graph([0, 0, 0]), db)
        second = cached.execute(path_graph([0, 0, 0, 0]), db)
        assert first.answers == {0, 1, 2}
        assert second.answers == {2}


class TestResultMetadata:
    """Per-result cache stamps: readable off the QueryResult alone, the
    way the engine/CLI/service surface cache outcomes."""

    def test_cold_query_stamps_no_hit(self, db):
        cached = make_cached()
        result = cached.execute(path_graph([0, 0]), db)
        assert result.metadata["cache_hit"] is False
        assert result.metadata["cache_pruned"] == 0
        assert result.metadata["cache_definite"] == 0

    def test_identical_repeat_stamps_hit_and_prunes_everything(self, db):
        cached = make_cached()
        query = path_graph([0, 0])
        first = cached.execute(query, db)
        second = cached.execute(query, db)
        assert second.metadata["cache_hit"] is True
        # The identical entry matches as a subgraph hit: the upper bound
        # equals the true answer set, so only those graphs are re-verified
        # and every non-answer is pruned away.
        assert second.metadata["cache_pruned"] == len(db) - len(first.answers)
        assert second.answers == first.answers


class TestEngineWiring:
    """Satellite 1: the cache= engine option and its transparency."""

    def test_engine_cache_option_wraps_pipeline(self, db):
        from repro.core import create_engine

        with create_engine(db, "CFQL", cache=8) as engine:
            engine.build_index()
            assert isinstance(engine.pipeline, CachingPipeline)
            assert engine.cache is engine.pipeline
            query = path_graph([0, 0])
            first = engine.query(query, time_limit=30.0)
            second = engine.query(query, time_limit=30.0)
            assert second.answers == first.answers
            assert first.metadata["cache_hit"] is False
            assert second.metadata["cache_hit"] is True
            assert engine.cache.stats.queries == 2
            assert engine.cache.stats.queries_with_hits == 1

    def test_engine_without_cache_has_none(self, db):
        from repro.core import create_engine

        with create_engine(db, "CFQL") as engine:
            assert engine.cache is None

    def test_cached_engine_matches_plain_engine(self, db):
        from repro.core import create_engine

        queries = [path_graph([0, 0]), triangle(0), path_graph([0, 0]),
                   path_graph([1, 1])]
        with create_engine(db, "CFQL") as plain, \
                create_engine(db, "CFQL", cache=8) as cached:
            plain.build_index()
            cached.build_index()
            for query in queries:
                assert (
                    cached.query(query, time_limit=30.0).answers
                    == plain.query(query, time_limit=30.0).answers
                )

    def test_wrapper_is_transparent_to_introspection(self, db):
        """The store warm-start reads pipeline.index and find_embeddings
        reads pipeline.matcher; the wrapper must proxy both to the inner
        pipeline instead of hiding them."""
        from repro.core import create_pipeline

        indexed = create_pipeline("Grapes")
        assert CachingPipeline(indexed, capacity=4).index is indexed.index

        verifying = VcFVPipeline(CFQLMatcher())
        cached = CachingPipeline(verifying, capacity=4)
        assert cached.matcher is verifying.matcher
        assert cached.containment is not verifying.matcher

    def test_fallback_preserves_caching_wrapper(self, db):
        from repro.core import create_pipeline
        from repro.core.pipeline import fallback_pipeline

        cached = CachingPipeline(create_pipeline("Grapes"), capacity=5)
        degraded = fallback_pipeline(cached)
        assert isinstance(degraded, CachingPipeline)
        assert degraded.capacity == 5
        assert degraded.containment is cached.containment
        assert not degraded.inner.uses_index
