"""Tests for repro.core.cache (GraphCache-style query caching)."""

from __future__ import annotations

import random

import pytest

from repro.core import CachingPipeline, DatabaseView, create_pipeline
from repro.core.pipeline import VcFVPipeline
from repro.graph import GraphDatabase, generate_database, random_walk_query
from repro.matching import CFQLMatcher

from helpers import path_graph, triangle


@pytest.fixture()
def db() -> GraphDatabase:
    db = GraphDatabase()
    db.add_graphs([
        triangle(0),                      # 0
        path_graph([0, 0, 0]),            # 1
        path_graph([0, 0, 0, 0]),         # 2
        path_graph([1, 1]),               # 3
    ])
    return db


def make_cached(capacity: int = 8) -> CachingPipeline:
    return CachingPipeline(VcFVPipeline(CFQLMatcher()), capacity=capacity)


class TestDatabaseView:
    def test_restriction(self, db):
        view = DatabaseView(db, {0, 2})
        assert len(view) == 2
        assert view.ids() == [0, 2]
        assert 0 in view and 1 not in view
        assert view[2].num_vertices == 4
        with pytest.raises(KeyError):
            view[1]
        assert [gid for gid, _ in view.items()] == [0, 2]
        assert len(view.graphs()) == 2

    def test_preserves_parent_order(self, db):
        view = DatabaseView(db, {2, 0, 3})
        assert view.ids() == [0, 2, 3]


class TestBounds:
    def test_subgraph_hit_prunes(self, db):
        cached = make_cached()
        small = path_graph([0, 0])            # edge query: answers {0,1,2}
        larger = path_graph([0, 0, 0])        # contains the edge query
        first = cached.execute(small, db)
        assert first.answers == {0, 1, 2}
        second = cached.execute(larger, db)
        assert second.answers == {0, 1, 2}
        assert cached.stats.subgraph_hits >= 1
        assert cached.stats.graphs_pruned >= 1  # graph 3 never touched

    def test_supergraph_hit_yields_definite_answers(self, db):
        cached = make_cached()
        big = path_graph([0, 0, 0, 0])        # answers {2}
        small = path_graph([0, 0, 0])         # contained in big
        cached.execute(big, db)
        result = cached.execute(small, db)
        assert result.answers == {0, 1, 2}
        assert cached.stats.supergraph_hits >= 1

    def test_unrelated_query_unaffected(self, db):
        cached = make_cached()
        cached.execute(path_graph([0, 0]), db)
        result = cached.execute(path_graph([1, 1]), db)
        assert result.answers == {3}


class TestEviction:
    def test_capacity_bounded(self, db):
        cached = make_cached(capacity=2)
        for labels in ([0, 0], [1, 1], [0, 0, 0], [0, 0, 0, 0]):
            cached.execute(path_graph(labels), db)
        assert len(cached._entries) == 2

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            make_cached(capacity=0)


class TestInvalidation:
    def test_update_clears_cache(self, db):
        cached = make_cached()
        cached.execute(path_graph([0, 0]), db)
        assert cached._entries
        gid = db.add_graph(triangle(0))
        cached.on_graph_added(gid, db[gid])
        assert not cached._entries
        assert cached.stats.invalidations == 1
        # Fresh answers include the new graph.
        assert gid in cached.execute(path_graph([0, 0]), db).answers

    def test_removal_clears_cache(self, db):
        cached = make_cached()
        cached.execute(path_graph([0, 0]), db)
        db.remove_graph(0)
        cached.on_graph_removed(0)
        assert 0 not in cached.execute(path_graph([0, 0]), db).answers


class TestEquivalenceUnderRandomWorkload:
    def test_cached_always_matches_plain(self):
        db = generate_database(25, 12, 3.0, 3, seed=15)
        plain = VcFVPipeline(CFQLMatcher())
        cached = make_cached(capacity=16)
        rng = random.Random(4)
        checked = 0
        for _ in range(40):
            query = random_walk_query(
                db[rng.choice(db.ids())], 2 + rng.randrange(4), seed=rng.getrandbits(32)
            )
            if query is None:
                continue
            assert cached.execute(query, db).answers == plain.execute(query, db).answers
            checked += 1
        assert checked > 20
        assert cached.stats.hit_rate() > 0.0

    def test_works_with_index_based_inner(self, db):
        cached = CachingPipeline(
            create_pipeline("Grapes", index_max_path_edges=2), capacity=8
        )
        cached.build_index(db)
        first = cached.execute(path_graph([0, 0, 0]), db)
        second = cached.execute(path_graph([0, 0, 0, 0]), db)
        assert first.answers == {0, 1, 2}
        assert second.answers == {2}
