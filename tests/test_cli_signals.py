"""Signal handling for journaled CLI runs (SIGTERM/SIGINT mid-flight).

The contract under test: a signal delivered during ``repro reproduce``
(or ``benchmark``) exits with the conventional ``128 + signum`` code and
leaves the JSONL journal *whole-line valid* — every line parses, so the
rerun resumes from it instead of tripping over a torn tail.  The journal
writer guarantees this by emitting each record as one ``O_APPEND``
``os.write`` (a Python signal handler cannot interrupt the syscall
midway), which is also exercised directly.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def start_reproduce(tmp_path, journal):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    # Small but non-trivial: several matrix cells, seconds of work.
    env["REPRO_BENCH_SCALE"] = "0.05"
    env["REPRO_BENCH_QUERIES"] = "4"
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "reproduce", "fig7",
         "--journal", str(journal)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        env=env, cwd=str(tmp_path), text=True,
    )


def interrupt_after_journal_exists(proc, journal, sig, timeout=120.0):
    """Send ``sig`` once the run has started journaling (so the signal
    lands mid-run, not during startup)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise AssertionError(
                f"run finished (rc={proc.returncode}) before the signal; "
                f"output:\n{proc.communicate()[0]}"
            )
        if journal.exists() and journal.stat().st_size > 0:
            break
        time.sleep(0.02)
    else:
        raise AssertionError("journal never appeared")
    proc.send_signal(sig)
    output, _ = proc.communicate(timeout=60.0)
    return output


def assert_whole_line_journal(journal):
    lines = journal.read_text().splitlines()
    assert lines, "journal should hold at least the config stamp"
    for line in lines:
        record = json.loads(line)  # raises on a torn line
        assert "key" in record and "value" in record


@pytest.mark.parametrize("sig,expected", [
    (signal.SIGTERM, 143),
    (signal.SIGINT, 130),
])
def test_signal_mid_reproduce_flushes_journal_and_exits_clean(
    tmp_path, sig, expected
):
    journal = tmp_path / "run.jsonl"
    proc = start_reproduce(tmp_path, journal)
    output = interrupt_after_journal_exists(proc, journal, sig)
    assert proc.returncode == expected, output
    assert f"interrupted by signal {sig}" in output
    assert "journal flushed" in output
    assert_whole_line_journal(journal)


def test_resume_after_interrupt(tmp_path):
    """The journal a SIGTERM leaves behind is a valid resume point: the
    rerun completes and reuses the journaled cells."""
    journal = tmp_path / "run.jsonl"
    proc = start_reproduce(tmp_path, journal)
    interrupt_after_journal_exists(proc, journal, signal.SIGTERM)
    lines_before = len(journal.read_text().splitlines())

    rerun = start_reproduce(tmp_path, journal)
    output, _ = rerun.communicate(timeout=600.0)
    assert rerun.returncode == 0, output
    assert_whole_line_journal(journal)
    assert len(journal.read_text().splitlines()) >= lines_before


class TestAppendLineDurable:
    def test_appends_one_line_per_call(self, tmp_path):
        from repro.utils.fsio import append_line_durable

        path = tmp_path / "log.jsonl"
        append_line_durable(path, json.dumps({"n": 1}))
        append_line_durable(path, json.dumps({"n": 2}))
        assert [json.loads(l) for l in path.read_text().splitlines()] == [
            {"n": 1}, {"n": 2},
        ]

    def test_creates_parent_file_and_strips_nothing(self, tmp_path):
        from repro.utils.fsio import append_line_durable

        path = tmp_path / "fresh.jsonl"
        append_line_durable(path, "plain text line")
        assert path.read_text() == "plain text line\n"
