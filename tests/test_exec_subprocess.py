"""Hard containment via the subprocess executor (kills, caps, retries).

These are the tentpole's acceptance tests: a busy loop that never polls
the cooperative deadline is SIGKILLed and recorded OOT, a crashing query
is contained to its own result, and a worker that dies before starting a
query is retried with backoff.
"""

from __future__ import annotations

import pytest

from helpers import nx_contains
from repro.core import create_engine
from repro.exec import faults
from repro.exec.pool import SubprocessExecutor
from repro.graph import Graph


def named_square(name: str) -> Graph:
    return Graph.from_edge_list(
        [0, 1, 0, 1], [(0, 1), (1, 2), (2, 3), (3, 0)], name=name
    )


def expected_answers(query, db):
    return {gid for gid, graph in db.items() if nx_contains(query, graph)}


@pytest.fixture()
def engine(small_db):
    eng = create_engine(small_db, "CFQL", executor=SubprocessExecutor())
    eng.build_index()
    yield eng
    eng.close()


class TestBasics:
    def test_answers_match_inprocess(self, small_db, engine):
        query = named_square("q0")
        reference = create_engine(small_db, "CFQL")
        reference.build_index()
        subprocess_result = engine.query(query, time_limit=30.0)
        inprocess_result = reference.query(query, time_limit=30.0)
        assert subprocess_result.failure is None
        assert subprocess_result.answers == inprocess_result.answers
        assert subprocess_result.candidates == inprocess_result.candidates

    def test_worker_is_reused_across_queries(self, engine):
        engine.query(named_square("q0"), time_limit=30.0)
        first_pid = engine.executor._proc.pid
        engine.query(named_square("q1"), time_limit=30.0)
        assert engine.executor._proc.pid == first_pid

    def test_unlimited_time_works(self, engine):
        result = engine.query(named_square("q0"))
        assert result.failure is None

    def test_close_is_idempotent(self, small_db):
        engine = create_engine(small_db, "CFQL", executor=SubprocessExecutor())
        engine.build_index()
        engine.query(named_square("q0"), time_limit=30.0)
        engine.close()
        engine.close()

    def test_ifv_pipeline_runs_in_worker(self, small_db):
        query = named_square("q0")
        with create_engine(
            small_db, "Grapes", executor=SubprocessExecutor(),
            index_max_path_edges=2,
        ) as engine:
            engine.build_index()
            result = engine.query(query, time_limit=30.0)
            assert result.failure is None
            assert result.answers == expected_answers(query, small_db)


class TestHardTimeout:
    def test_busy_loop_is_killed_within_twice_the_limit(self, engine):
        """The acceptance bound: a query that never polls its Deadline is
        SIGKILLed within ~2x its time limit and recorded as OOT."""
        import time

        faults.inject("query:start", "spin", arg=30.0)
        started = time.perf_counter()
        result = engine.query(named_square("q0"), time_limit=1.0)
        elapsed = time.perf_counter() - started
        assert result.failure is not None and result.failure.kind == "oot"
        assert result.timed_out
        assert result.query_time == 1.0  # the paper records the limit
        assert elapsed < 2.0

    def test_next_query_succeeds_after_a_kill(self, small_db, engine):
        faults.inject("query:start", "spin", arg=30.0, times=1)
        killed = engine.query(named_square("q0"), time_limit=0.5)
        assert killed.failure is not None and killed.failure.kind == "oot"
        faults.clear()
        engine.executor.invalidate()  # drop the worker armed with the fault
        query = named_square("q1")
        result = engine.query(query, time_limit=30.0)
        assert result.failure is None
        assert result.answers == expected_answers(query, small_db)


class TestCrashContainment:
    def test_middle_query_crash_leaves_others_intact(self, small_db, engine):
        """An injected hard crash (os._exit) in one query must not disturb
        the results of the queries around it."""
        queries = [named_square(f"q{i}") for i in range(3)]
        faults.inject("query:start", "crash", match="q1")
        results = engine.query_many(queries, time_limit=30.0)
        assert results[1].failure is not None
        assert results[1].failure.kind == "crash"
        assert "exit code" in results[1].failure.message
        expected = expected_answers(queries[0], small_db)
        assert results[0].failure is None and results[0].answers == expected
        assert results[2].failure is None and results[2].answers == expected

    def test_crash_before_ack_is_retried_and_recovers(self, small_db, tmp_path):
        """A worker that dies before starting any query is transient: the
        latch makes the fault one-shot, so the respawned worker succeeds."""
        faults.inject(
            "worker:start", "crash", latch=str(tmp_path / "latch")
        )
        query = named_square("q0")
        with create_engine(
            small_db, "CFQL",
            executor=SubprocessExecutor(retry_backoff=0.01),
        ) as engine:
            engine.build_index()
            result = engine.query(query, time_limit=30.0)
            assert result.failure is None
            assert result.answers == expected_answers(query, small_db)

    def test_persistent_startup_crash_exhausts_retries(self, small_db):
        faults.inject("worker:start", "crash")
        with create_engine(
            small_db, "CFQL",
            executor=SubprocessExecutor(max_retries=2, retry_backoff=0.01),
        ) as engine:
            engine.build_index()
            result = engine.query(named_square("q0"), time_limit=30.0)
            assert result.failure is not None
            assert result.failure.kind == "crash"
            assert result.failure.retries == 2
            assert "before starting" in result.failure.message


class TestMemoryCap:
    def test_allocation_spike_is_recorded_oom(self, small_db):
        """Under a worker RLIMIT_AS cap a runaway allocation raises
        MemoryError inside the worker and comes back as an OOM failure."""
        faults.inject("query:start", "alloc", arg=8192.0)  # 8 GiB
        with create_engine(
            small_db, "CFQL",
            executor=SubprocessExecutor(memory_limit_mb=2048),
        ) as engine:
            engine.build_index()
            result = engine.query(named_square("q0"), time_limit=30.0)
            assert result.failure is not None
            assert result.failure.kind == "oom"
            assert not result.timed_out

    def test_query_set_survives_one_oom(self, small_db):
        faults.inject("query:start", "alloc", arg=8192.0, match="q1")
        with create_engine(
            small_db, "CFQL",
            executor=SubprocessExecutor(memory_limit_mb=2048),
        ) as engine:
            engine.build_index()
            results = engine.query_many(
                [named_square(f"q{i}") for i in range(3)], time_limit=30.0
            )
            kinds = [r.failure.kind if r.failure else None for r in results]
            assert kinds == [None, "oom", None]
