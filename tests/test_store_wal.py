"""Unit tests for the write-ahead mutation log (repro.store.wal).

The recovery claims are byte-level: every possible truncation point of a
journal must recover to a verified prefix, every bit flip must be caught
by the per-record CRC, and a log for the wrong database must be set
aside rather than replayed.  These tests exercise the file format
directly; crash-process chaos lives in test_store_durability.py.
"""

from __future__ import annotations

import os

import pytest

from repro.exec import faults
from repro.graph.builder import GraphBuilder
from repro.graph.database import GraphDatabase
from repro.store.snapshot import database_fingerprint
from repro.store.wal import (
    QUARANTINE_SUFFIX,
    MutationLog,
    MutationRecord,
    graph_from_record,
    graph_to_record,
)
from repro.utils.errors import SnapshotError


def make_graph(labels, edges, name=None):
    builder = GraphBuilder(name=name)
    builder.add_vertices(labels)
    for u, v in edges:
        builder.add_edge(u, v)
    return builder.build()


def triangle(label, name=None):
    return make_graph([label] * 3, [(0, 1), (1, 2), (0, 2)], name=name)


def base_db(n=2):
    db = GraphDatabase("wal-test")
    for i in range(n):
        db.add_graph(triangle(i))
    return db


def anchored_log(tmp_path, base="f" * 64):
    log = MutationLog(tmp_path / "mutations.wal")
    log.anchor(base)
    return log


@pytest.fixture(autouse=True)
def _clear_faults():
    faults.clear()
    yield
    faults.clear()


class TestGraphCodec:
    def test_roundtrip_preserves_structure(self):
        g = make_graph([3, 1, 4, 1], [(0, 1), (1, 2), (2, 3)], name="g")
        back = graph_from_record(graph_to_record(g))
        assert list(back.labels) == list(g.labels)
        assert sorted(back.edges()) == sorted(g.edges())
        assert back.name == "g"

    def test_nameless_graph_has_no_name_key(self):
        record = graph_to_record(triangle(0))
        assert "name" not in record
        assert graph_from_record(record).name is None


class TestAppendAndRecover:
    def test_journal_then_recover_returns_records(self, tmp_path):
        log = anchored_log(tmp_path)
        s1 = log.append_add(2, triangle(9))
        s2 = log.append_remove(0)
        assert (s1, s2) == (1, 2)
        assert log.depth == 2

        fresh = MutationLog(log.path)
        scan = fresh.recover("f" * 64)
        assert scan.reason is None and scan.dropped == 0
        assert [(r.seq, r.op, r.gid) for r in scan.records] == [
            (1, "add", 2), (2, "remove", 0),
        ]
        assert sorted(scan.records[0].graph.edges()) == sorted(triangle(9).edges())
        assert fresh.last_seq == 2

    def test_append_requires_anchor(self, tmp_path):
        log = MutationLog(tmp_path / "mutations.wal")
        with pytest.raises(SnapshotError) as exc:
            log.append_remove(0)
        assert exc.value.reason == "wal-base"

    def test_missing_and_empty_files_recover_clean(self, tmp_path):
        log = MutationLog(tmp_path / "mutations.wal")
        scan = log.recover("f" * 64)
        assert scan.records == [] and scan.reason is None
        log.path.write_bytes(b"")
        scan = log.recover("f" * 64)
        assert scan.records == [] and scan.reason is None

    def test_sequence_numbers_strictly_increase_across_reopen(self, tmp_path):
        log = anchored_log(tmp_path)
        log.append_add(2, triangle(0))
        reopened = MutationLog(log.path)
        reopened.recover("f" * 64)
        assert reopened.append_remove(0) == 2

    def test_ensure_floor_skips_folded_sequences(self, tmp_path):
        log = anchored_log(tmp_path)
        log.ensure_floor(41)
        assert log.append_add(2, triangle(0)) == 42

    def test_records_apply_idempotently(self):
        db = base_db()
        add = MutationRecord(seq=1, op="add", gid=2, graph=triangle(7))
        rem = MutationRecord(seq=2, op="remove", gid=0)
        assert add.apply(db) is True
        assert add.apply(db) is False
        assert rem.apply(db) is True
        assert rem.apply(db) is False
        assert db.ids() == [1, 2]
        assert db.next_id == 3


class TestTornTail:
    def test_every_truncation_point_recovers_a_verified_prefix(self, tmp_path):
        """A kill mid-append can stop the file at ANY byte; each possible
        prefix must recover to a valid, complete run of records."""
        log = anchored_log(tmp_path)
        log.append_add(2, triangle(5))
        log.append_remove(0)
        log.append_add(3, triangle(6))
        raw = log.path.read_bytes()
        # Boundaries of fully intact lines (begin + 3 records).
        complete = [i + 1 for i, b in enumerate(raw) if b == ord("\n")]
        for cut in range(len(raw) + 1):
            torn = tmp_path / "torn.wal"
            torn.write_bytes(raw[:cut])
            scan = MutationLog(torn).recover("f" * 64)
            intact = max((len([b for b in complete if b <= cut])), 0)
            # intact lines = begin + k records -> k verified records.
            expected_records = max(0, intact - 1)
            assert len(scan.records) == expected_records, f"cut at {cut}"
            if cut in complete or cut == 0:
                assert scan.reason is None, f"cut at {cut}"
            else:
                assert scan.reason == "wal-torn", f"cut at {cut}"
                # The file was truncated back to the verified prefix...
                leftover = torn.read_bytes() if torn.exists() else b""
                assert leftover == raw[:complete[intact - 1]] if intact else not leftover
                # ...and re-recovery is clean.
                assert MutationLog(torn).recover("f" * 64).reason is None

    def test_unterminated_final_line_is_torn_even_if_parseable(self, tmp_path):
        log = anchored_log(tmp_path)
        log.append_add(2, triangle(5))
        raw = log.path.read_bytes()
        log.path.write_bytes(raw[:-1])  # strip only the newline
        scan = MutationLog(log.path).recover("f" * 64)
        assert scan.reason == "wal-torn"
        assert scan.records == []
        assert scan.dropped == 1

    def test_appends_continue_after_torn_tail_repair(self, tmp_path):
        log = anchored_log(tmp_path)
        log.append_add(2, triangle(5))
        log.append_add(3, triangle(6))
        raw = log.path.read_bytes()
        log.path.write_bytes(raw[:-4])  # tear the final record
        fresh = MutationLog(log.path)
        scan = fresh.recover("f" * 64)
        assert [r.seq for r in scan.records] == [1]
        # Seq 2 was journaled-but-torn: never acknowledged, so its number
        # may be reissued for the next mutation.
        assert fresh.append_remove(0) == 2
        rescan = MutationLog(log.path).recover("f" * 64)
        assert [(r.seq, r.op) for r in rescan.records] == [(1, "add"), (2, "remove")]


class TestCorruption:
    @pytest.mark.parametrize("flip_line", [0, 1])
    def test_bit_flip_before_the_tail_is_corrupt(self, tmp_path, flip_line):
        log = anchored_log(tmp_path)
        log.append_add(2, triangle(5))
        log.append_remove(0)
        raw = log.path.read_bytes()
        lines = raw.split(b"\n")
        target = bytearray(lines[flip_line])
        target[len(target) // 2] ^= 0x01
        lines[flip_line] = bytes(target)
        log.path.write_bytes(b"\n".join(lines))
        scan = MutationLog(log.path).recover("f" * 64)
        assert scan.reason == "wal-corrupt"
        # Everything from the first bad line on is dropped, never skipped.
        assert len(scan.records) == max(0, flip_line - 1)
        assert scan.dropped == 3 - flip_line

    def test_non_monotonic_sequence_is_rejected(self, tmp_path):
        log = anchored_log(tmp_path)
        log.append_add(2, triangle(5))
        raw = log.path.read_bytes()
        lines = raw.split(b"\n")
        log.path.write_bytes(b"\n".join([lines[0], lines[1], lines[1], b""]))
        scan = MutationLog(log.path).recover("f" * 64)
        assert [r.seq for r in scan.records] == [1]
        assert scan.reason == "wal-torn"  # duplicate seq was the final line

    def test_garbage_payload_shapes_are_rejected(self, tmp_path):
        import json
        import zlib

        log = anchored_log(tmp_path)
        log.append_add(2, triangle(5))
        for payload in (
            {"op": "explode"},
            {"op": "add", "gid": -1, "graph": {}},
            {"op": "add", "gid": True, "graph": {}},
            {"op": "add", "gid": 3},
            {"op": "remove"},
            [1, 2, 3],
        ):
            body = json.dumps(payload).encode()
            line = b"REPROWAL1 2 " + b"%08x" % zlib.crc32(body) + b" " + body
            bad = tmp_path / "bad.wal"
            bad.write_bytes(log.path.read_bytes() + line + b"\n")
            scan = MutationLog(bad).recover("f" * 64)
            assert scan.reason == "wal-torn", payload
            assert [r.seq for r in scan.records] == [1]


class TestBaseMismatch:
    def test_foreign_log_is_quarantined_not_replayed(self, tmp_path):
        log = anchored_log(tmp_path, base="a" * 64)
        log.append_add(2, triangle(5))
        fresh = MutationLog(log.path)
        scan = fresh.recover("b" * 64)
        assert scan.quarantined is True
        assert scan.reason == "wal-base"
        assert scan.records == []
        assert not log.path.exists()
        preserved = log.path.with_name(log.path.name + QUARANTINE_SUFFIX)
        assert preserved.exists()
        # The original bytes survive for forensics.
        assert b"REPROWAL1" in preserved.read_bytes()


class TestCompaction:
    def test_truncate_through_drops_only_folded_records(self, tmp_path):
        log = anchored_log(tmp_path)
        for i in range(4):
            log.append_add(2 + i, triangle(i))
        assert log.truncate_through(2) == 2
        assert log.depth == 2
        scan = MutationLog(log.path).recover("f" * 64)
        assert [r.seq for r in scan.records] == [3, 4]

    def test_truncate_everything_removes_the_file(self, tmp_path):
        log = anchored_log(tmp_path)
        log.append_add(2, triangle(0))
        assert log.truncate_through(1) == 1
        assert not log.path.exists()
        # The floor persists in memory: the next append continues at 2.
        assert log.append_remove(0) == 2

    def test_truncate_missing_file_is_a_noop(self, tmp_path):
        assert anchored_log(tmp_path).truncate_through(10) == 0


class TestFaultSites:
    def test_torn_append_crash_leaves_half_a_record(self, tmp_path):
        import subprocess
        import sys

        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        script = f"""
import sys
from repro.exec import faults
from repro.store.wal import MutationLog
from tests.test_store_wal import triangle
log = MutationLog({str(tmp_path / 'mutations.wal')!r})
log.anchor("f" * 64)
log.append_add(2, triangle(0))
faults.inject("wal.torn_append", "crash")
log.append_add(3, triangle(1))
raise SystemExit("append should have crashed")
"""
        proc = subprocess.run(
            [sys.executable, "-c", script],
            env=dict(
                os.environ,
                PYTHONPATH=os.pathsep.join(
                    [os.path.abspath(src),
                     os.path.abspath(os.path.join(src, os.pardir))]
                ),
            ),
            capture_output=True,
        )
        assert proc.returncode == faults.CRASH_EXIT_CODE, proc.stderr.decode()
        scan = MutationLog(tmp_path / "mutations.wal").recover("f" * 64)
        assert scan.reason == "wal-torn"
        assert [r.seq for r in scan.records] == [1]

    def test_torn_append_with_nonfatal_fault_still_completes(self, tmp_path):
        log = anchored_log(tmp_path)
        faults.inject("wal.torn_append", "delay", arg=0.0)
        log.append_add(2, triangle(0))
        scan = MutationLog(log.path).recover("f" * 64)
        assert scan.reason is None
        assert [r.seq for r in scan.records] == [1]

    def test_corrupt_record_fault_flips_a_journal_bit(self, tmp_path):
        log = anchored_log(tmp_path)
        log.append_add(2, triangle(0))
        faults.inject("wal.corrupt_record", "corrupt", arg=10**9, times=1)
        log.append_add(3, triangle(1))
        scan = MutationLog(log.path).recover("f" * 64)
        assert scan.reason == "wal-torn"  # the flipped record was the tail
        assert [r.seq for r in scan.records] == [1]
