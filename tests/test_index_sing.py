"""Tests for repro.index.sing (locational path index)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import Graph, GraphDatabase, generate_database, random_walk_query
from repro.index import SINGIndex
from repro.index.sing import enumerate_rooted_paths
from repro.matching import VF2Matcher
from repro.utils.errors import MemoryLimitExceeded, TimeLimitExceeded
from repro.utils.timing import Deadline

from helpers import path_graph, star_graph, triangle


class TestRootedPaths:
    def test_directed_sequences_recorded(self):
        locations = enumerate_rooted_paths(path_graph([1, 2]), 1)
        assert locations[(1, 2)] == {0}
        assert locations[(2, 1)] == {1}
        assert locations[(1,)] == {0}

    def test_star_center_roots_all_leaf_paths(self):
        star = star_graph(0, [1, 2])
        locations = enumerate_rooted_paths(star, 2)
        assert locations[(0, 1)] == {0}
        assert locations[(1, 0, 2)] == {1}

    def test_feature_budget(self):
        with pytest.raises(MemoryLimitExceeded):
            enumerate_rooted_paths(path_graph(list(range(10))), 4, max_features=3)

    def test_deadline(self):
        dense = Graph.from_edge_list(
            [0] * 14, [(u, v) for u in range(14) for v in range(u + 1, 14)]
        )
        with pytest.raises(TimeLimitExceeded):
            enumerate_rooted_paths(dense, 4, deadline=Deadline(0.0))


class TestFiltering:
    @pytest.fixture()
    def db(self):
        db = GraphDatabase()
        db.add_graph(triangle(0))
        db.add_graph(path_graph([0, 0, 0]))
        db.add_graph(path_graph([1, 2]))
        return db

    def test_basic_candidates(self, db):
        index = SINGIndex(max_path_edges=2)
        index.build(db)
        # A path index cannot see the cycle: the 0-0-0 path graph also
        # roots every rooted-path feature of the triangle query.
        assert index.candidates(triangle(0)) == {0, 1}
        assert index.candidates(path_graph([0, 0])) == {0, 1}
        assert index.candidates(path_graph([1, 2])) == {2}
        assert index.candidates(path_graph([9, 9])) == set()

    def test_locational_filter_beats_count_blind_cases(self):
        """Two 0-1 edges exist, but no single label-0 vertex roots both a
        0-1 path and a 0-2 path — SING's per-vertex intersection prunes."""
        index = SINGIndex(max_path_edges=2)
        data = Graph.from_edge_list([0, 1, 0, 2], [(0, 1), (2, 3)])
        index.add_graph(0, data)
        query = path_graph([1, 0, 2])
        assert index.candidates(query) == set()

    def test_vertex_candidates_complete(self, db):
        index = SINGIndex(max_path_edges=2)
        index.build(db)
        query = path_graph([0, 0])
        vf2 = VF2Matcher()
        for gid in (0, 1):
            per_vertex = index.vertex_candidates(query, gid)
            for mapping in vf2.find_all(query, db[gid]):
                for u, v in mapping.items():
                    assert v in per_vertex[u]

    def test_maintenance(self, db):
        index = SINGIndex(max_path_edges=2)
        index.build(db)
        index.remove_graph(2)
        assert index.candidates(path_graph([1, 2])) == set()
        index.add_graph(9, path_graph([1, 2]))
        assert index.candidates(path_graph([1, 2])) == {9}
        with pytest.raises(ValueError):
            index.add_graph(9, triangle(0))
        with pytest.raises(KeyError):
            index.remove_graph(1234)

    def test_invalid_path_length(self):
        with pytest.raises(ValueError):
            SINGIndex(max_path_edges=0)


class TestSoundness:
    @pytest.fixture(scope="class")
    def workload(self):
        db = generate_database(16, 11, 2.6, 3, seed=41)
        index = SINGIndex(max_path_edges=3)
        index.build(db)
        return db, index

    @given(seed=st.integers(0, 2**32 - 1), edges=st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_answers_never_filtered(self, workload, seed, edges):
        db, index = workload
        source = db[seed % len(db)]
        query = random_walk_query(source, edges, seed=seed)
        if query is None:
            return
        vf2 = VF2Matcher()
        answers = {gid for gid, g in db.items() if vf2.exists(query, g)}
        assert answers <= index.candidates(query)
