"""Tests for repro.matching.graphql (NLF + pseudo-iso filter, join order)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.graph import Graph
from repro.matching import GraphQLMatcher, VF2Matcher

from helpers import nx_monomorphism_count, paper_like_data, paper_like_query, path_graph
from strategies import matching_instances


class TestFilter:
    def test_returns_none_when_unmatchable(self):
        q = path_graph([9, 9])
        g = path_graph([0, 0, 0])
        assert GraphQLMatcher().build_candidates(q, g) is None

    def test_pseudo_iso_prunes_false_candidates(self):
        # Query: center 1 with neighbors labeled 0 and 2.
        q = path_graph([0, 1, 2])
        # Data vertex 4 has label 1 and degree 2 with the right *multiset*
        # of neighbor labels, but its label-0 neighbor cannot itself be
        # matched (it is isolated from any label-2 vertex)... build a case
        # where only the bigraph test can prune:
        # g: 0(l0)-1(l1)-2(l2)  and  3(l0)-4(l1)-5(l2) but 5's only other
        # context makes it fine; instead give 4 two label-0 neighbors.
        g = Graph.from_edge_list(
            [0, 1, 2, 0, 1, 0],
            [(0, 1), (1, 2), (3, 4), (4, 5)],
        )
        phi = GraphQLMatcher().build_candidates(q, g)
        assert phi is not None
        assert phi[1] == (1,)

    def test_refinement_removes_locally_consistent_impostors(self):
        # Two label-1 hubs: one whose neighbors can recursively embed the
        # query path 0-1-2-1-0 structure, one that dead-ends.  LDF/NLF keep
        # both; one pseudo-iso round prunes the dead end.
        q = path_graph([0, 1, 2])
        g = Graph.from_edge_list(
            [0, 1, 2, 1, 0],
            [(0, 1), (1, 2), (3, 4)],  # hub 3 has only a label-0 neighbor
        )
        phi = GraphQLMatcher(refine_iterations=1).build_candidates(q, g)
        assert phi is not None
        assert 3 not in phi[1]

    def test_completeness_of_filter(self):
        q, g = paper_like_query(), paper_like_data()
        phi = GraphQLMatcher().build_candidates(q, g)
        assert phi is not None
        for mapping in VF2Matcher().find_all(q, g):
            for u, v in mapping.items():
                assert phi.contains(u, v)

    def test_zero_refinement_iterations_allowed(self):
        q, g = paper_like_query(), paper_like_data()
        matcher = GraphQLMatcher(refine_iterations=0)
        assert matcher.count(q, g) == VF2Matcher().count(q, g)

    def test_negative_refinement_rejected(self):
        with pytest.raises(ValueError):
            GraphQLMatcher(refine_iterations=-1)


class TestMatching:
    def test_square_query(self):
        assert GraphQLMatcher().exists(paper_like_query(), paper_like_data())

    def test_outcome_phases_populated(self):
        outcome = GraphQLMatcher().run(paper_like_query(), paper_like_data())
        assert outcome.found
        assert outcome.candidates is not None
        assert outcome.order is not None
        assert outcome.filter_time >= 0.0
        assert outcome.recursion_calls > 0

    def test_filtered_out_flag(self):
        outcome = GraphQLMatcher().run(path_graph([9, 9]), path_graph([0, 0]))
        assert outcome.filtered_out
        assert not outcome.found
        assert outcome.candidates is None

    @given(matching_instances())
    @settings(max_examples=40, deadline=None)
    def test_count_matches_networkx(self, instance):
        query, data = instance
        assert GraphQLMatcher().count(query, data) == nx_monomorphism_count(
            query, data
        )

    @given(matching_instances())
    @settings(max_examples=25, deadline=None)
    def test_refinement_depth_never_changes_answers(self, instance):
        query, data = instance
        counts = {
            GraphQLMatcher(refine_iterations=k).count(query, data)
            for k in (0, 1, 3)
        }
        assert len(counts) == 1
