"""Tests for repro.index.ggsx."""

from __future__ import annotations

import pytest

from repro.graph import Graph, GraphDatabase
from repro.index import GGSXIndex
from repro.utils.errors import MemoryLimitExceeded, TimeLimitExceeded
from repro.utils.timing import Deadline

from helpers import path_graph, star_graph, triangle


@pytest.fixture()
def two_graph_db() -> GraphDatabase:
    db = GraphDatabase()
    db.add_graph(triangle(0))
    db.add_graph(path_graph([0, 1, 2]))
    return db


class TestQueryDecomposition:
    def test_edge_cover(self):
        index = GGSXIndex(max_path_edges=2)
        q = star_graph(0, [1, 2, 3])
        paths = index.query_paths(q)
        covered = set()
        for path in paths:
            assert 2 <= len(path) <= 3  # bounded length (vertex count)
        # Count path edges: the star has 3 edges, all must be covered.
        assert sum(len(p) - 1 for p in paths) == q.num_edges

    def test_isolated_vertex_contributes_label_path(self):
        index = GGSXIndex()
        q = Graph.from_edge_list([4], [])
        assert index.query_paths(q) == [(4,)]


class TestFiltering:
    def test_boolean_containment(self, two_graph_db):
        index = GGSXIndex(max_path_edges=2)
        index.build(two_graph_db)
        assert index.candidates(path_graph([0, 1])) == {1}
        assert index.candidates(path_graph([0, 0])) == {0}
        assert index.candidates(path_graph([9, 9])) == set()

    def test_counts_not_distinguished(self, two_graph_db):
        """GGSX is boolean: two disjoint 0-0 edges don't filter a graph
        with only... the triangle has three 0-0 edges, so a query needing
        two 0-0 edges still passes — weaker than Grapes by design."""
        index = GGSXIndex(max_path_edges=2)
        index.build(two_graph_db)
        q = Graph.from_edge_list([0, 0, 0, 0], [(0, 1), (2, 3)])
        # (disconnected queries are atypical but exercise the decomposer)
        assert 0 in index.candidates(q)

    def test_single_vertex_query(self, two_graph_db):
        index = GGSXIndex()
        index.build(two_graph_db)
        assert index.candidates(Graph.from_edge_list([2], [])) == {1}

    def test_longer_paths_than_bound_still_filter(self, two_graph_db):
        """Queries longer than the index path bound decompose into
        bounded chunks."""
        index = GGSXIndex(max_path_edges=2)
        index.build(two_graph_db)
        q = path_graph([0, 1, 2])
        assert index.candidates(q) == {1}


class TestMaintenance:
    def test_add_and_remove(self, two_graph_db):
        index = GGSXIndex(max_path_edges=2)
        index.build(two_graph_db)
        index.add_graph(5, triangle(0))
        assert index.candidates(triangle(0)) == {0, 5}
        index.remove_graph(0)
        assert index.candidates(triangle(0)) == {5}

    def test_duplicate_id_rejected(self, two_graph_db):
        index = GGSXIndex()
        index.build(two_graph_db)
        with pytest.raises(ValueError):
            index.add_graph(1, triangle())


class TestBudgets:
    def test_indexing_deadline(self):
        g = Graph.from_edge_list(
            [0] * 14, [(u, v) for u in range(14) for v in range(u + 1, 14)]
        )
        with pytest.raises(TimeLimitExceeded):
            GGSXIndex(max_path_edges=4).add_graph(0, g, deadline=Deadline(0.0))

    def test_trie_node_budget(self):
        g = path_graph(list(range(12)))
        with pytest.raises(MemoryLimitExceeded):
            GGSXIndex(max_path_edges=4, max_trie_nodes=5).add_graph(0, g)


class TestCyclicQueryDecomposition:
    def test_cycle_edges_fully_covered(self):
        index = GGSXIndex(max_path_edges=2)
        cycle = triangle(0)
        paths = index.query_paths(cycle)
        assert sum(len(p) - 1 for p in paths) >= cycle.num_edges
        assert all(len(p) - 1 <= 2 for p in paths)

    def test_long_cycle_chunked(self):
        index = GGSXIndex(max_path_edges=2)
        square = Graph.from_edge_list([0] * 4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        paths = index.query_paths(square)
        # Four edges in chunks of at most two.
        assert len(paths) >= 2
