"""The supervised executor: watchdog, restart backoff, storm fuse, stats.

The contract: :class:`SupervisedExecutor` answers exactly like
:class:`ParallelExecutor` on healthy and singly-faulted batches (it only
overrides respawn *policy*, not failure classification), while a pool
that cannot hold workers stops respawning — backoff between attempts, a
storm fuse under sustained death — and heals on the first success.
"""

from __future__ import annotations

import time

import pytest

from helpers import nx_contains
from repro.core import create_engine
from repro.exec import EXECUTOR_NAMES, create_executor, faults
from repro.exec.base import InProcessExecutor
from repro.exec.parallel import ParallelExecutor
from repro.exec.supervise import SupervisedExecutor
from repro.graph import Graph


def named_square(name: str) -> Graph:
    return Graph.from_edge_list(
        [0, 1, 0, 1], [(0, 1), (1, 2), (2, 3), (3, 0)], name=name
    )


def expected_answers(query, db):
    return {gid for gid, graph in db.items() if nx_contains(query, graph)}


def run_supervised(small_db, queries, time_limit=30.0, jobs=2, **kwargs):
    executor = SupervisedExecutor(jobs=jobs, **kwargs)
    with create_engine(small_db, "CFQL", executor=executor) as eng:
        eng.build_index()
        return eng.query_many(queries, time_limit=time_limit), executor


class TestRegistry:
    def test_supervised_is_a_named_executor(self):
        assert "supervised" in EXECUTOR_NAMES
        executor = create_executor("supervised", jobs=2)
        try:
            assert isinstance(executor, SupervisedExecutor)
            assert isinstance(executor, ParallelExecutor)
        finally:
            executor.close()

    def test_storm_threshold_must_be_positive(self):
        with pytest.raises(ValueError):
            SupervisedExecutor(jobs=1, storm_threshold=0)


class TestHealthyParity:
    def test_clean_batch_matches_parallel_answers(self, small_db):
        queries = [named_square(f"q{i}") for i in range(5)]
        results, executor = run_supervised(small_db, queries)
        assert all(r.failure is None for r in results)
        expected = expected_answers(queries[0], small_db)
        assert all(r.answers == expected for r in results)
        assert executor.worker_deaths == 0 and executor.worker_kills == 0

    def test_success_resets_the_backoff(self, small_db):
        faults.inject("worker.query", "crash", match="q1")
        executor = SupervisedExecutor(jobs=2)
        with create_engine(small_db, "CFQL", executor=executor) as eng:
            eng.build_index()
            results = eng.query_many(
                [named_square(f"q{i}") for i in range(4)], time_limit=30.0
            )
            kinds = [r.failure.kind if r.failure else None for r in results]
            assert kinds == [None, "crash", None, None]
            assert executor.worker_deaths == 1
            # The crash bumped the failure counter; a later clean batch
            # always resets it (within the first batch, the reap may race
            # the tail results, so assert on the follow-up).
            recovered = eng.query_many([named_square("r0")], time_limit=30.0)
            assert recovered[0].failure is None
            assert executor._consecutive_failures == 0
            assert executor._next_spawn_at == 0.0


class TestWorkerStats:
    def test_inprocess_executor_has_no_worker_stats(self):
        assert InProcessExecutor().worker_stats() is None

    def test_stats_shape_and_liveness_rows(self, small_db):
        executor = SupervisedExecutor(jobs=2)
        with create_engine(small_db, "CFQL", executor=executor) as eng:
            eng.build_index()
            eng.query_many([named_square(f"q{i}") for i in range(4)],
                           time_limit=30.0)
            stats = executor.worker_stats()
            assert stats["executor"] == "SupervisedExecutor"
            assert stats["supervised"] is True
            assert stats["jobs"] == 2
            assert stats["spawns"] == 2
            assert stats["restarts"] == 0
            assert stats["storm_trips"] == 0
            assert stats["storm_active"] is False
            assert len(stats["live"]) == 2
            for row in stats["live"]:
                assert row["alive"] and row["ready"]
                assert isinstance(row["pid"], int)
                assert row["age_s"] >= 0.0
            # 4 queries across 2 workers: every query is accounted for.
            assert sum(row["queries"] for row in stats["live"]) == 4
            assert any(row["last_batch_latency_s"] is not None
                       for row in stats["live"])

    def test_restarts_count_deaths_and_kills(self, small_db):
        queries = [named_square(f"q{i}") for i in range(4)]
        faults.inject("worker.query", "crash", match="q2")
        results, executor = run_supervised(small_db, queries)
        assert results[2].failure is not None
        stats = executor.worker_stats()
        assert stats["deaths"] == 1
        assert stats["restarts"] == 1
        # No respawn needed when the batch already drained: spawns only
        # exceed the pool width if work was still pending at the death.
        assert stats["spawns"] >= 2

    def test_hard_timeout_kill_counts_as_kill(self, small_db):
        queries = [named_square(f"q{i}") for i in range(3)]
        faults.inject("worker.query", "spin", arg=30.0, match="q1")
        results, executor = run_supervised(
            small_db, queries, time_limit=0.3, jobs=2
        )
        assert results[1].failure is not None
        assert results[1].failure.kind == "oot"
        assert executor.worker_kills == 1
        assert executor.worker_stats()["kills"] == 1


class TestStormFuse:
    def test_sustained_crash_trips_the_storm_fuse(self, small_db):
        """With every execution crashing its worker, the pool must stop
        respawning after ``storm_threshold`` deaths and fail the rest of
        the batch fast — bounded spawns, not a fork bomb."""
        faults.inject("worker.query", "crash")
        queries = [named_square(f"q{i}") for i in range(10)]
        started = time.perf_counter()
        results, executor = run_supervised(
            small_db, queries, jobs=2,
            respawn_backoff=0.01, respawn_backoff_max=0.05,
            storm_threshold=3, storm_window=10.0, storm_cooldown=30.0,
        )
        elapsed = time.perf_counter() - started
        assert all(r.failure is not None and r.failure.kind == "crash"
                   for r in results)
        assert executor.storm_trips >= 1
        stats = executor.worker_stats()
        assert stats["storm_active"] is True
        # The fuse capped respawns: nowhere near one spawn per query.
        assert executor.spawn_total <= 2 + executor.storm_threshold
        assert elapsed < 30.0

    def test_pool_recovers_after_the_storm_cooldown(self, small_db):
        faults.inject("worker.query", "crash")
        executor = SupervisedExecutor(
            jobs=2, respawn_backoff=0.01, respawn_backoff_max=0.05,
            storm_threshold=3, storm_window=10.0, storm_cooldown=0.2,
        )
        with create_engine(small_db, "CFQL", executor=executor) as eng:
            eng.build_index()
            stormed = eng.query_many(
                [named_square(f"q{i}") for i in range(8)], time_limit=30.0
            )
            assert all(r.failure is not None for r in stormed)
            assert executor.storm_trips >= 1
            faults.clear()
            time.sleep(executor.storm_cooldown)
            recovered = eng.query_many([named_square("r0")], time_limit=30.0)
            assert recovered[0].failure is None
            assert recovered[0].answers == expected_answers(
                named_square("r0"), small_db
            )
            assert executor._consecutive_failures == 0
