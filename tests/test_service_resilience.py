"""Resilience layer tests: breaker, deadlines, dedup, client retries.

Unit tests drive the pure state machines (:class:`CircuitBreaker`,
:class:`MutationDedup`) and the service's submit/scheduler path directly;
the client-retry tests script a fake NDJSON server on a real socket so
transport failures and retryable rejections are produced on demand.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.core import create_engine
from repro.graph import Graph, generate_database
from repro.service.client import (
    ServiceClient,
    ServiceError,
    ServiceUnavailable,
)
from repro.service.protocol import decode_line, encode_message, graph_to_wire
from repro.service.resilience import CircuitBreaker, MutationDedup
from repro.service.server import QueryService, ServiceConfig


def named_square(name: str) -> Graph:
    return Graph.from_edge_list(
        [0, 1, 0, 1], [(0, 1), (1, 2), (2, 3), (3, 0)], name=name
    )


@pytest.fixture()
def service_db():
    return generate_database(
        num_graphs=20, num_vertices=12, avg_degree=2.8, num_labels=4, seed=42,
        name="small",
    )


@pytest.fixture()
def engine(service_db):
    with create_engine(service_db, "CFQL") as eng:
        eng.build_index()
        yield eng


class Responses:
    def __init__(self) -> None:
        self.items: list[dict] = []
        self._lock = threading.Lock()

    def __call__(self, payload: dict) -> None:
        with self._lock:
            self.items.append(payload)

    def by_id(self, request_id) -> dict:
        matches = [r for r in self.items if r.get("id") == request_id]
        assert len(matches) == 1, f"expected one response for {request_id}"
        return matches[0]


def query_message(request_id, graph, **extra) -> dict:
    return {"id": request_id, "op": "query", "graph": graph_to_wire(graph),
            **extra}


def drain(service: QueryService) -> None:
    service.request_shutdown()
    service.run_scheduler()


def pump(service: QueryService) -> None:
    import queue as queue_module

    while True:
        batch = []
        while len(batch) < service.config.batch_max:
            try:
                batch.append(service._queue.get_nowait())
            except queue_module.Empty:
                break
        if not batch:
            return
        service._process(batch)


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=3, cooldown=60.0)
        assert breaker.state == "closed"
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert 0.0 < breaker.retry_after() <= 60.0

    def test_success_resets_the_consecutive_count(self):
        breaker = CircuitBreaker(threshold=2, cooldown=60.0)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_admits_one_probe_then_closes_on_success(self):
        breaker = CircuitBreaker(threshold=1, cooldown=0.05)
        breaker.record_failure()
        assert breaker.state == "open"
        time.sleep(0.06)
        assert breaker.allow()  # the probe
        assert breaker.state == "half_open"
        assert not breaker.allow()  # only one probe at a time
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()
        assert breaker.transitions == {
            "closed->open": 1, "open->half_open": 1, "half_open->closed": 1,
        }

    def test_failed_probe_reopens(self):
        breaker = CircuitBreaker(threshold=1, cooldown=0.05)
        breaker.record_failure()
        time.sleep(0.06)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.transitions["half_open->open"] == 1

    def test_zero_threshold_disables(self):
        breaker = CircuitBreaker(threshold=0)
        for _ in range(100):
            breaker.record_failure()
        assert breaker.allow() and breaker.state == "closed"
        assert breaker.snapshot()["enabled"] is False

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=-1)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown=0.0)


class TestMutationDedup:
    def test_lookup_miss_then_replay(self):
        dedup = MutationDedup(capacity=4)
        assert dedup.lookup("k1") is None
        dedup.store("k1", {"ok": True, "result": {"gid": 7}})
        assert dedup.lookup("k1") == {"ok": True, "result": {"gid": 7}}
        assert dedup.hits == 1

    def test_replay_is_a_copy(self):
        dedup = MutationDedup(capacity=4)
        dedup.store("k1", {"ok": True, "result": {"gid": 7}})
        first = dedup.lookup("k1")
        first["id"] = 99
        assert "id" not in dedup.lookup("k1")

    def test_lru_eviction(self):
        dedup = MutationDedup(capacity=2)
        dedup.store("a", {"ok": True})
        dedup.store("b", {"ok": True})
        dedup.store("c", {"ok": True})
        assert dedup.lookup("a") is None
        assert dedup.lookup("b") is not None

    def test_zero_capacity_disables(self):
        dedup = MutationDedup(capacity=0)
        dedup.store("a", {"ok": True})
        assert dedup.lookup("a") is None and len(dedup) == 0


class TestDeadlines:
    def test_expired_in_queue_is_shed_as_structured_oot(self, engine):
        service = QueryService(engine, ServiceConfig())
        responses = Responses()
        service.submit(
            query_message(1, named_square("a"), deadline_ms=1), responses
        )
        time.sleep(0.02)  # the deadline passes while "queued"
        pump(service)
        result = responses.by_id(1)["result"]
        assert result["timed_out"] is True
        assert result["failure"]["kind"] == "oot"
        assert "never executed" in result["failure"]["message"]
        assert result["metadata"]["shed"] == "deadline"
        assert result["cache"] == "shed"
        assert service._counters["shed_deadline"] == 1

    def test_generous_deadline_executes_normally(self, engine):
        service = QueryService(engine, ServiceConfig())
        responses = Responses()
        service.submit(
            query_message(1, named_square("a"), deadline_ms=60_000), responses
        )
        pump(service)
        result = responses.by_id(1)["result"]
        assert result["failure"] is None
        assert result["timed_out"] is False

    def test_deadline_clips_the_kernel_budget(self, engine, monkeypatch):
        captured = {}
        original = engine.query_many

        def spy(queries, time_limit=None):
            captured["time_limit"] = time_limit
            return original(queries, time_limit=time_limit)

        monkeypatch.setattr(engine, "query_many", spy)
        service = QueryService(engine, ServiceConfig(default_time_limit=600.0))
        responses = Responses()
        service.submit(
            query_message(1, named_square("a"), deadline_ms=5_000,
                          no_cache=True),
            responses,
        )
        pump(service)
        assert captured["time_limit"] <= 5.0

    def test_deadlined_request_dispatches_solo(self, engine, monkeypatch):
        """A deadline'd query must not drag its batch-mates' budget down:
        the scheduler splits it into its own dispatch."""
        sizes = []
        original = engine.query_many

        def spy(queries, time_limit=None):
            sizes.append(len(queries))
            return original(queries, time_limit=time_limit)

        monkeypatch.setattr(engine, "query_many", spy)
        service = QueryService(engine, ServiceConfig(cache_capacity=0))
        responses = Responses()
        service.submit(query_message(1, named_square("a")), responses)
        service.submit(
            query_message(2, named_square("b"), deadline_ms=60_000), responses
        )
        service.submit(query_message(3, named_square("c")), responses)
        pump(service)
        assert sizes == [1, 1, 1]
        assert all(responses.by_id(i)["ok"] for i in (1, 2, 3))

    def test_invalid_deadline_is_bad_request(self, engine):
        service = QueryService(engine, ServiceConfig())
        responses = Responses()
        service.submit(
            query_message(1, named_square("a"), deadline_ms=-5), responses
        )
        assert responses.by_id(1)["error"]["code"] == "bad_request"


class TestBreakerIntegration:
    def make_crashing_service(self, engine, monkeypatch, threshold=2,
                              cooldown=0.1):
        """Monkeypatch the engine so every dispatch reports a crash-class
        failure, the signal that feeds the service's breaker."""
        from repro.core.metrics import QueryFailure
        from repro.exec.base import failure_result

        def crash_many(queries, time_limit=None):
            return [
                failure_result(
                    engine.name, q.name,
                    QueryFailure(kind="crash", message="worker died (test)"),
                )
                for q in queries
            ]

        monkeypatch.setattr(engine, "query_many", crash_many)
        return QueryService(engine, ServiceConfig(
            cache_capacity=0, breaker_threshold=threshold,
            breaker_cooldown=cooldown,
        ))

    def test_consecutive_crashes_open_and_reject_degraded(
        self, engine, monkeypatch
    ):
        service = self.make_crashing_service(engine, monkeypatch)
        responses = Responses()
        for i in range(1, 4):
            service.submit(query_message(i, named_square(f"q{i}")), responses)
            pump(service)
        # First two crashes answered structurally; the third rejected fast.
        assert responses.by_id(1)["result"]["failure"]["kind"] == "crash"
        assert responses.by_id(2)["result"]["failure"]["kind"] == "crash"
        error = responses.by_id(3)["error"]
        assert error["code"] == "degraded"
        assert error["retry_after_s"] >= 0.0
        assert service.breaker.state == "open"
        assert service._counters["rejected_degraded"] == 1
        assert service._counters["worker_crashes"] == 2

    def test_half_open_probe_recovers_the_service(self, engine, monkeypatch):
        service = self.make_crashing_service(engine, monkeypatch)
        responses = Responses()
        for i in range(1, 3):
            service.submit(query_message(i, named_square(f"q{i}")), responses)
            pump(service)
        assert service.breaker.state == "open"
        # The fault clears: restore the real engine and wait the cooldown.
        monkeypatch.undo()
        time.sleep(0.12)
        service.submit(query_message(10, named_square("probe")), responses)
        pump(service)
        assert responses.by_id(10)["result"]["failure"] is None
        assert service.breaker.state == "closed"
        transitions = service.breaker.transitions
        assert transitions["closed->open"] == 1
        assert transitions["open->half_open"] == 1
        assert transitions["half_open->closed"] == 1

    def test_open_breaker_still_answers_from_cache(self, engine, monkeypatch):
        """Degraded mode serves what it can: a cached answer beats a
        rejection."""
        service = QueryService(engine, ServiceConfig(
            breaker_threshold=1, breaker_cooldown=60.0,
        ))
        responses = Responses()
        service.submit(query_message(1, named_square("a")), responses)
        pump(service)
        assert responses.by_id(1)["ok"]
        # Force the breaker open, then repeat the cached query.
        service.breaker.record_failure()
        assert service.breaker.state == "open"
        service.submit(query_message(2, named_square("a")), responses)
        pump(service)
        assert responses.by_id(2)["result"]["cache"] == "hit"
        # An uncached query is rejected.
        service.submit(query_message(3, named_square("a"), no_cache=True),
                       responses)
        pump(service)
        assert responses.by_id(3)["error"]["code"] == "degraded"


class TestMutationDedupIntegration:
    def test_retried_mutation_applies_once(self, engine):
        service = QueryService(engine, ServiceConfig())
        responses = Responses()
        graphs_before = len(engine.db)
        wire = graph_to_wire(named_square("new"))
        for request_id in (1, 2):
            service.submit(
                {"id": request_id, "op": "add_graph", "graph": wire,
                 "request_key": "retry-abc"},
                responses,
            )
        pump(service)
        first = responses.by_id(1)["result"]
        second = responses.by_id(2)["result"]
        assert len(engine.db) == graphs_before + 1
        assert second["gid"] == first["gid"]
        assert second["deduplicated"] is True
        assert "deduplicated" not in first
        assert service._counters["dedup_hits"] == 1

    def test_failed_mutation_is_not_deduplicated(self, engine):
        service = QueryService(engine, ServiceConfig())
        responses = Responses()
        for request_id in (1, 2):
            service.submit(
                {"id": request_id, "op": "remove_graph", "gid": 99_999,
                 "request_key": "retry-def"},
                responses,
            )
        pump(service)
        # Both attempts really ran (and really failed): a failed mutation
        # changed nothing, so the retry must be allowed through.
        assert responses.by_id(1)["error"]["code"] == "not_found"
        assert responses.by_id(2)["error"]["code"] == "not_found"

    def test_bad_request_key_type_rejected(self, engine):
        service = QueryService(engine, ServiceConfig())
        responses = Responses()
        service.submit(
            {"id": 1, "op": "remove_graph", "gid": 0, "request_key": 5},
            responses,
        )
        assert responses.by_id(1)["error"]["code"] == "bad_request"


class ScriptedServer:
    """A fake NDJSON service: each accepted connection runs one behaviour
    from the script, in order."""

    def __init__(self, behaviours) -> None:
        self.behaviours = list(behaviours)
        self.requests: list[dict] = []
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.address = "127.0.0.1:%d" % self._sock.getsockname()[1]
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self) -> None:
        for behaviour in self.behaviours:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            try:
                behaviour(self, conn)
            finally:
                try:
                    conn.close()
                except OSError:
                    pass

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass
        self._thread.join(timeout=5.0)

    # Behaviours ---------------------------------------------------------

    @staticmethod
    def drop_after_read(server, conn) -> None:
        with conn.makefile("rb") as rfile:
            line = rfile.readline()
            if line:
                server.requests.append(decode_line(line.strip()))
        # Close without answering: the client sees a dead transport.

    @staticmethod
    def answer_all(server, conn) -> None:
        with conn.makefile("rb") as rfile:
            while True:
                line = rfile.readline()
                if not line:
                    return
                message = decode_line(line.strip())
                server.requests.append(message)
                conn.sendall(encode_message(
                    {"id": message["id"], "ok": True, "result": {"echo": True}}
                ))

    @staticmethod
    def degraded_then_answer(server, conn) -> None:
        with conn.makefile("rb") as rfile:
            for n in range(100):
                line = rfile.readline()
                if not line:
                    return
                message = decode_line(line.strip())
                server.requests.append(message)
                if n == 0:
                    conn.sendall(encode_message({
                        "id": message["id"], "ok": False,
                        "error": {"code": "degraded", "message": "open",
                                  "retry_after_s": 0.01},
                    }))
                else:
                    conn.sendall(encode_message({
                        "id": message["id"], "ok": True,
                        "result": {"echo": True},
                    }))


class TestClientRetries:
    def test_transport_loss_raises_service_unavailable_without_retries(self):
        server = ScriptedServer([ScriptedServer.drop_after_read])
        try:
            with ServiceClient(server.address, timeout=5.0) as client:
                with pytest.raises(ServiceUnavailable) as excinfo:
                    client.ping()
                assert excinfo.value.code == "unavailable"
                assert isinstance(excinfo.value, ServiceError)
        finally:
            server.close()

    def test_connect_failure_raises_service_unavailable(self):
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()  # nobody listens here now
        with pytest.raises(ServiceUnavailable):
            ServiceClient(f"127.0.0.1:{port}", timeout=0.5)

    def test_retry_reconnects_after_transport_loss(self):
        server = ScriptedServer([
            ScriptedServer.drop_after_read, ScriptedServer.answer_all,
        ])
        try:
            with ServiceClient(server.address, timeout=5.0, retries=2,
                               retry_backoff=0.01) as client:
                assert client.ping() == {"echo": True}
            assert len(server.requests) == 2  # the drop, then the retry
        finally:
            server.close()

    def test_retry_honours_degraded_retry_after(self):
        server = ScriptedServer([ScriptedServer.degraded_then_answer])
        try:
            with ServiceClient(server.address, timeout=5.0, retries=2,
                               retry_backoff=0.01) as client:
                assert client.ping() == {"echo": True}
        finally:
            server.close()

    def test_non_retryable_errors_fail_fast(self):
        def bad_request(server, conn):
            with conn.makefile("rb") as rfile:
                line = rfile.readline()
                message = decode_line(line.strip())
                server.requests.append(message)
                conn.sendall(encode_message({
                    "id": message["id"], "ok": False,
                    "error": {"code": "bad_request", "message": "nope"},
                }))

        server = ScriptedServer([bad_request])
        try:
            with ServiceClient(server.address, timeout=5.0, retries=3,
                               retry_backoff=0.01) as client:
                with pytest.raises(ServiceError) as excinfo:
                    client.ping()
                assert excinfo.value.code == "bad_request"
            assert len(server.requests) == 1  # never retried
        finally:
            server.close()

    def test_mutation_retries_carry_one_request_key(self):
        server = ScriptedServer([
            ScriptedServer.drop_after_read, ScriptedServer.answer_all,
        ])
        try:
            with ServiceClient(server.address, timeout=5.0, retries=2,
                               retry_backoff=0.01) as client:
                # answer_all echoes {"echo": True}; add_graph only needs
                # a 'gid' key to index, so answer via a custom behaviour
                # is overkill — tolerate the KeyError-free .get path by
                # calling _call directly.
                client._call({
                    "op": "add_graph",
                    "graph": graph_to_wire(named_square("g")),
                    "request_key": "fixed-key",
                })
            keys = [m.get("request_key") for m in server.requests]
            assert len(keys) == 2 and len(set(keys)) == 1
        finally:
            server.close()

    def test_not_found_removal_is_terminal(self):
        """``not_found`` is a structured, terminal rejection: retrying a
        removal of a gid the database does not hold can only fail the
        same way, so the client must send the request exactly once even
        when generous retries are configured."""
        def not_found(server, conn):
            with conn.makefile("rb") as rfile:
                message = decode_line(rfile.readline().strip())
                server.requests.append(message)
                conn.sendall(encode_message({
                    "id": message["id"], "ok": False,
                    "error": {"code": "not_found",
                              "message": "no graph with id 424242"},
                }))

        server = ScriptedServer([not_found])
        try:
            with ServiceClient(server.address, timeout=5.0, retries=5,
                               retry_backoff=0.01) as client:
                with pytest.raises(ServiceError) as excinfo:
                    client.remove_graph(424242)
                assert excinfo.value.code == "not_found"
            assert len(server.requests) == 1  # never retried
            assert server.requests[0]["op"] == "remove_graph"
        finally:
            server.close()

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            ServiceClient("unix:/nonexistent.sock", retries=-1)


class TestStatsSurface:
    def test_oldest_wait_reflects_the_queue_head(self, engine):
        service = QueryService(engine, ServiceConfig())
        responses = Responses()
        service.submit(query_message(1, named_square("a")), responses)
        time.sleep(0.03)
        stats = service.stats()
        assert stats["queue"]["depth"] == 1
        assert stats["queue"]["oldest_wait_s"] >= 0.03
        assert stats["breaker"]["state"] == "closed"
        assert stats["dedup"]["capacity"] == 512
        pump(service)
        assert service.stats()["queue"]["oldest_wait_s"] is None
