"""Tests for repro.workloads.querysets (Q_iS / Q_iD, Table V stats)."""

from __future__ import annotations

import pytest

from repro.graph import generate_database, is_connected
from repro.matching import CFQLMatcher
from repro.workloads import (
    generate_query_set,
    query_set_statistics,
    standard_query_sets,
)


@pytest.fixture(scope="module")
def db():
    return generate_database(12, 25, 3.0, 4, seed=17, name="qs-test")


class TestGenerateQuerySet:
    def test_size_edges_and_names(self, db):
        qs = generate_query_set(db, 6, dense=False, size=8, seed=1)
        assert len(qs) == 8
        assert qs.name == "Q6S"
        assert all(q.num_edges == 6 for q in qs)
        assert not qs.dense

    def test_dense_naming(self, db):
        qs = generate_query_set(db, 4, dense=True, size=3, seed=2)
        assert qs.name == "Q4D"
        assert qs.dense

    def test_queries_are_connected(self, db):
        qs = generate_query_set(db, 8, dense=True, size=8, seed=3)
        assert all(is_connected(q) for q in qs)

    def test_queries_have_answers(self, db):
        qs = generate_query_set(db, 5, dense=False, size=6, seed=4)
        matcher = CFQLMatcher()
        for q in qs:
            assert any(matcher.exists(q, g) for g in db.graphs())

    def test_deterministic(self, db):
        a = generate_query_set(db, 5, dense=False, size=4, seed=9)
        b = generate_query_set(db, 5, dense=False, size=4, seed=9)
        assert [q.labels for q in a] == [q.labels for q in b]

    def test_impossible_size_raises(self, db):
        with pytest.raises(ValueError, match="could not sample"):
            generate_query_set(db, 500, dense=False, size=2, seed=5)

    def test_empty_db_rejected(self):
        from repro.graph import GraphDatabase

        with pytest.raises(ValueError, match="empty database"):
            generate_query_set(GraphDatabase(), 4, dense=False, size=1)


class TestStandardQuerySets:
    def test_eight_sets(self, db):
        sets = standard_query_sets(db, edge_counts=(4, 8), size=3, seed=0)
        assert set(sets) == {"Q4S", "Q8S", "Q4D", "Q8D"}

    def test_sparse_sets_are_sparser_on_average(self):
        dense_db = generate_database(8, 30, 8.0, 3, seed=23)
        sets = standard_query_sets(dense_db, edge_counts=(8,), size=10, seed=0)
        sparse_d = query_set_statistics(sets["Q8S"])["d per q"]
        dense_d = query_set_statistics(sets["Q8D"])["d per q"]
        assert dense_d > sparse_d


class TestStatistics:
    def test_table_five_columns(self, db):
        qs = generate_query_set(db, 4, dense=False, size=5, seed=6)
        stats = query_set_statistics(qs)
        assert set(stats) == {"|V| per q", "|Σ| per q", "d per q", "% of trees"}

    def test_tree_fraction_in_range(self, db):
        qs = generate_query_set(db, 4, dense=False, size=10, seed=7)
        assert 0.0 <= query_set_statistics(qs)["% of trees"] <= 1.0

    def test_small_sparse_queries_are_mostly_trees(self, db):
        """Paper Table V: Q4S is ~95-100% trees."""
        qs = generate_query_set(db, 4, dense=False, size=20, seed=8)
        assert query_set_statistics(qs)["% of trees"] >= 0.8
