"""Tests for repro.graph.builder."""

from __future__ import annotations

import pytest

from repro.graph import GraphBuilder
from repro.utils.errors import GraphBuildError


class TestVertices:
    def test_ids_are_sequential(self):
        b = GraphBuilder()
        assert b.add_vertex(0) == 0
        assert b.add_vertex(1) == 1
        assert b.num_vertices == 2

    def test_add_vertices_returns_range(self):
        b = GraphBuilder()
        assert b.add_vertices([0, 1, 2]) == range(0, 3)


class TestEdges:
    def test_add_edge(self):
        b = GraphBuilder()
        b.add_vertices([0, 0])
        b.add_edge(0, 1)
        assert b.has_edge(0, 1) and b.has_edge(1, 0)
        assert b.num_edges == 1

    def test_duplicate_edge_raises(self):
        b = GraphBuilder()
        b.add_vertices([0, 0])
        b.add_edge(0, 1)
        with pytest.raises(GraphBuildError, match="duplicate"):
            b.add_edge(1, 0)

    def test_try_add_edge_reports_duplicates(self):
        b = GraphBuilder()
        b.add_vertices([0, 0])
        assert b.try_add_edge(0, 1) is True
        assert b.try_add_edge(1, 0) is False
        assert b.num_edges == 1

    def test_self_loop_rejected_everywhere(self):
        b = GraphBuilder()
        b.add_vertex(0)
        with pytest.raises(GraphBuildError, match="self loop"):
            b.add_edge(0, 0)
        with pytest.raises(GraphBuildError, match="self loop"):
            b.try_add_edge(0, 0)

    def test_unknown_vertex_rejected(self):
        b = GraphBuilder()
        b.add_vertex(0)
        with pytest.raises(GraphBuildError, match="unknown vertex"):
            b.add_edge(0, 5)

    def test_degree(self):
        b = GraphBuilder()
        b.add_vertices([0, 0, 0])
        b.add_edge(0, 1)
        b.add_edge(0, 2)
        assert b.degree(0) == 2
        assert b.degree(1) == 1


class TestBuild:
    def test_build_produces_expected_graph(self):
        b = GraphBuilder(name="g")
        b.add_vertices([3, 4, 5])
        b.add_edge(0, 2)
        g = b.build()
        assert g.name == "g"
        assert g.labels == (3, 4, 5)
        assert g.has_edge(0, 2)
        assert g.num_edges == 1

    def test_builder_reusable_after_build(self):
        b = GraphBuilder()
        b.add_vertices([0, 0])
        b.add_edge(0, 1)
        first = b.build()
        b.add_vertex(0)
        b.add_edge(1, 2)
        second = b.build()
        assert first.num_vertices == 2 and first.num_edges == 1
        assert second.num_vertices == 3 and second.num_edges == 2

    def test_empty_build(self):
        g = GraphBuilder().build()
        assert g.num_vertices == 0
