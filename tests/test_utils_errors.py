"""Tests for repro.utils.errors (exception hierarchy contracts)."""

from __future__ import annotations

import pytest

from repro.utils.errors import (
    ConfigurationError,
    GraphBuildError,
    GraphFormatError,
    MemoryLimitExceeded,
    ReproError,
    SnapshotError,
    TimeLimitExceeded,
)

ALL_ERRORS = [
    ConfigurationError,
    GraphBuildError,
    GraphFormatError,
    MemoryLimitExceeded,
    SnapshotError,
    TimeLimitExceeded,
]


@pytest.mark.parametrize("exc", ALL_ERRORS)
def test_all_errors_share_the_base(exc):
    """Callers can catch ReproError to handle any library failure."""
    assert issubclass(exc, ReproError)
    with pytest.raises(ReproError):
        raise exc("boom")


def test_oot_and_oom_are_distinct():
    """The harness maps them to different table markers (OOT vs OOM)."""
    assert not issubclass(TimeLimitExceeded, MemoryLimitExceeded)
    assert not issubclass(MemoryLimitExceeded, TimeLimitExceeded)


def test_base_error_is_a_plain_exception():
    """Library failures must be catchable without trapping SystemExit/
    KeyboardInterrupt."""
    assert issubclass(ReproError, Exception)
    assert not issubclass(ReproError, SystemExit)


def test_snapshot_error_carries_a_reason_code():
    """The store's callers dispatch on machine-readable reasons."""
    assert SnapshotError("x").reason == "payload"
    assert SnapshotError("x", reason="checksum").reason == "checksum"


def test_graph_format_error_carries_line_context():
    """Parse errors are structured, not just prose."""
    err = GraphFormatError("bad record", lineno=7, line="e 0 zzz")
    assert err.lineno == 7
    assert err.line == "e 0 zzz"
    assert GraphFormatError("bare").lineno is None
