"""End-to-end equivalence: all ten algorithm configurations must return the
same answer set for every query — the system-level correctness property.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ALGORITHM_NAMES, create_engine
from repro.graph import bfs_query, generate_database, random_walk_query

from strategies import connected_graphs


@pytest.fixture(scope="module")
def engines():
    db = generate_database(18, 11, 2.8, 3, seed=33)
    built = {}
    for name in ALGORITHM_NAMES:
        engine = create_engine(
            db, name, index_max_path_edges=3, index_max_tree_edges=3
        )
        engine.build_index()
        built[name] = engine
    return db, built


@given(
    seed=st.integers(0, 2**32 - 1),
    num_edges=st.integers(1, 5),
    dense=st.booleans(),
)
@settings(max_examples=30, deadline=None)
def test_sampled_queries_same_answers(engines, seed, num_edges, dense):
    db, built = engines
    source = db[seed % len(db)]
    generator = bfs_query if dense else random_walk_query
    query = generator(source, num_edges, seed=seed)
    if query is None:
        return
    reference = built["VF2-FV"].query(query).answers
    assert reference  # the source graph must answer
    for name, engine in built.items():
        assert engine.query(query).answers == reference, name


@given(query=connected_graphs(min_vertices=2, max_vertices=5, max_labels=3))
@settings(max_examples=30, deadline=None)
def test_arbitrary_queries_same_answers(engines, query):
    _, built = engines
    reference = built["VF2-FV"].query(query).answers
    for name, engine in built.items():
        assert engine.query(query).answers == reference, name


def test_candidate_sets_always_cover_answers(engines):
    db, built = engines
    import random

    rng = random.Random(9)
    for _ in range(20):
        source = db[rng.choice(db.ids())]
        query = random_walk_query(source, 4, seed=rng.getrandbits(32))
        if query is None:
            continue
        for name, engine in built.items():
            result = engine.query(query)
            assert result.answers <= result.candidates, name
