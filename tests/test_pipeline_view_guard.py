"""Pipelines against restricted views and stale-index situations."""

from __future__ import annotations

import pytest

from repro.core import DatabaseView, create_pipeline
from repro.graph import GraphDatabase

from helpers import path_graph, triangle


@pytest.fixture()
def db() -> GraphDatabase:
    db = GraphDatabase()
    db.add_graphs([triangle(0), path_graph([0, 0, 0]), path_graph([0, 0])])
    return db


class TestIFVOnViews:
    def test_index_candidates_outside_view_skipped(self, db):
        """The index knows all graphs; a restricted view must confine both
        verification and the reported candidate set."""
        pipeline = create_pipeline("Grapes", index_max_path_edges=2)
        pipeline.build_index(db)
        view = DatabaseView(db, {1, 2})
        result = pipeline.execute(path_graph([0, 0]), view)
        assert result.answers == {1, 2}
        assert 0 not in result.candidates

    def test_ivcfv_on_view(self, db):
        pipeline = create_pipeline("vcGrapes", index_max_path_edges=2)
        pipeline.build_index(db)
        view = DatabaseView(db, {0})
        result = pipeline.execute(path_graph([0, 0]), view)
        assert result.answers == {0}
        assert result.index_candidates == {0}

    def test_vcfv_on_view(self, db):
        pipeline = create_pipeline("CFQL")
        view = DatabaseView(db, {2})
        result = pipeline.execute(path_graph([0, 0]), view)
        assert result.answers == {2}
        assert result.candidates == {2}


class TestEmptyView:
    def test_no_graphs_no_answers(self, db):
        for name in ("CFQL", "VF2-FV"):
            pipeline = create_pipeline(name)
            result = pipeline.execute(triangle(0), DatabaseView(db, set()))
            assert result.answers == set()
            assert result.candidates == set()
