"""Tests for repro.matching.quicksi (QI-sequence direct enumeration)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.graph import Graph
from repro.matching import QuickSIMatcher, qi_sequence_order

from helpers import nx_monomorphism_count, paper_like_data, paper_like_query, path_graph, triangle
from strategies import matching_instances


class TestQISequence:
    def test_order_is_connected_permutation(self):
        q, g = paper_like_query(), paper_like_data()
        order = qi_sequence_order(q, g)
        assert sorted(order) == list(q.vertices())
        position = {u: i for i, u in enumerate(order)}
        for i, u in enumerate(order):
            if i > 0:
                assert any(position[w] < i for w in q.neighbors(u))

    def test_rare_edge_bound_first(self):
        # Data: many 0-0 edges, one 0-7 edge.  The query's 0-7 edge is the
        # rarest label pair, so its endpoints open the order.
        g = Graph.from_edge_list(
            [0, 0, 0, 0, 7],
            [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (3, 4)],
        )
        q = Graph.from_edge_list([0, 0, 7], [(0, 1), (1, 2)])
        order = qi_sequence_order(q, g)
        assert set(order[:2]) == {1, 2}  # the 0-7 query edge

    def test_single_vertex(self):
        q = Graph.from_edge_list([3], [])
        assert qi_sequence_order(q, triangle(3)) == (0,)

    def test_empty_query(self):
        q = Graph.from_edge_list([], [])
        assert qi_sequence_order(q, triangle()) == ()

    def test_disconnected_query_rejected(self):
        q = Graph.from_edge_list([0, 0, 0, 0], [(0, 1), (2, 3)])
        with pytest.raises(ValueError, match="connected"):
            qi_sequence_order(q, paper_like_data())


class TestMatching:
    def test_square_query(self):
        assert QuickSIMatcher().exists(paper_like_query(), paper_like_data())

    def test_no_candidates_short_circuits(self):
        outcome = QuickSIMatcher().run(path_graph([9, 9]), triangle(0))
        assert not outcome.found
        assert outcome.recursion_calls == 0

    def test_empty_query(self):
        q = Graph.from_edge_list([], [])
        assert QuickSIMatcher().run(q, triangle()).num_embeddings == 1

    def test_order_recorded_in_outcome(self):
        outcome = QuickSIMatcher().run(paper_like_query(), paper_like_data())
        assert outcome.order is not None
        assert outcome.filter_time == 0.0  # direct enumeration: no filter

    @given(matching_instances())
    @settings(max_examples=40, deadline=None)
    def test_count_matches_networkx(self, instance):
        query, data = instance
        assert QuickSIMatcher().count(query, data) == nx_monomorphism_count(
            query, data
        )
