"""Uniform memory budgets on the enumeration indices (OOM satellites).

Grapes bounds its retained path trie (``max_trie_nodes``), GraphGrep its
flat feature table (``max_total_features``) — both mirroring GGSX's
suffix-trie node budget so every enumeration index can reproduce the
paper's OOM entries the same way.
"""

from __future__ import annotations

import pytest

from repro.index.grapes import GrapesIndex
from repro.index.graphgrep import GraphGrepIndex
from repro.utils.errors import MemoryLimitExceeded


class TestGrapesTrieBudget:
    def test_tight_budget_raises_oom(self, small_db):
        index = GrapesIndex(max_path_edges=2, max_trie_nodes=3)
        with pytest.raises(MemoryLimitExceeded, match="trie node budget"):
            index.build(small_db)

    def test_generous_budget_builds(self, small_db):
        index = GrapesIndex(max_path_edges=2, max_trie_nodes=1_000_000)
        index.build(small_db)
        assert index.num_trie_nodes <= 1_000_000
        assert index.indexed_ids == set(small_db.ids())

    def test_unbudgeted_by_default(self, small_db):
        index = GrapesIndex(max_path_edges=2)
        assert index.max_trie_nodes is None
        index.build(small_db)

    def test_budget_checked_during_single_graph_insert(self, small_db):
        index = GrapesIndex(max_path_edges=2, max_trie_nodes=3)
        gid = next(iter(small_db.ids()))
        with pytest.raises(MemoryLimitExceeded):
            index.add_graph(gid, small_db[gid])


class TestGraphGrepFeatureBudget:
    def test_tight_budget_raises_oom(self, small_db):
        index = GraphGrepIndex(max_path_edges=2, max_total_features=2)
        with pytest.raises(MemoryLimitExceeded, match="feature budget"):
            index.build(small_db)

    def test_generous_budget_builds(self, small_db):
        index = GraphGrepIndex(max_path_edges=2, max_total_features=1_000_000)
        index.build(small_db)
        assert index.num_features <= 1_000_000
        assert index.indexed_ids == set(small_db.ids())

    def test_unbudgeted_by_default(self, small_db):
        index = GraphGrepIndex(max_path_edges=2)
        assert index.max_total_features is None
        index.build(small_db)
