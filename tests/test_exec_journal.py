"""RunJournal durability and matrix kill-and-resume behaviour."""

from __future__ import annotations

import json

import pytest

from repro.bench import harness
from repro.bench.harness import BenchConfig, real_world_matrix, synthetic_matrix
from repro.exec.journal import RunJournal


class TestRunJournal:
    def test_missing_file_starts_empty(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        assert len(journal) == 0
        assert not journal.has("index", "AIDS", "Grapes")

    def test_put_get_roundtrip(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        journal.put(("report", "AIDS", "CFQL", "Q4S"), {"aux": 12})
        assert journal.has("report", "AIDS", "CFQL", "Q4S")
        assert journal.get("report", "AIDS", "CFQL", "Q4S") == {"aux": 12}
        assert len(journal) == 1

    def test_none_value_is_distinct_from_absent(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        journal.put(("cell",), None)
        assert journal.has("cell")
        assert journal.get("cell", default="sentinel") is None
        assert journal.get("other", default="sentinel") == "sentinel"

    def test_survives_reload(self, tmp_path):
        path = tmp_path / "run.jsonl"
        RunJournal(path).put(("index", "AIDS", "Grapes"), {"build": 1.5})
        reloaded = RunJournal(path)
        assert reloaded.get("index", "AIDS", "Grapes") == {"build": 1.5}

    def test_last_record_wins(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = RunJournal(path)
        journal.put(("cell",), 1)
        journal.put(("cell",), 2)
        assert RunJournal(path).get("cell") == 2

    def test_torn_final_line_is_ignored(self, tmp_path):
        """A run killed mid-write leaves a truncated last line; loading
        must keep every complete record and drop the torn one."""
        path = tmp_path / "run.jsonl"
        journal = RunJournal(path)
        journal.put(("a",), 1)
        journal.put(("b",), 2)
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"key": ["c"], "val')  # killed mid-write
        reloaded = RunJournal(path)
        assert len(reloaded) == 2
        assert reloaded.get("a") == 1 and reloaded.get("b") == 2
        assert not reloaded.has("c")

    def test_keys_distinguish_types(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        journal.put(("syn", "num_labels", 2, "Grapes"), "int-key")
        assert not journal.has("syn", "num_labels", "2", "Grapes")


def tiny_config(journal_path) -> BenchConfig:
    return BenchConfig(
        dataset_scale=0.02,
        queries_per_set=2,
        edge_counts=(4,),
        query_time_limit=2.0,
        index_time_limit=10.0,
        synthetic_num_graphs=4,
        synthetic_num_vertices=12,
        synthetic_sweeps=(("num_labels", (2, 4)),),
        journal=str(journal_path),
    )


def report_dicts(matrix):
    return {
        key: (None if report is None else report.to_dict())
        for key, report in matrix.reports.items()
    }


@pytest.fixture()
def count_engine_builds(monkeypatch):
    """Patch harness.build_engine to count invocations."""
    calls = []
    original = harness.build_engine

    def counting(*args, **kwargs):
        calls.append(args[1])
        return original(*args, **kwargs)

    monkeypatch.setattr(harness, "build_engine", counting)
    return calls


class TestMatrixResume:
    DATASETS = ("AIDS",)
    ALGORITHMS = ("Grapes", "CFQL")

    def run_matrix(self, config):
        real_world_matrix.cache_clear()
        return real_world_matrix(
            config, datasets=self.DATASETS, algorithms=self.ALGORITHMS
        )

    def test_full_journal_restores_without_building_engines(
        self, tmp_path, count_engine_builds
    ):
        config = tiny_config(tmp_path / "run.jsonl")
        first = self.run_matrix(config)
        count_engine_builds.clear()
        resumed = self.run_matrix(config)
        assert count_engine_builds == []
        assert report_dicts(resumed) == report_dicts(first)
        assert resumed.index_build == first.index_build
        assert resumed.index_memory == first.index_memory
        assert resumed.auxiliary_memory == first.auxiliary_memory

    def test_kill_and_resume_skips_journaled_cells(
        self, tmp_path, count_engine_builds
    ):
        """Truncating the journal reproduces a run killed mid-matrix: the
        rerun must recompute only the missing cells and end up with the
        same report."""
        path = tmp_path / "run.jsonl"
        config = tiny_config(path)
        first = self.run_matrix(config)
        lines = path.read_text().splitlines()
        # 1 config stamp + 2 algorithms x (1 index + 2 report cells).
        assert len(lines) == 7
        # Keep the stamp, Grapes' three cells, and CFQL's index cell only.
        path.write_text("\n".join(lines[:5]) + "\n")
        count_engine_builds.clear()
        resumed = self.run_matrix(config)
        # Grapes was fully journaled; only CFQL needed an engine again.
        assert count_engine_builds == ["CFQL"]
        assert resumed.index_build == first.index_build
        assert set(report_dicts(resumed)) == set(report_dicts(first))
        grapes_keys = [k for k in first.reports if k[1] == "Grapes"]
        for key in grapes_keys:
            assert report_dicts(resumed)[key] == report_dicts(first)[key]

    def test_journal_records_are_json_lines(self, tmp_path):
        path = tmp_path / "run.jsonl"
        self.run_matrix(tiny_config(path))
        for line in path.read_text().splitlines():
            record = json.loads(line)
            assert set(record) == {"key", "value"}
            assert record["key"][0] in ("meta", "index", "report")

    def test_resume_under_different_config_is_rejected(self, tmp_path):
        """Journaled cells are only valid under the config that produced
        them; a mismatched resume must fail loudly, not replay stale
        cells."""
        import dataclasses

        from repro.utils.errors import ConfigurationError

        config = tiny_config(tmp_path / "run.jsonl")
        self.run_matrix(config)
        changed = dataclasses.replace(config, queries_per_set=3)
        with pytest.raises(ConfigurationError, match="different"):
            self.run_matrix(changed)

    def test_renamed_journal_file_still_matches(self, tmp_path):
        """The journal path itself is not part of the config fingerprint."""
        import dataclasses

        old = tmp_path / "run.jsonl"
        config = tiny_config(old)
        first = self.run_matrix(config)
        new = tmp_path / "moved.jsonl"
        old.rename(new)
        resumed = self.run_matrix(dataclasses.replace(config, journal=str(new)))
        assert report_dicts(resumed) == report_dicts(first)

    def test_no_journal_matches_journaled_run(self, tmp_path):
        journaled = self.run_matrix(tiny_config(tmp_path / "run.jsonl"))
        import dataclasses

        plain_config = dataclasses.replace(
            tiny_config(tmp_path / "run.jsonl"), journal=""
        )
        plain = self.run_matrix(plain_config)
        assert set(report_dicts(plain)) == set(report_dicts(journaled))
        assert set(plain.index_build) == set(journaled.index_build)


class TestSyntheticResume:
    def test_synthetic_full_restore(self, tmp_path, count_engine_builds):
        config = tiny_config(tmp_path / "run.jsonl")
        synthetic_matrix.cache_clear()
        first = synthetic_matrix(
            config, algorithms=("CFQL",), index_algorithms=("Grapes",)
        )
        count_engine_builds.clear()
        synthetic_matrix.cache_clear()
        resumed = synthetic_matrix(
            config, algorithms=("CFQL",), index_algorithms=("Grapes",)
        )
        assert count_engine_builds == []
        assert report_dicts(resumed) == report_dicts(first)
        assert resumed.index_build == first.index_build
        # Indexing-only algorithms keep their seed semantics on resume:
        # an index cell but no report cell.
        assert all(key[2] == "CFQL" for key in resumed.reports)
        assert all(key[2] == "Grapes" for key in resumed.index_build)
