"""Tests for repro.index.ct_index."""

from __future__ import annotations

import pytest

from repro.graph import Graph, GraphDatabase
from repro.index import CTIndex
from repro.utils.errors import TimeLimitExceeded
from repro.utils.timing import Deadline

from helpers import path_graph, triangle


@pytest.fixture()
def db() -> GraphDatabase:
    db = GraphDatabase()
    db.add_graph(triangle(0))               # cycle feature
    db.add_graph(path_graph([0, 0, 0, 0]))  # tree features only
    return db


class TestFiltering:
    def test_cycle_feature_distinguishes(self, db):
        index = CTIndex(max_tree_edges=3, max_cycle_length=3)
        index.build(db)
        assert index.candidates(triangle(0)) == {0}

    def test_tree_query_matches_both(self, db):
        index = CTIndex(max_tree_edges=3, max_cycle_length=3)
        index.build(db)
        assert index.candidates(path_graph([0, 0])) == {0, 1}

    def test_long_path_feature(self, db):
        index = CTIndex(max_tree_edges=3, max_cycle_length=3)
        index.build(db)
        # A 3-edge path exists in the path graph but not in the triangle.
        assert index.candidates(path_graph([0, 0, 0, 0])) == {1}

    def test_label_feature_filters_single_vertex_queries(self, db):
        index = CTIndex()
        index.build(db)
        assert index.candidates(Graph.from_edge_list([0], [])) == {0, 1}
        assert index.candidates(Graph.from_edge_list([9], [])) == set()

    def test_query_fingerprint_subset_of_source(self, db):
        index = CTIndex()
        index.build(db)
        g = db[0]
        fp_graph = index.fingerprint_of(g)
        fp_query = index.fingerprint_of(path_graph([0, 0]))
        assert index._hasher.covers(fp_graph, fp_query)


class TestMaintenance:
    def test_add_remove(self, db):
        index = CTIndex(max_tree_edges=3, max_cycle_length=3)
        index.build(db)
        index.add_graph(9, triangle(0))
        assert index.candidates(triangle(0)) == {0, 9}
        index.remove_graph(0)
        assert index.candidates(triangle(0)) == {9}
        assert index.indexed_ids == {1, 9}

    def test_duplicate_id_rejected(self, db):
        index = CTIndex()
        index.build(db)
        with pytest.raises(ValueError):
            index.add_graph(0, triangle())

    def test_remove_unknown_raises(self):
        with pytest.raises(KeyError):
            CTIndex().remove_graph(4)


class TestBudgetsAndMemory:
    def test_indexing_deadline(self):
        g = Graph.from_edge_list(
            [0] * 12, [(u, v) for u in range(12) for v in range(u + 1, 12)]
        )
        with pytest.raises(TimeLimitExceeded):
            CTIndex(max_tree_edges=4).add_graph(0, g, deadline=Deadline(0.0))

    def test_memory_is_fixed_per_graph(self, db):
        index = CTIndex(num_bits=4096)
        index.build(db)
        per_graph = index.memory_bytes() / len(db)
        assert per_graph == pytest.approx(4096 / 8 + 64)
