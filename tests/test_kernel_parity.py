"""Randomized parity suite: iterative kernel vs the recursive reference.

The iterative explicit-stack kernel (the default ``enumerate_embeddings``)
must agree with the retained recursive reference on every observable:
embedding counts, collected embedding sets (order-insensitive), ``limit``
early-exit behavior, and deadline expiry mid-enumeration.  Cases are
seeded query/data pairs spanning the matchers' candidate sets and orders,
plus hand-picked shapes (paths, cliques, stars) that stress specific
kernel paths (single-vertex orders, leaf popcounts, deep backtracking).
"""

from __future__ import annotations

import random

import pytest

from repro.graph.generators import generate_database, generate_graph, random_walk_query
from repro.matching.candidates import CandidateSets, ldf_candidate_bits
from repro.matching.cfql import CFQLMatcher
from repro.matching.enumeration import (
    enumerate_embeddings_iterative,
    enumerate_embeddings_recursive,
)
from repro.matching.graphql import GraphQLMatcher
from repro.matching.plan import compile_plan
from repro.utils.errors import TimeLimitExceeded
from repro.utils.timing import Deadline


def _embedding_set(embeddings):
    return {frozenset(e.items()) for e in embeddings}


def _random_cases(num: int, seed: int):
    """Seeded (query, data, candidates, order, plan) cases with non-empty
    candidate sets, drawn through real matcher filter/order phases."""
    rng = random.Random(seed)
    matchers = [CFQLMatcher(), GraphQLMatcher()]
    cases = []
    attempts = 0
    while len(cases) < num and attempts < num * 30:
        attempts += 1
        data = generate_graph(
            num_vertices=rng.randint(12, 40),
            avg_degree=rng.uniform(3.0, 6.0),
            num_labels=rng.randint(2, 4),
            seed=rng.randint(0, 10**6),
        )
        query = random_walk_query(
            data, num_edges=rng.randint(2, 7), seed=rng.randint(0, 10**6)
        )
        if query is None:
            continue
        matcher = rng.choice(matchers)
        candidates = matcher.build_candidates(query, data)
        if candidates is None or not candidates.all_nonempty:
            continue
        order = matcher.matching_order(query, data, candidates)
        cases.append((query, data, candidates, tuple(order), compile_plan(query)))
    assert len(cases) == num, "could not generate enough parity cases"
    return cases


CASES = _random_cases(25, seed=20260806)


@pytest.mark.parametrize("case_index", range(len(CASES)))
def test_counts_match_reference(case_index):
    query, data, candidates, order, plan = CASES[case_index]
    reference = enumerate_embeddings_recursive(query, data, candidates, order)
    for prefix_cache in (True, False):
        iterative = enumerate_embeddings_iterative(
            query, data, candidates, order, plan=plan, prefix_cache=prefix_cache
        )
        assert iterative.num_embeddings == reference.num_embeddings
        assert iterative.completed == reference.completed
        assert iterative.found == reference.found


@pytest.mark.parametrize("case_index", range(0, len(CASES), 3))
def test_collected_embeddings_match_reference(case_index):
    query, data, candidates, order, plan = CASES[case_index]
    reference = enumerate_embeddings_recursive(
        query, data, candidates, order, collect=True
    )
    iterative = enumerate_embeddings_iterative(
        query, data, candidates, order, collect=True, plan=plan
    )
    assert _embedding_set(iterative.embeddings) == _embedding_set(
        reference.embeddings
    )
    # Every collected embedding is a valid, injective, edge-preserving map.
    for emb in iterative.embeddings:
        assert len(set(emb.values())) == len(emb)
        for u, v in query.edges():
            assert emb[v] in data.neighbor_set(emb[u])


@pytest.mark.parametrize("limit", [1, 2, 7])
@pytest.mark.parametrize("case_index", range(0, len(CASES), 5))
def test_limit_early_exit_matches_reference(case_index, limit):
    query, data, candidates, order, plan = CASES[case_index]
    reference = enumerate_embeddings_recursive(
        query, data, candidates, order, limit=limit, collect=True
    )
    iterative = enumerate_embeddings_iterative(
        query, data, candidates, order, limit=limit, collect=True, plan=plan
    )
    assert iterative.num_embeddings == reference.num_embeddings
    assert iterative.completed == reference.completed
    assert len(iterative.embeddings) == len(reference.embeddings)
    total = enumerate_embeddings_recursive(query, data, candidates, order)
    assert iterative.num_embeddings == min(limit, total.num_embeddings)


def test_deadline_expiry_raises_in_both_kernels():
    # A dense case with enough work that both kernels poll the clock past
    # their strides before finishing.
    data = generate_graph(num_vertices=24, avg_degree=12.0, num_labels=1, seed=3)
    query = random_walk_query(data, num_edges=5, seed=4)
    assert query is not None
    candidates = CandidateSets.from_bitmaps(ldf_candidate_bits(query, data))
    matcher = CFQLMatcher()
    order = matcher.matching_order(query, data, candidates)
    plan = compile_plan(query)
    with pytest.raises(TimeLimitExceeded):
        enumerate_embeddings_recursive(
            query, data, candidates, order, deadline=Deadline(0.0)
        )
    with pytest.raises(TimeLimitExceeded):
        enumerate_embeddings_iterative(
            query, data, candidates, order, deadline=Deadline(0.0), plan=plan
        )


def test_single_vertex_and_empty_orders():
    db = generate_database(num_graphs=1, num_vertices=20, avg_degree=4, num_labels=2, seed=9)
    data = db[0]
    from repro.graph.labeled_graph import Graph

    single = Graph.from_edge_list([data.label(0)], [])
    candidates = CandidateSets.from_bitmaps(ldf_candidate_bits(single, data))
    for limit in (None, 1, 3):
        ref = enumerate_embeddings_recursive(
            single, data, candidates, (0,), limit=limit, collect=True
        )
        it = enumerate_embeddings_iterative(
            single, data, candidates, (0,), limit=limit, collect=True
        )
        assert it.num_embeddings == ref.num_embeddings
        assert it.completed == ref.completed
        assert _embedding_set(it.embeddings) == _embedding_set(ref.embeddings)

    empty = Graph.from_edge_list([], [])
    ref = enumerate_embeddings_recursive(
        empty, data, CandidateSets.from_bitmaps([]), (), collect=True
    )
    it = enumerate_embeddings_iterative(
        empty, data, CandidateSets.from_bitmaps([]), (), collect=True
    )
    assert it.num_embeddings == ref.num_embeddings == 1
    assert it.embeddings == ref.embeddings == [{}]


def test_iterative_validates_order_like_reference():
    data = generate_graph(num_vertices=10, avg_degree=3.0, num_labels=2, seed=7)
    from repro.graph.labeled_graph import Graph

    # A disconnected order must be rejected identically by both kernels.
    path = Graph.from_edge_list([0, 0, 0, 0], [(0, 1), (1, 2), (2, 3)])
    bad_candidates = CandidateSets.from_bitmaps(ldf_candidate_bits(path, data))
    with pytest.raises(ValueError, match="permutation"):
        enumerate_embeddings_iterative(path, data, bad_candidates, (0, 0, 1))
    with pytest.raises(ValueError, match="not connected"):
        enumerate_embeddings_iterative(path, data, bad_candidates, (0, 3, 1, 2))
    with pytest.raises(ValueError, match="not connected"):
        enumerate_embeddings_recursive(path, data, bad_candidates, (0, 3, 1, 2))
