"""Tests for repro.matching.cfl (CPI-style filter, path-based order)."""

from __future__ import annotations

from hypothesis import given, settings

from repro.graph import Graph
from repro.matching import CandidateSets, CFLMatcher, VF2Matcher, ldf_candidates

from helpers import nx_monomorphism_count, paper_like_data, paper_like_query, path_graph
from strategies import matching_instances


class TestFilter:
    def test_returns_none_when_unmatchable(self):
        assert CFLMatcher().build_candidates(path_graph([9, 9]), path_graph([0, 0])) is None

    def test_candidates_at_most_ldf(self):
        q, g = paper_like_query(), paper_like_data()
        phi = CFLMatcher().build_candidates(q, g)
        assert phi is not None
        ldf = ldf_candidates(q, g)
        for u in q.vertices():
            assert set(phi[u]) <= set(ldf[u])

    def test_completeness_of_filter(self):
        q, g = paper_like_query(), paper_like_data()
        phi = CFLMatcher().build_candidates(q, g)
        assert phi is not None
        for mapping in VF2Matcher().find_all(q, g):
            for u, v in mapping.items():
                assert phi.contains(u, v)

    def test_bottom_up_refinement_prunes(self):
        # Chain query 0-1-2: the data has a dangling label-1 vertex whose
        # only neighborhood lacks label 2; top-down from the root keeps it
        # until refinement removes it.
        q = path_graph([0, 1, 2])
        g = Graph.from_edge_list(
            [0, 1, 2, 1],
            [(0, 1), (1, 2), (0, 3)],  # vertex 3: label 1, neighbor label 0
        )
        phi = CFLMatcher().build_candidates(q, g)
        assert phi is not None
        assert 3 not in phi[1]

    def test_root_selection_prefers_selective_high_degree(self):
        # Unique-label high-degree vertex should win |C|/deg.
        q = Graph.from_edge_list([0, 1, 1, 1], [(0, 1), (0, 2), (0, 3)])
        g = Graph.from_edge_list(
            [0, 1, 1, 1, 1], [(0, 1), (0, 2), (0, 3), (0, 4)]
        )
        seeds = ldf_candidates(q, g)
        assert CFLMatcher._select_root(q, [len(s) for s in seeds]) == 0

    @given(matching_instances(guaranteed_match=True))
    @settings(max_examples=30, deadline=None)
    def test_filter_never_empties_on_true_answers(self, instance):
        query, data = instance
        phi = CFLMatcher().build_candidates(query, data)
        assert phi is not None and phi.all_nonempty


class TestMatching:
    def test_square_query(self):
        assert CFLMatcher().exists(paper_like_query(), paper_like_data())

    def test_outcome_phases_populated(self):
        outcome = CFLMatcher().run(paper_like_query(), paper_like_data())
        assert outcome.found
        assert outcome.candidates is not None and outcome.order is not None

    def test_matching_order_without_prior_filter(self):
        """Ordering must work even when candidates come from elsewhere."""
        q, g = paper_like_query(), paper_like_data()
        matcher = CFLMatcher()
        phi = CandidateSets(ldf_candidates(q, g))
        order = matcher.matching_order(q, g, phi)
        assert sorted(order) == list(q.vertices())

    @given(matching_instances())
    @settings(max_examples=40, deadline=None)
    def test_count_matches_networkx(self, instance):
        query, data = instance
        assert CFLMatcher().count(query, data) == nx_monomorphism_count(query, data)


class TestCompletenessProperty:
    @given(matching_instances())
    @settings(max_examples=30, deadline=None)
    def test_phi_contains_all_embedding_images(self, instance):
        query, data = instance
        phi = CFLMatcher().build_candidates(query, data)
        embeddings = VF2Matcher().find_all(query, data)
        if embeddings:
            assert phi is not None
            for mapping in embeddings:
                for u, v in mapping.items():
                    assert phi.contains(u, v)
