"""Tests for repro.index.fingerprint (CT-Index's bit fingerprints)."""

from __future__ import annotations

import pytest

from repro.index import FingerprintHasher


class TestFeatureMask:
    def test_deterministic(self):
        hasher = FingerprintHasher()
        assert hasher.feature_mask("abc") == hasher.feature_mask("abc")

    def test_within_bit_width(self):
        hasher = FingerprintHasher(num_bits=64)
        for key in ("a", "b", ("tree", "x"), 42):
            mask = hasher.feature_mask(key)
            assert 0 < mask < (1 << 64)

    def test_num_hashes_sets_up_to_k_bits(self):
        hasher = FingerprintHasher(num_bits=4096, num_hashes=3)
        assert 1 <= bin(hasher.feature_mask("feature")).count("1") <= 3

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            FingerprintHasher(num_bits=0)
        with pytest.raises(ValueError):
            FingerprintHasher(num_hashes=0)


class TestFingerprint:
    def test_or_of_feature_masks(self):
        hasher = FingerprintHasher()
        combined = hasher.fingerprint(["x", "y"])
        assert combined == hasher.feature_mask("x") | hasher.feature_mask("y")

    def test_empty_feature_set(self):
        assert FingerprintHasher().fingerprint([]) == 0


class TestCovers:
    def test_subset_features_always_covered(self):
        hasher = FingerprintHasher()
        superset = hasher.fingerprint(["a", "b", "c"])
        subset = hasher.fingerprint(["a", "c"])
        assert hasher.covers(superset, subset)

    def test_missing_feature_usually_uncovered(self):
        hasher = FingerprintHasher(num_bits=4096)
        graph_fp = hasher.fingerprint(["a"])
        query_fp = hasher.fingerprint(["a", "definitely-new-feature"])
        assert not hasher.covers(graph_fp, query_fp)

    def test_zero_query_always_covered(self):
        hasher = FingerprintHasher()
        assert hasher.covers(0, 0)
        assert hasher.covers(hasher.fingerprint(["a"]), 0)

    def test_memory_is_bit_width(self):
        assert FingerprintHasher(num_bits=4096).memory_bytes() == 512
