"""End-to-end integration: the full workflow a downstream user runs.

generate → serialize → reload → index → query set → aggregate → report.
One test per stage boundary plus a full-loop test, catching any interface
drift between the layers that unit tests wouldn't see together.
"""

from __future__ import annotations

import pytest

from repro import aggregate_results, create_engine
from repro.bench.reporting import Table
from repro.graph import (
    generate_database,
    read_graph_database,
    write_graph_database,
)
from repro.workloads import generate_query_set, query_set_statistics


@pytest.fixture(scope="module")
def pipeline_artifacts(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("e2e")
    db = generate_database(25, 14, 3.0, 4, seed=77, name="e2e")
    path = tmp / "db.txt"
    write_graph_database(db, path)
    reloaded = read_graph_database(path)
    queries = generate_query_set(reloaded, num_edges=5, dense=False, size=8, seed=3)
    return db, reloaded, queries


def test_serialization_round_trip_preserves_query_answers(pipeline_artifacts):
    db, reloaded, queries = pipeline_artifacts
    original = create_engine(db, "CFQL")
    restored = create_engine(reloaded, "CFQL")
    for query in queries:
        assert original.query(query).answers == restored.query(query).answers


def test_query_set_statistics_shape(pipeline_artifacts):
    _, _, queries = pipeline_artifacts
    stats = query_set_statistics(queries)
    assert stats["|V| per q"] >= 5  # 5-edge sparse queries


@pytest.mark.parametrize("algorithm", ["CFQL", "Grapes", "vcGGSX", "TurboIso"])
def test_full_loop_to_report(pipeline_artifacts, algorithm):
    _, db, queries = pipeline_artifacts
    engine = create_engine(db, algorithm, index_max_path_edges=2)
    engine.build_index(time_limit=60.0)
    results = engine.query_many(list(queries.queries), time_limit=30.0)
    report = aggregate_results(results)
    assert report.num_timeouts == 0
    assert report.filtering_precision is not None
    assert 0.0 < report.filtering_precision <= 1.0
    # Every query was sampled from the database: at least one answer each.
    assert all(r.num_answers >= 1 for r in results)

    table = Table(f"{algorithm} on e2e", ["precision", "query (ms)"])
    table.add_row(
        algorithm,
        {
            "precision": report.filtering_precision,
            "query (ms)": report.avg_query_time * 1000,
        },
    )
    rendered = table.format_text()
    assert algorithm in rendered


def test_all_algorithms_agree_on_reloaded_db(pipeline_artifacts):
    _, db, queries = pipeline_artifacts
    from repro.core import ALGORITHM_NAMES

    engines = {}
    for name in ALGORITHM_NAMES:
        engine = create_engine(
            db, name, index_max_path_edges=2, index_max_tree_edges=2
        )
        engine.build_index(time_limit=120.0)
        engines[name] = engine
    for query in queries:
        answer_sets = {
            name: frozenset(engine.query(query).answers)
            for name, engine in engines.items()
        }
        assert len(set(answer_sets.values())) == 1, answer_sets
