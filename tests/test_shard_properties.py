"""Property tests for sharded execution.

The contract under test: partitioning a database across N shards and
merging the scatter-gathered per-shard results is *invisible* — answers,
candidates, and failure flags are bit-identical to the unsharded engine
for every N, serial or parallel, and a downed shard degrades the result
to a flagged partial that is never silently wrong (every reported answer
is a true answer; every missing answer lives on the downed shard).
"""

from __future__ import annotations

import time

import pytest

from repro.core import create_engine, create_pipeline
from repro.exec import create_executor, faults
from repro.graph import GraphDatabase, generate_database
from repro.graph.labeled_graph import Graph
from repro.shard import ShardedEngine
from repro.utils.errors import ConfigurationError
from repro.workloads.querysets import generate_query_set

ALGORITHM = "Grapes"


@pytest.fixture(scope="module")
def workload():
    db = generate_database(
        num_graphs=24, num_vertices=14, avg_degree=2.8, num_labels=4, seed=13,
        name="shard-prop",
    )
    queries = list(generate_query_set(db, 4, False, size=6, seed=14))
    queries += list(generate_query_set(db, 8, True, size=3, seed=15))
    return db, queries


@pytest.fixture(scope="module")
def reference(workload):
    db, queries = workload
    with create_engine(db, ALGORITHM) as engine:
        engine.build_index()
        results = engine.query_many(queries)
        return [
            (sorted(r.answers), sorted(r.candidates)) for r in results
        ]


def sharded(db, num_shards, executor_factory=None):
    return ShardedEngine(
        db,
        num_shards,
        lambda: create_pipeline(ALGORITHM),
        executor_factory=executor_factory,
    )


@pytest.mark.parametrize("num_shards", [1, 2, 4])
def test_bit_identical_serial(workload, reference, num_shards):
    db, queries = workload
    with sharded(db, num_shards) as engine:
        engine.build_index()
        results = engine.query_many(queries)
    for result, (answers, candidates) in zip(results, reference):
        assert result.failure is None
        assert not result.timed_out
        assert not result.metadata.get("partial")
        assert not result.metadata["degraded"]
        assert sorted(result.answers) == answers
        assert sorted(result.candidates) == candidates
        assert result.metadata["shards"]["count"] == num_shards
        assert result.metadata["shards"]["missing"] == []


def test_bit_identical_parallel_workers(workload, reference):
    db, queries = workload
    with sharded(
        db, 2, executor_factory=lambda i: create_executor("parallel", jobs=2)
    ) as engine:
        engine.build_index()
        results = engine.query_many(queries)
    for result, (answers, candidates) in zip(results, reference):
        assert result.failure is None
        assert sorted(result.answers) == answers
        assert sorted(result.candidates) == candidates


@pytest.mark.parametrize("num_shards", [2, 4])
def test_downed_shard_degrades_but_never_lies(workload, reference, num_shards):
    db, queries = workload
    down = num_shards - 1
    with sharded(db, num_shards) as engine:
        engine.build_index()
        downed_gids = set(engine._shards[down].engine.db.ids())
        faults.inject("shard.query", "error", match=f"shard-{down}")
        try:
            results = engine.query_many(queries)
        finally:
            faults.clear()
        for result, (answers, _) in zip(results, reference):
            assert result.failure is None  # partial, not failed
            assert result.metadata["partial"]
            assert result.metadata["degraded"]
            assert result.metadata["missing_shards"] == [down]
            got = set(result.answers)
            # Nothing invented...
            assert got <= set(answers)
            # ...and nothing lost except what the downed shard owned.
            assert set(answers) - got <= downed_gids
        # The fleet heals once the fault is gone: full answers again.
        healed = engine.query_many(queries)
        assert [sorted(r.answers) for r in healed] == [a for a, _ in reference]
        assert not any(r.metadata.get("partial") for r in healed)


def test_all_shards_down_is_failure_not_empty(workload):
    db, queries = workload
    with sharded(db, 2) as engine:
        engine.build_index()
        faults.inject("shard.query", "error", match="shard-")
        try:
            results = engine.query_many(queries[:2])
        finally:
            faults.clear()
    for result in results:
        assert result.failure is not None
        assert result.failure.stage == "route"
        assert "2 shards unavailable" in result.failure.message


def test_repeated_crashes_open_breaker(workload):
    db, queries = workload
    with ShardedEngine(
        db, 2, lambda: create_pipeline(ALGORITHM),
        breaker_threshold=2, breaker_cooldown=60.0,
    ) as engine:
        engine.build_index()
        faults.inject("shard.query", "error", match="shard-1")
        try:
            engine.query_many(queries[:1])
            engine.query_many(queries[:1])
        finally:
            faults.clear()
        # Two consecutive shard failures tripped the breaker; with the
        # fault cleared the shard is still skipped until the cooldown.
        assert engine._shards[1].breaker.snapshot()["state"] == "open"
        result = engine.query(queries[0])
        assert result.metadata["partial"]
        row = result.metadata["shards"]["per_shard"][1]
        assert row["down"] == "breaker_open"


# ---------------------------------------------------------------------------
# The process host
# ---------------------------------------------------------------------------


def process_sharded(db, num_shards, **kwargs):
    return ShardedEngine(
        db,
        num_shards,
        lambda: create_pipeline(ALGORITHM),
        shard_host="process",
        **kwargs,
    )


@pytest.mark.parametrize("num_shards", [1, 2, 4])
def test_process_host_bit_identical(workload, reference, num_shards):
    db, queries = workload
    with process_sharded(db, num_shards) as engine:
        engine.build_index()
        results = engine.query_many(queries)
        rows = engine.shard_stats()
    for result, (answers, candidates) in zip(results, reference):
        assert result.failure is None
        assert not result.metadata.get("partial")
        assert sorted(result.answers) == answers
        assert sorted(result.candidates) == candidates
    for row in rows:
        assert row["host"]["alive"]
        assert row["host"]["restarts"] == 0


def test_process_host_rejects_worker_pools(workload):
    db, _ = workload
    with pytest.raises(ConfigurationError, match="thread host"):
        process_sharded(
            db, 2,
            executor_factory=lambda i: create_executor("parallel", jobs=2),
        )


def test_process_host_requires_build_before_mutation(workload):
    db, _ = workload
    with process_sharded(db, 2) as engine:
        with pytest.raises(ConfigurationError, match="build"):
            engine.add_graph(db[db.ids()[0]])


def test_process_host_crash_respawns_bit_identical(
    workload, reference, tmp_path
):
    """A shard process dying mid-batch degrades that batch to a flagged
    partial (never silently wrong); the next dispatch respawns the worker
    and answers go back to bit-identical."""
    db, queries = workload
    latch = str(tmp_path / "crash.latch")
    faults.inject("shard.worker.query", "crash", match="shard-1", latch=latch)
    try:
        with process_sharded(db, 2) as engine:
            engine.build_index()
            downed_gids = set(engine._shards[1].engine.db.ids())
            results = engine.query_many(queries)
            for result, (answers, _) in zip(results, reference):
                assert result.failure is None
                assert result.metadata["partial"]
                assert result.metadata["missing_shards"] == [1]
                got = set(result.answers)
                assert got <= set(answers)
                assert set(answers) - got <= downed_gids
            time.sleep(0.3)  # clear the respawn backoff window
            healed = engine.query_many(queries)
            for result, (answers, candidates) in zip(healed, reference):
                assert not result.metadata.get("partial")
                assert sorted(result.answers) == answers
                assert sorted(result.candidates) == candidates
            assert engine.shard_stats()[1]["host"]["restarts"] >= 1
    finally:
        faults.clear()


def test_process_host_parity_after_mutations(workload):
    """Mutations route through the workers; answers afterwards match an
    unsharded engine built over the same mutated database."""
    db, queries = workload
    extra = generate_database(
        num_graphs=4, num_vertices=10, avg_degree=2.5, num_labels=4, seed=77,
    )
    mirror = GraphDatabase(name="mutated")
    for gid, graph in db.items():
        mirror.add_graph_with_id(gid, graph)
    with process_sharded(db, 2) as engine:
        engine.build_index()
        for _, graph in extra.items():
            gid = engine.add_graph(graph)
            mirror.add_graph_with_id(gid, graph)
        victim = sorted(engine.db.ids())[0]
        engine.remove_graph(victim)
        mirror.remove_graph(victim)
        results = engine.query_many(queries)
    with create_engine(mirror, ALGORITHM) as ref:
        ref.build_index()
        expected = ref.query_many(queries)
    for result, want in zip(results, expected):
        assert sorted(result.answers) == sorted(want.answers)
        assert sorted(result.candidates) == sorted(want.candidates)


# ---------------------------------------------------------------------------
# Label-summary pruning
# ---------------------------------------------------------------------------


def skewed_workload():
    """Even gids carry labels {0, 1}; odd gids labels {2, 3}.  Modulo
    placement over two shards puts each label family on its own shard,
    so each query below is prunable on exactly one shard."""
    db = GraphDatabase(name="skewed")
    for gid in range(8):
        base = 0 if gid % 2 == 0 else 2
        db.add_graph_with_id(gid, Graph.from_edge_list(
            [base, base + 1, base, base + 1],
            [(0, 1), (1, 2), (2, 3), (3, 0)],
            name=f"g{gid}",
        ))
    queries = [
        Graph.from_edge_list([0, 1], [(0, 1)], name="q-even"),
        Graph.from_edge_list([2, 3], [(0, 1)], name="q-odd"),
    ]
    return db, queries


@pytest.mark.parametrize("shard_host", ["thread", "process"])
def test_pruning_bit_identical_with_counters(shard_host):
    db, queries = skewed_workload()
    with create_engine(db, ALGORITHM) as ref:
        ref.build_index()
        expected = ref.query_many(queries)
    with ShardedEngine(
        db, 2, lambda: create_pipeline(ALGORITHM),
        partitioner="modulo", shard_host=shard_host,
    ) as engine:
        engine.build_index()
        results = engine.query_many(queries)
        stats = engine.prune_stats()
    for result, want in zip(results, expected):
        assert not result.metadata.get("partial")
        assert sorted(result.answers) == sorted(want.answers)
        assert sorted(result.candidates) == sorted(want.candidates)
        pruned_rows = [
            row for row in result.metadata["shards"]["per_shard"]
            if row.get("pruned")
        ]
        assert len(pruned_rows) == 1
    assert stats["enabled"]
    assert stats["shard_queries"] == 4
    assert stats["shards_pruned"] == 2
    assert stats["prune_rate"] == pytest.approx(0.5)


def test_pruning_disabled_same_answers():
    db, queries = skewed_workload()
    with ShardedEngine(
        db, 2, lambda: create_pipeline(ALGORITHM),
        partitioner="modulo", pruning=False,
    ) as engine:
        engine.build_index()
        on_rows = engine.query_many(queries)
        assert engine.prune_stats()["shards_pruned"] == 0
        assert not engine.prune_stats()["enabled"]
    with ShardedEngine(
        db, 2, lambda: create_pipeline(ALGORITHM), partitioner="modulo",
    ) as engine:
        engine.build_index()
        off_rows = engine.query_many(queries)
    for a, b in zip(on_rows, off_rows):
        assert sorted(a.answers) == sorted(b.answers)
        assert sorted(a.candidates) == sorted(b.candidates)


@pytest.mark.parametrize("shard_host", ["thread", "process"])
def test_pruning_tracks_summary_changing_mutations(shard_host):
    """A mutation that changes a shard's label population immediately
    changes what the router may prune — and answers stay bit-identical
    to a fresh unsharded engine at every step."""
    db, queries = skewed_workload()
    q_odd = queries[1]
    with ShardedEngine(
        db, 2, lambda: create_pipeline(ALGORITHM),
        partitioner="modulo", shard_host=shard_host,
    ) as engine:
        engine.build_index()
        before = engine.query(q_odd)
        assert any(
            row.get("pruned")
            for row in before.metadata["shards"]["per_shard"]
        )
        # next_id = 8 -> modulo places the new graph on shard 0, which
        # until now held no {2, 3}-labeled graph.
        odd_graph = Graph.from_edge_list(
            [2, 3, 2, 3], [(0, 1), (1, 2), (2, 3), (3, 0)], name="late-odd",
        )
        gid = engine.add_graph(odd_graph)
        assert engine.owner_of(gid) == 0
        after_add = engine.query(q_odd)
        assert gid in after_add.answers
        assert not any(
            row.get("pruned")
            for row in after_add.metadata["shards"]["per_shard"]
        )
        engine.remove_graph(gid)
        after_remove = engine.query(q_odd)
        assert sorted(after_remove.answers) == sorted(before.answers)
        assert any(
            row.get("pruned")
            for row in after_remove.metadata["shards"]["per_shard"]
        )


def test_pruned_shard_down_is_not_partial():
    """A query the summary rules out on the downed shard stays complete:
    the shard's contribution is provably empty whether it is up or not."""
    db, queries = skewed_workload()
    q_even, q_odd = queries
    with ShardedEngine(
        db, 2, lambda: create_pipeline(ALGORITHM), partitioner="modulo",
    ) as engine:
        engine.build_index()
        faults.inject("shard.query", "error", match="shard-1")
        try:
            even_result, odd_result = engine.query_many([q_even, q_odd])
        finally:
            faults.clear()
        # q_odd needed shard 1: partial.  q_even was pruned there: whole.
        assert odd_result.metadata.get("partial")
        assert not even_result.metadata.get("partial")
        assert sorted(even_result.answers) == [0, 2, 4, 6]
