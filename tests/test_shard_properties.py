"""Property tests for sharded execution.

The contract under test: partitioning a database across N shards and
merging the scatter-gathered per-shard results is *invisible* — answers,
candidates, and failure flags are bit-identical to the unsharded engine
for every N, serial or parallel, and a downed shard degrades the result
to a flagged partial that is never silently wrong (every reported answer
is a true answer; every missing answer lives on the downed shard).
"""

from __future__ import annotations

import pytest

from repro.core import create_engine, create_pipeline
from repro.exec import create_executor, faults
from repro.graph import generate_database
from repro.shard import ShardedEngine
from repro.workloads.querysets import generate_query_set

ALGORITHM = "Grapes"


@pytest.fixture(scope="module")
def workload():
    db = generate_database(
        num_graphs=24, num_vertices=14, avg_degree=2.8, num_labels=4, seed=13,
        name="shard-prop",
    )
    queries = list(generate_query_set(db, 4, False, size=6, seed=14))
    queries += list(generate_query_set(db, 8, True, size=3, seed=15))
    return db, queries


@pytest.fixture(scope="module")
def reference(workload):
    db, queries = workload
    with create_engine(db, ALGORITHM) as engine:
        engine.build_index()
        results = engine.query_many(queries)
        return [
            (sorted(r.answers), sorted(r.candidates)) for r in results
        ]


def sharded(db, num_shards, executor_factory=None):
    return ShardedEngine(
        db,
        num_shards,
        lambda: create_pipeline(ALGORITHM),
        executor_factory=executor_factory,
    )


@pytest.mark.parametrize("num_shards", [1, 2, 4])
def test_bit_identical_serial(workload, reference, num_shards):
    db, queries = workload
    with sharded(db, num_shards) as engine:
        engine.build_index()
        results = engine.query_many(queries)
    for result, (answers, candidates) in zip(results, reference):
        assert result.failure is None
        assert not result.timed_out
        assert not result.metadata.get("partial")
        assert not result.metadata["degraded"]
        assert sorted(result.answers) == answers
        assert sorted(result.candidates) == candidates
        assert result.metadata["shards"]["count"] == num_shards
        assert result.metadata["shards"]["missing"] == []


def test_bit_identical_parallel_workers(workload, reference):
    db, queries = workload
    with sharded(
        db, 2, executor_factory=lambda i: create_executor("parallel", jobs=2)
    ) as engine:
        engine.build_index()
        results = engine.query_many(queries)
    for result, (answers, candidates) in zip(results, reference):
        assert result.failure is None
        assert sorted(result.answers) == answers
        assert sorted(result.candidates) == candidates


@pytest.mark.parametrize("num_shards", [2, 4])
def test_downed_shard_degrades_but_never_lies(workload, reference, num_shards):
    db, queries = workload
    down = num_shards - 1
    with sharded(db, num_shards) as engine:
        engine.build_index()
        downed_gids = set(engine._shards[down].engine.db.ids())
        faults.inject("shard.query", "error", match=f"shard-{down}")
        try:
            results = engine.query_many(queries)
        finally:
            faults.clear()
        for result, (answers, _) in zip(results, reference):
            assert result.failure is None  # partial, not failed
            assert result.metadata["partial"]
            assert result.metadata["degraded"]
            assert result.metadata["missing_shards"] == [down]
            got = set(result.answers)
            # Nothing invented...
            assert got <= set(answers)
            # ...and nothing lost except what the downed shard owned.
            assert set(answers) - got <= downed_gids
        # The fleet heals once the fault is gone: full answers again.
        healed = engine.query_many(queries)
        assert [sorted(r.answers) for r in healed] == [a for a, _ in reference]
        assert not any(r.metadata.get("partial") for r in healed)


def test_all_shards_down_is_failure_not_empty(workload):
    db, queries = workload
    with sharded(db, 2) as engine:
        engine.build_index()
        faults.inject("shard.query", "error", match="shard-")
        try:
            results = engine.query_many(queries[:2])
        finally:
            faults.clear()
    for result in results:
        assert result.failure is not None
        assert result.failure.stage == "route"
        assert "2 shards unavailable" in result.failure.message


def test_repeated_crashes_open_breaker(workload):
    db, queries = workload
    with ShardedEngine(
        db, 2, lambda: create_pipeline(ALGORITHM),
        breaker_threshold=2, breaker_cooldown=60.0,
    ) as engine:
        engine.build_index()
        faults.inject("shard.query", "error", match="shard-1")
        try:
            engine.query_many(queries[:1])
            engine.query_many(queries[:1])
        finally:
            faults.clear()
        # Two consecutive shard failures tripped the breaker; with the
        # fault cleared the shard is still skipped until the cooldown.
        assert engine._shards[1].breaker.snapshot()["state"] == "open"
        result = engine.query(queries[0])
        assert result.metadata["partial"]
        row = result.metadata["shards"]["per_shard"][1]
        assert row["down"] == "breaker_open"
