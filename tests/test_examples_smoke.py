"""Smoke test: the quickstart example must run as documented."""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

EXAMPLES = Path(__file__).parent.parent / "examples"


def test_quickstart_runs(capsys):
    runpy.run_path(str(EXAMPLES / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "answer set A(q)" in out
    assert "filtering precision" in out


def test_examples_are_importable_scripts():
    """Every example parses and has a main() guard."""
    for script in sorted(EXAMPLES.glob("*.py")):
        source = script.read_text()
        assert '__name__ == "__main__"' in source, script.name
        compile(source, str(script), "exec")
