"""Property tests: serialization round-trips arbitrary databases."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    GraphDatabase,
    parse_graph_database,
    serialize_graph_database,
)

from strategies import labeled_graphs


@given(
    graphs=st.lists(labeled_graphs(max_vertices=8, max_labels=4), min_size=0, max_size=5)
)
@settings(max_examples=40, deadline=None)
def test_round_trip_preserves_structure(graphs):
    db = GraphDatabase()
    db.add_graphs(list(graphs))
    restored = parse_graph_database(serialize_graph_database(db))
    assert len(restored) == len(db)
    for original_gid, restored_gid in zip(db.ids(), restored.ids()):
        original, copy = db[original_gid], restored[restored_gid]
        assert copy.labels == original.labels
        assert list(copy.edges()) == list(original.edges())


@given(
    graphs=st.lists(labeled_graphs(max_vertices=6, max_labels=3), min_size=1, max_size=4)
)
@settings(max_examples=30, deadline=None)
def test_serialization_is_deterministic(graphs):
    db = GraphDatabase()
    db.add_graphs(list(graphs))
    assert serialize_graph_database(db) == serialize_graph_database(db)


def test_round_trip_renumbers_after_removal():
    """Known semantics: serialization compacts graph ids (the file format
    has no id column), so ids are renumbered densely on reload."""
    from helpers import triangle

    db = GraphDatabase()
    db.add_graphs([triangle(0), triangle(1), triangle(2)])
    db.remove_graph(1)
    restored = parse_graph_database(serialize_graph_database(db))
    assert restored.ids() == [0, 1]
    assert restored[1].label(0) == 2
