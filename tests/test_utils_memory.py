"""Tests for repro.utils.memory (deep size estimation)."""

from __future__ import annotations

import sys

from repro.utils.memory import deep_size_of, format_bytes


class TestDeepSizeOf:
    def test_scalar(self):
        assert deep_size_of(42) == sys.getsizeof(42)

    def test_list_counts_elements(self):
        payload = ["x" * 100, "y" * 100]
        assert deep_size_of(payload) > sys.getsizeof(payload) + 200

    def test_shared_objects_counted_once(self):
        shared = "z" * 1000
        single = deep_size_of([shared])
        double = deep_size_of([shared, shared])
        # The second reference adds only a pointer, not another kilobyte.
        assert double - single < 100

    def test_dict_counts_keys_and_values(self):
        d = {"k" * 50: "v" * 50}
        assert deep_size_of(d) > sys.getsizeof(d) + 100

    def test_nested_containers(self):
        nested = {"a": [{"b": ("c" * 200,)}]}
        assert deep_size_of(nested) > 200

    def test_instance_with_dict(self):
        class Holder:
            def __init__(self):
                self.payload = "p" * 500

        assert deep_size_of(Holder()) > 500

    def test_instance_with_slots(self):
        class Slotted:
            __slots__ = ("payload",)

            def __init__(self):
                self.payload = "p" * 500

        assert deep_size_of(Slotted()) > 500

    def test_cyclic_structure_terminates(self):
        a: list = []
        a.append(a)
        assert deep_size_of(a) >= sys.getsizeof(a)


class TestFormatBytes:
    def test_large_values_in_mb(self):
        assert format_bytes(150 * 1024 * 1024) == "150 MB"

    def test_medium_values_one_decimal(self):
        assert format_bytes(int(1.5 * 1024 * 1024)) == "1.5 MB"

    def test_small_values_four_decimals(self):
        assert format_bytes(1024) == "0.0010 MB"
