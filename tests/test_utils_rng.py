"""Tests for repro.utils.rng (seed handling)."""

from __future__ import annotations

import random

from repro.utils.rng import make_rng, spawn_rng


class TestMakeRng:
    def test_int_seed_is_deterministic(self):
        assert make_rng(7).random() == make_rng(7).random()

    def test_different_seeds_differ(self):
        assert make_rng(1).random() != make_rng(2).random()

    def test_existing_generator_passed_through(self):
        rng = random.Random(3)
        assert make_rng(rng) is rng

    def test_none_gives_fresh_generator(self):
        assert isinstance(make_rng(None), random.Random)


class TestSpawnRng:
    def test_children_are_deterministic(self):
        a = spawn_rng(make_rng(5)).random()
        b = spawn_rng(make_rng(5)).random()
        assert a == b

    def test_children_are_independent_streams(self):
        parent = make_rng(5)
        first = spawn_rng(parent)
        second = spawn_rng(parent)
        assert first.random() != second.random()

    def test_child_differs_from_parent(self):
        parent = make_rng(5)
        child = spawn_rng(make_rng(5))
        assert parent.random() != child.random()
