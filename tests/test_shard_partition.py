"""Tests for repro.shard.partition (deterministic graph placement)."""

from __future__ import annotations

import pytest

from repro.shard import (
    HashPartitioner,
    ModuloPartitioner,
    PARTITIONER_NAMES,
    create_partitioner,
)


class TestHashPartitioner:
    def test_deterministic(self):
        p = HashPartitioner()
        for gid in range(200):
            assert p.owner(gid, 4) == p.owner(gid, 4)

    def test_owner_in_range(self):
        p = HashPartitioner()
        for num_shards in (1, 2, 3, 4, 7):
            for gid in range(100):
                assert 0 <= p.owner(gid, num_shards) < num_shards

    def test_independent_instances_agree(self):
        # Placement must be a pure function of (gid, num_shards): a
        # recovering process with a fresh partitioner computes the same
        # owners as the one that wrote the shards.
        a, b = HashPartitioner(), HashPartitioner()
        assert [a.owner(g, 5) for g in range(300)] == [
            b.owner(g, 5) for g in range(300)
        ]

    def test_sequential_ids_spread(self):
        # The splitmix64 mix must break up dense sequential ids; with 256
        # ids over 4 shards every shard should see a reasonable share.
        p = HashPartitioner()
        counts = [0, 0, 0, 0]
        for gid in range(256):
            counts[p.owner(gid, 4)] += 1
        assert min(counts) > 256 // 4 // 2

    def test_single_shard_owns_everything(self):
        p = HashPartitioner()
        assert all(p.owner(g, 1) == 0 for g in range(50))

    @pytest.mark.parametrize("bad_shards", [0, -1])
    def test_bad_shard_count(self, bad_shards):
        with pytest.raises(ValueError):
            HashPartitioner().owner(3, bad_shards)

    def test_negative_gid(self):
        with pytest.raises(ValueError):
            HashPartitioner().owner(-1, 2)


class TestModuloPartitioner:
    def test_places_by_modulus(self):
        p = ModuloPartitioner()
        assert [p.owner(g, 3) for g in range(7)] == [0, 1, 2, 0, 1, 2, 0]

    def test_validation(self):
        with pytest.raises(ValueError):
            ModuloPartitioner().owner(0, 0)
        with pytest.raises(ValueError):
            ModuloPartitioner().owner(-3, 2)


class TestRegistry:
    def test_names(self):
        assert set(PARTITIONER_NAMES) == {"hash", "modulo"}

    @pytest.mark.parametrize("name", sorted(PARTITIONER_NAMES))
    def test_create(self, name):
        partitioner = create_partitioner(name)
        assert partitioner.name == name

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown partitioner"):
            create_partitioner("range")
