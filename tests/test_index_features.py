"""Tests for repro.index.features (path/tree/cycle enumeration)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.graph import Graph
from repro.index import (
    canonical_cycle,
    canonical_path,
    canonical_tree,
    enumerate_cycle_features,
    enumerate_path_features,
    enumerate_tree_features,
)
from repro.utils.errors import MemoryLimitExceeded, TimeLimitExceeded
from repro.utils.timing import Deadline

from helpers import path_graph, triangle
from strategies import labeled_graphs


class TestCanonicalForms:
    def test_path_direction_independent(self):
        assert canonical_path((1, 2, 3)) == canonical_path((3, 2, 1))

    def test_path_palindrome_unchanged(self):
        assert canonical_path((1, 2, 1)) == (1, 2, 1)

    def test_cycle_rotation_and_reflection_independent(self):
        base = (1, 2, 3, 4)
        for rotated in [(2, 3, 4, 1), (4, 3, 2, 1), (3, 2, 1, 4)]:
            assert canonical_cycle(base) == canonical_cycle(rotated)

    def test_distinct_cycles_differ(self):
        assert canonical_cycle((1, 2, 1, 3)) != canonical_cycle((1, 1, 2, 3))

    def test_tree_canonical_is_isomorphism_invariant(self):
        # The same labeled path rooted differently must encode equally.
        g1 = path_graph([5, 6, 7])
        g2 = path_graph([7, 6, 5])
        e1 = canonical_tree(g1, frozenset({(0, 1), (1, 2)}))
        e2 = canonical_tree(g2, frozenset({(0, 1), (1, 2)}))
        assert e1 == e2

    def test_tree_canonical_distinguishes_shapes(self):
        path = path_graph([0, 0, 0, 0])
        star = Graph.from_edge_list([0, 0, 0, 0], [(0, 1), (0, 2), (0, 3)])
        assert canonical_tree(
            path, frozenset(path.edges())
        ) != canonical_tree(star, frozenset(star.edges()))


class TestPathEnumeration:
    def test_single_edge_graph(self):
        counts, _ = enumerate_path_features(path_graph([1, 2]), 2)
        assert counts[(1,)] == 1
        assert counts[(2,)] == 1
        assert counts[(1, 2)] == 2  # both directions of one instance

    def test_triangle_paths(self):
        counts, _ = enumerate_path_features(triangle(7), 2)
        assert counts[(7,)] == 3
        assert counts[(7, 7)] == 6      # 3 edges × 2 directions
        assert counts[(7, 7, 7)] == 6   # 3 paths of 2 edges × 2 directions

    def test_max_edges_respected(self):
        counts, _ = enumerate_path_features(path_graph([0, 0, 0, 0]), 1)
        assert all(len(seq) <= 2 for seq in counts)

    def test_locations_are_start_vertices(self):
        _, locations = enumerate_path_features(
            path_graph([1, 2]), 1, with_locations=True
        )
        assert locations is not None
        assert locations[(1, 2)] == {0, 1}
        assert locations[(1,)] == {0}

    def test_locations_disabled_by_default(self):
        _, locations = enumerate_path_features(triangle(), 2)
        assert locations is None

    def test_feature_budget_raises_oom(self):
        g = path_graph(list(range(10)))  # every path sequence is distinct
        with pytest.raises(MemoryLimitExceeded):
            enumerate_path_features(g, 4, max_features=3)

    def test_deadline_raises_oot(self):
        g = Graph.from_edge_list(
            [0] * 12, [(u, v) for u in range(12) for v in range(u + 1, 12)]
        )
        with pytest.raises(TimeLimitExceeded):
            enumerate_path_features(g, 4, deadline=Deadline(0.0))

    @given(labeled_graphs(max_vertices=7, max_labels=2))
    @settings(max_examples=30, deadline=None)
    def test_zero_length_counts_equal_vertices(self, graph):
        counts, _ = enumerate_path_features(graph, 1)
        singles = sum(c for seq, c in counts.items() if len(seq) == 1)
        assert singles == graph.num_vertices

    @given(labeled_graphs(max_vertices=7, max_labels=2))
    @settings(max_examples=30, deadline=None)
    def test_one_edge_counts_equal_twice_edges(self, graph):
        counts, _ = enumerate_path_features(graph, 1)
        pairs = sum(c for seq, c in counts.items() if len(seq) == 2)
        assert pairs == 2 * graph.num_edges


class TestTreeEnumeration:
    def test_single_edge_trees(self):
        counts = enumerate_tree_features(path_graph([1, 2]), 2)
        assert sum(counts.values()) == 1

    def test_triangle_trees(self):
        # Subtrees of a triangle with ≤2 edges: 3 single edges + 3 paths.
        counts = enumerate_tree_features(triangle(0), 2)
        assert sum(counts.values()) == 6

    def test_star_counted_once_despite_growth_orders(self):
        star = Graph.from_edge_list([0, 1, 1, 1], [(0, 1), (0, 2), (0, 3)])
        counts = enumerate_tree_features(star, 3)
        # 3 edges + 3 two-edge paths + 1 full star.
        assert sum(counts.values()) == 7

    def test_cycle_edge_sets_excluded(self):
        counts = enumerate_tree_features(triangle(0), 3)
        # No 3-edge feature exists (the only 3-edge subset is the cycle).
        assert all(
            not key.count("(") > 3 for key in counts
        )
        assert sum(counts.values()) == 6

    def test_feature_budget_raises_oom(self):
        g = path_graph(list(range(12)))
        with pytest.raises(MemoryLimitExceeded):
            enumerate_tree_features(g, 3, max_features=2)


class TestCycleEnumeration:
    def test_triangle(self):
        counts = enumerate_cycle_features(triangle(4), 3)
        assert counts == {(4, 4, 4): 1}

    def test_no_cycles_in_tree(self):
        assert enumerate_cycle_features(path_graph([0, 1, 2]), 6) == {}

    def test_max_length_respected(self):
        square = Graph.from_edge_list([0] * 4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        assert enumerate_cycle_features(square, 3) == {}
        assert sum(enumerate_cycle_features(square, 4).values()) == 1
