"""Tests for repro.index.mining (TreePi-style frequent-tree index)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import GraphDatabase, generate_database, random_walk_query
from repro.index import (
    MiningTreeIndex,
    canonical_tree_from_adjacency,
    parse_tree_encoding,
    tree_parent_features,
)
from repro.matching import VF2Matcher
from repro.utils.errors import GraphFormatError

from helpers import path_graph, star_graph, triangle


class TestEncodingRoundTrip:
    def test_parse_inverts_canonicalisation(self):
        adjacency = {0: {1}, 1: {0, 2, 3}, 2: {1}, 3: {1}}
        labels = {0: 4, 1: 5, 2: 6, 3: 4}
        encoding = canonical_tree_from_adjacency(adjacency, labels)
        parsed_adj, parsed_labels = parse_tree_encoding(encoding)
        assert canonical_tree_from_adjacency(parsed_adj, parsed_labels) == encoding

    def test_malformed_encodings_rejected(self):
        for bad in ("", "5(", "5())", "5()x", "()"):
            with pytest.raises((GraphFormatError, ValueError)):
                parse_tree_encoding(bad)

    @given(st.integers(0, 2**31))
    @settings(max_examples=30, deadline=None)
    def test_round_trip_random_trees(self, seed):
        from repro.graph import generate_graph
        from repro.index.features import canonical_tree

        tree = generate_graph(7, 0.1, 3, seed=seed)  # floored to spanning tree
        encoding = canonical_tree(tree, frozenset(tree.edges()))
        adj, labels = parse_tree_encoding(encoding)
        assert canonical_tree_from_adjacency(adj, labels) == encoding
        assert len(labels) == tree.num_vertices


class TestParentFeatures:
    def test_path_parents(self):
        # Path a-b-c: deleting either leaf gives a 1-edge tree.
        tree = path_graph([1, 2, 3])
        from repro.index.features import canonical_tree

        encoding = canonical_tree(tree, frozenset(tree.edges()))
        parents = tree_parent_features(encoding)
        assert len(parents) == 2

    def test_single_edge_has_no_parents(self):
        from repro.index.features import canonical_tree

        edge = path_graph([1, 2])
        encoding = canonical_tree(edge, frozenset(edge.edges()))
        assert tree_parent_features(encoding) == set()

    def test_star_parents_deduplicated(self):
        # A star with identical leaves has one distinct parent feature.
        star = star_graph(0, [1, 1, 1])
        from repro.index.features import canonical_tree

        encoding = canonical_tree(star, frozenset(star.edges()))
        assert len(tree_parent_features(encoding)) == 1


class TestMining:
    def test_support_threshold(self):
        db = GraphDatabase()
        for _ in range(9):
            db.add_graph(path_graph([0, 0]))
        db.add_graph(path_graph([7, 7]))  # the rare label pair
        index = MiningTreeIndex(max_tree_edges=2, min_support=0.5)
        index.build(db)
        # Only the frequent 0-0 edge survives mining.
        assert index.num_indexed_features == 1

    def test_discriminative_threshold_prunes_redundant_children(self):
        # Every graph is the same path, so every larger feature has
        # exactly the postings of its parents → not discriminative.
        db = GraphDatabase()
        for _ in range(5):
            db.add_graph(path_graph([0, 1, 2, 3]))
        index = MiningTreeIndex(
            max_tree_edges=3, min_support=0.5, discriminative_ratio=1.5
        )
        index.build(db)
        assert index.selectivity_profile().get(2, 0) == 0
        assert index.selectivity_profile().get(3, 0) == 0

    def test_ratio_one_keeps_all_frequent(self):
        db = GraphDatabase()
        for _ in range(5):
            db.add_graph(path_graph([0, 1, 2, 3]))
        index = MiningTreeIndex(
            max_tree_edges=3, min_support=0.5, discriminative_ratio=1.0
        )
        index.build(db)
        assert index.selectivity_profile().get(2, 0) > 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MiningTreeIndex(min_support=1.5)
        with pytest.raises(ValueError):
            MiningTreeIndex(discriminative_ratio=0.5)


class TestFilteringSoundness:
    @pytest.fixture(scope="class")
    def workload(self):
        db = generate_database(18, 12, 2.6, 3, seed=31)
        index = MiningTreeIndex(max_tree_edges=3, min_support=0.15)
        index.build(db)
        return db, index

    def test_candidates_cover_answers(self, workload):
        db, index = workload
        import random

        rng = random.Random(5)
        vf2 = VF2Matcher()
        checked = 0
        for _ in range(25):
            query = random_walk_query(
                db[rng.choice(db.ids())], 4, seed=rng.getrandbits(32)
            )
            if query is None:
                continue
            answers = {gid for gid, g in db.items() if vf2.exists(query, g)}
            assert answers <= index.candidates(query)
            checked += 1
        assert checked > 10

    def test_unknown_features_do_not_filter(self, workload):
        """A query whose features are all infrequent keeps every graph —
        the mining-based filter is weak there, by design."""
        db, index = workload
        query = path_graph([99, 98])
        assert index.candidates(query) == set(db.ids())


class TestMaintenance:
    def test_add_remove_remines(self):
        db = GraphDatabase()
        ids = [db.add_graph(path_graph([0, 0])) for _ in range(4)]
        index = MiningTreeIndex(max_tree_edges=2, min_support=0.5)
        index.build(db)
        assert index.num_indexed_features == 1
        index.add_graph(99, triangle(7))
        assert index.indexed_ids == set(ids) | {99}
        index.remove_graph(99)
        assert index.indexed_ids == set(ids)

    def test_duplicate_rejected(self):
        index = MiningTreeIndex()
        index.add_graph(0, triangle())
        with pytest.raises(ValueError):
            index.add_graph(0, triangle())

    def test_remove_unknown_raises(self):
        with pytest.raises(KeyError):
            MiningTreeIndex().remove_graph(3)


class TestDeadlines:
    def test_indexing_deadline_raises_oot(self):
        from repro.graph import Graph
        from repro.utils.errors import TimeLimitExceeded
        from repro.utils.timing import Deadline

        import pytest as _pytest

        dense = Graph.from_edge_list(
            [0] * 12, [(u, v) for u in range(12) for v in range(u + 1, 12)]
        )
        with _pytest.raises(TimeLimitExceeded):
            MiningTreeIndex(max_tree_edges=3).add_graph(0, dense, deadline=Deadline(0.0))
