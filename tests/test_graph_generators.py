"""Tests for repro.graph.generators (data + query generation)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    bfs_query,
    generate_database,
    generate_graph,
    is_connected,
    random_walk_query,
    subgraph_from_edges,
)
from repro.matching import VF2Matcher

from helpers import nx_monomorphism_count


class TestGenerateGraph:
    def test_target_edge_count(self):
        g = generate_graph(20, 4.0, 3, seed=1)
        assert g.num_edges == round(20 * 4.0 / 2)

    def test_connected(self):
        for seed in range(5):
            assert is_connected(generate_graph(15, 2.0, 2, seed=seed))

    def test_deterministic_under_seed(self):
        a = generate_graph(12, 3.0, 4, seed=99)
        b = generate_graph(12, 3.0, 4, seed=99)
        assert a.labels == b.labels
        assert list(a.edges()) == list(b.edges())

    def test_label_range(self):
        g = generate_graph(30, 2.0, 5, seed=2)
        assert all(0 <= lab < 5 for lab in g.labels)

    def test_single_vertex(self):
        g = generate_graph(1, 0.0, 2, seed=3)
        assert g.num_vertices == 1 and g.num_edges == 0

    def test_dense_request_capped_at_clique(self):
        g = generate_graph(6, 100.0, 2, seed=4)
        assert g.num_edges == 15  # 6 choose 2

    def test_sparse_request_floored_at_tree(self):
        g = generate_graph(10, 0.1, 2, seed=5)
        assert g.num_edges == 9
        assert is_connected(g)

    def test_label_weights_skew_distribution(self):
        weights = [1000.0] + [1.0] * 9
        g = generate_graph(200, 2.0, 10, seed=6, label_weights=weights)
        dominant = sum(1 for lab in g.labels if lab == 0)
        assert dominant > 150

    def test_label_weights_length_checked(self):
        with pytest.raises(ValueError, match="one weight per label"):
            generate_graph(5, 2.0, 3, label_weights=[1.0, 1.0])

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            generate_graph(0, 2.0, 2)
        with pytest.raises(ValueError):
            generate_graph(5, 2.0, 0)

    @given(
        n=st.integers(2, 25),
        degree=st.floats(1.0, 6.0),
        labels=st.integers(1, 5),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=50)
    def test_always_connected_and_sized(self, n, degree, labels, seed):
        g = generate_graph(n, degree, labels, seed=seed)
        assert g.num_vertices == n
        assert is_connected(g)
        expected = min(max(round(n * degree / 2), n - 1), n * (n - 1) // 2)
        assert g.num_edges == expected


class TestAttachmentModels:
    def test_invalid_model_rejected(self):
        with pytest.raises(ValueError, match="attachment"):
            generate_graph(10, 2.0, 2, attachment="zipfian")

    def test_preferential_connected_and_sized(self):
        for seed in range(5):
            g = generate_graph(50, 6.0, 3, seed=seed, attachment="preferential")
            assert is_connected(g)
            assert g.num_edges == 150

    def test_preferential_creates_hubs(self):
        """The max degree under preferential attachment clearly exceeds
        the uniform model's (hub formation)."""
        uniform_max = max(
            generate_graph(200, 6.0, 1, seed=s, attachment="uniform").max_degree
            for s in range(3)
        )
        preferential_max = max(
            generate_graph(200, 6.0, 1, seed=s, attachment="preferential").max_degree
            for s in range(3)
        )
        assert preferential_max > 1.5 * uniform_max

    def test_preferential_deterministic(self):
        a = generate_graph(30, 4.0, 2, seed=5, attachment="preferential")
        b = generate_graph(30, 4.0, 2, seed=5, attachment="preferential")
        assert list(a.edges()) == list(b.edges())


class TestGenerateDatabase:
    def test_size_and_names(self):
        db = generate_database(7, 10, 2.0, 3, seed=1, name="syn")
        assert len(db) == 7
        assert db.name == "syn"
        assert db[0].name == "g0"

    def test_graphs_differ_across_database(self):
        db = generate_database(5, 10, 2.0, 3, seed=1)
        edge_sets = {tuple(db[g].edges()) for g in db.ids()}
        assert len(edge_sets) > 1

    def test_deterministic(self):
        a = generate_database(4, 8, 2.0, 2, seed=5)
        b = generate_database(4, 8, 2.0, 2, seed=5)
        assert all(a[i].labels == b[i].labels for i in a.ids())


class TestSubgraphFromEdges:
    def test_relabeling_preserves_labels(self):
        g = generate_graph(10, 2.5, 4, seed=8)
        edges = list(g.edges())[:3]
        q = subgraph_from_edges(g, edges)
        assert q.num_edges == 3
        original_labels = sorted(
            lab for e in edges for lab in (g.label(e[0]), g.label(e[1]))
        )
        copied_labels = sorted(
            lab for u, v in q.edges() for lab in (q.label(u), q.label(v))
        )
        assert sorted(copied_labels) == sorted(original_labels)


class TestQueryGenerators:
    @pytest.mark.parametrize("generator", [random_walk_query, bfs_query])
    def test_exact_edge_count_and_connected(self, generator):
        g = generate_graph(30, 3.0, 3, seed=11)
        for seed in range(10):
            q = generator(g, 6, seed=seed)
            assert q is not None
            assert q.num_edges == 6
            assert is_connected(q)

    @pytest.mark.parametrize("generator", [random_walk_query, bfs_query])
    def test_query_is_contained_in_source(self, generator):
        g = generate_graph(25, 3.0, 3, seed=12)
        vf2 = VF2Matcher()
        for seed in range(8):
            q = generator(g, 5, seed=seed)
            assert q is not None
            assert vf2.exists(q, g)
            assert nx_monomorphism_count(q, g) > 0

    def test_impossible_request_returns_none(self):
        g = generate_graph(4, 1.5, 2, seed=13)  # 3 edges only
        assert random_walk_query(g, 50, seed=0) is None
        assert bfs_query(g, 50, seed=0) is None

    def test_zero_edges_rejected(self):
        g = generate_graph(5, 2.0, 2, seed=14)
        with pytest.raises(ValueError):
            random_walk_query(g, 0)
        with pytest.raises(ValueError):
            bfs_query(g, 0)

    def test_bfs_queries_denser_than_walks_on_dense_data(self):
        g = generate_graph(40, 8.0, 2, seed=15)
        walk_degrees = []
        bfs_degrees = []
        for seed in range(10):
            walk = random_walk_query(g, 8, seed=seed)
            dense = bfs_query(g, 8, seed=seed)
            assert walk is not None and dense is not None
            walk_degrees.append(walk.average_degree)
            bfs_degrees.append(dense.average_degree)
        assert sum(bfs_degrees) > sum(walk_degrees)

    def test_deterministic_under_seed(self):
        g = generate_graph(20, 3.0, 3, seed=16)
        a = random_walk_query(g, 5, seed=77)
        b = random_walk_query(g, 5, seed=77)
        assert a is not None and b is not None
        assert a.labels == b.labels and list(a.edges()) == list(b.edges())
