"""Tests for repro.graph.database."""

from __future__ import annotations

import pytest

from repro.graph import Graph, GraphDatabase

from helpers import path_graph, triangle


class TestMutation:
    def test_add_returns_stable_ids(self):
        db = GraphDatabase()
        assert db.add_graph(triangle()) == 0
        assert db.add_graph(triangle()) == 1
        assert len(db) == 2

    def test_remove_keeps_other_ids(self):
        db = GraphDatabase()
        ids = db.add_graphs([triangle(), triangle(1), triangle(2)])
        removed = db.remove_graph(ids[1])
        assert removed.label(0) == 1
        assert db.ids() == [ids[0], ids[2]]
        assert ids[1] not in db

    def test_ids_not_reused_after_removal(self):
        db = GraphDatabase()
        first = db.add_graph(triangle())
        db.remove_graph(first)
        second = db.add_graph(triangle())
        assert second != first

    def test_remove_unknown_raises(self):
        with pytest.raises(KeyError):
            GraphDatabase().remove_graph(0)


class TestAccess:
    def test_getitem_and_contains(self):
        db = GraphDatabase()
        gid = db.add_graph(triangle(7))
        assert db[gid].label(0) == 7
        assert gid in db

    def test_iteration_orders(self):
        db = GraphDatabase()
        ids = db.add_graphs([triangle(), path_graph([0, 1])])
        assert list(db) == ids
        assert [gid for gid, _ in db.items()] == ids
        assert len(db.graphs()) == 2


class TestStats:
    def test_empty_stats(self):
        stats = GraphDatabase().stats()
        assert stats.num_graphs == 0
        assert stats.avg_vertices == 0.0

    def test_stats_values(self):
        db = GraphDatabase()
        db.add_graph(triangle(0))            # 3 vertices, 3 edges, 1 label
        db.add_graph(path_graph([1, 2, 1]))  # 3 vertices, 2 edges, 2 labels
        stats = db.stats()
        assert stats.num_graphs == 2
        assert stats.num_labels == 3          # {0, 1, 2}
        assert stats.avg_vertices == 3.0
        assert stats.avg_edges == 2.5
        assert stats.avg_labels_per_graph == 1.5

    def test_stats_row_has_paper_columns(self):
        db = GraphDatabase()
        db.add_graph(triangle())
        row = db.stats().as_row()
        assert set(row) == {
            "#graphs", "#labels", "#vertices per graph",
            "#edges per graph", "degree per graph", "#labels per graph",
        }

    def test_csr_memory_sums_graphs(self):
        db = GraphDatabase()
        g1, g2 = triangle(), path_graph([0, 1, 2])
        db.add_graphs([g1, g2])
        assert db.csr_memory_bytes() == g1.csr_memory_bytes() + g2.csr_memory_bytes()
