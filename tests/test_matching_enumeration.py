"""Tests for repro.matching.enumeration (the shared backtracking core)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.graph import Graph
from repro.matching import CandidateSets, enumerate_embeddings, ldf_candidates
from repro.utils.errors import TimeLimitExceeded
from repro.utils.timing import Deadline

from helpers import nx_monomorphism_count, path_graph, triangle
from strategies import matching_instances


def full_candidates(query: Graph, data: Graph) -> CandidateSets:
    return CandidateSets(ldf_candidates(query, data))


class TestBasicEnumeration:
    def test_triangle_in_triangle_has_six_automorphisms(self):
        q = triangle()
        result = enumerate_embeddings(q, q, full_candidates(q, q), (0, 1, 2))
        assert result.num_embeddings == 6

    def test_collect_returns_mappings(self):
        q = path_graph([0, 1])
        g = path_graph([0, 1, 0])
        result = enumerate_embeddings(
            q, g, full_candidates(q, g), (0, 1), collect=True
        )
        assert result.num_embeddings == 2
        assert {frozenset(m.items()) for m in result.embeddings} == {
            frozenset({(0, 0), (1, 1)}),
            frozenset({(0, 2), (1, 1)}),
        }

    def test_embeddings_are_injective_and_edge_preserving(self):
        q = triangle()
        g = Graph.from_edge_list([0] * 5, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)])
        result = enumerate_embeddings(q, g, full_candidates(q, g), (0, 1, 2), collect=True)
        for mapping in result.embeddings:
            assert len(set(mapping.values())) == len(mapping)
            for u, v in q.edges():
                assert g.has_edge(mapping[u], mapping[v])

    def test_no_match(self):
        q = triangle(label=5)
        g = triangle(label=0)
        result = enumerate_embeddings(q, g, full_candidates(q, g), (0, 1, 2))
        assert result.num_embeddings == 0
        assert not result.found

    def test_empty_query_has_one_embedding(self):
        q = Graph.from_edge_list([], [])
        g = triangle()
        result = enumerate_embeddings(q, g, CandidateSets([]), (), collect=True)
        assert result.num_embeddings == 1
        assert result.embeddings == [{}]


class TestLimits:
    def test_limit_one_stops_early(self):
        q = triangle()
        result = enumerate_embeddings(q, q, full_candidates(q, q), (0, 1, 2), limit=1)
        assert result.num_embeddings == 1
        assert not result.completed

    def test_limit_beyond_total_completes(self):
        q = triangle()
        result = enumerate_embeddings(q, q, full_candidates(q, q), (0, 1, 2), limit=100)
        assert result.num_embeddings == 6
        assert result.completed

    def test_expired_deadline_raises(self):
        # Needs enough recursion calls to pass the deadline's check stride.
        q = path_graph([0, 0, 0, 0])
        g = Graph.from_edge_list(
            [0] * 14, [(u, v) for u in range(14) for v in range(u + 1, 14)]
        )
        with pytest.raises(TimeLimitExceeded):
            enumerate_embeddings(
                q, g, full_candidates(q, g), (0, 1, 2, 3), deadline=Deadline(0.0)
            )


class TestOrderValidation:
    def test_non_permutation_rejected(self):
        q = path_graph([0, 1])
        with pytest.raises(ValueError, match="permutation"):
            enumerate_embeddings(q, q, full_candidates(q, q), (0, 0))

    def test_disconnected_order_rejected(self):
        q = path_graph([0, 1, 2])
        with pytest.raises(ValueError, match="not connected"):
            enumerate_embeddings(q, q, full_candidates(q, q), (0, 2, 1))


class TestAgainstOracle:
    @given(matching_instances())
    @settings(max_examples=40, deadline=None)
    def test_count_matches_networkx(self, instance):
        query, data = instance
        # Any connected order works; build one greedily from vertex 0.
        order = [0]
        remaining = set(query.vertices()) - {0}
        while remaining:
            nxt = next(
                u for u in sorted(remaining)
                if any(w not in remaining for w in query.neighbors(u))
            )
            order.append(nxt)
            remaining.discard(nxt)
        result = enumerate_embeddings(
            query, data, full_candidates(query, data), tuple(order)
        )
        assert result.num_embeddings == nx_monomorphism_count(query, data)
