"""Graph bitmap profiles and the bitmap-backed candidate sets.

The matching kernels trust the memoized bitmaps on :class:`Graph` to
equal what a fresh recomputation from ``neighbors()``/``label()``
would give.  These are the invariant tests: every cached profile is
cross-checked against a naive pass over the adjacency lists, and the
lazy memory accounting is pinned down (zero before first use, counted in
``index_memory_bytes`` after).
"""

from __future__ import annotations

import random

import pytest

from repro.graph import Graph
from repro.graph.generators import generate_database, generate_graph
from repro.matching.candidates import (
    CandidateSets,
    ldf_candidate_bits,
    ldf_candidates,
    nlf_candidate_bits,
    nlf_candidates,
)
from repro.utils.bitset import bit_list, iter_bits, pack_bits


@pytest.fixture(scope="module")
def graphs():
    rng = random.Random(7)
    out = [
        generate_graph(
            num_vertices=rng.randint(6, 30),
            avg_degree=rng.uniform(2.0, 5.0),
            num_labels=rng.randint(2, 5),
            seed=rng.randint(0, 10_000),
        )
        for _ in range(8)
    ]
    out.append(Graph.from_edge_list([0], [], name="isolated"))
    return out


class TestBitmapProfiles:
    def test_label_bitmap_matches_label_scan(self, graphs):
        for g in graphs:
            for label in set(g.labels):
                expected = pack_bits(
                    v for v in g.vertices() if g.label(v) == label
                )
                assert g.label_bitmap(label) == expected
            assert g.label_bitmap(999) == 0

    def test_neighbor_bitmap_matches_adjacency(self, graphs):
        for g in graphs:
            for v in g.vertices():
                assert g.neighbor_bitmap(v) == pack_bits(g.neighbors(v))

    def test_neighbor_label_bitmap_matches_filtered_adjacency(self, graphs):
        for g in graphs:
            labels = set(g.labels)
            for v in g.vertices():
                for label in labels:
                    expected = pack_bits(
                        w for w in g.neighbors(v) if g.label(w) == label
                    )
                    assert g.neighbor_label_bitmap(v, label) == expected

    def test_degree_bitmap_matches_degree_scan(self, graphs):
        for g in graphs:
            for threshold in (0, 1, 2, 3, 10):
                expected = pack_bits(
                    v for v in g.vertices() if g.degree(v) >= threshold
                )
                assert g.degree_bitmap(threshold) == expected

    def test_nlf_bitmap_matches_profile_scan(self, graphs):
        for g in graphs:
            for label in set(g.labels):
                for need in (1, 2, 3):
                    expected = pack_bits(
                        v
                        for v in g.vertices()
                        if sum(
                            1 for w in g.neighbors(v) if g.label(w) == label
                        )
                        >= need
                    )
                    assert g.nlf_bitmap(label, need) == expected

    def test_cached_neighbor_label_counts_equal_fresh(self, graphs):
        """The memoized profile must equal a recomputation from scratch —
        and stay equal on the second (cached) call."""
        for g in graphs:
            for v in g.vertices():
                fresh: dict[int, int] = {}
                for w in g.neighbors(v):
                    lab = g.label(w)
                    fresh[lab] = fresh.get(lab, 0) + 1
                assert g.neighbor_label_counts(v) == fresh
                assert g.neighbor_label_counts(v) == fresh


class TestProfileMemoryAccounting:
    def test_zero_before_first_use(self):
        g = generate_graph(num_vertices=12, avg_degree=3, num_labels=3, seed=1)
        assert g.profile_memory_bytes() == 0

    def test_grows_after_use_and_is_monotone(self):
        g = generate_graph(num_vertices=12, avg_degree=3, num_labels=3, seed=1)
        g.label_bitmap(0)
        after_labels = g.profile_memory_bytes()
        assert after_labels > 0
        g.neighbor_bitmap(0)
        g.nlf_bitmap(0, 1)
        g.neighbor_label_counts(0)
        assert g.profile_memory_bytes() > after_labels

    def test_database_sums_member_graphs(self):
        db = generate_database(
            num_graphs=5, num_vertices=10, avg_degree=3, num_labels=3, seed=3
        )
        assert db.profile_memory_bytes() == 0
        for g in db.graphs():
            g.neighbor_bitmap(0)
        assert db.profile_memory_bytes() == sum(
            g.profile_memory_bytes() for g in db.graphs()
        )
        assert db.profile_memory_bytes() > 0


class TestBitsetHelpers:
    def test_pack_and_decode_roundtrip(self):
        for vertices in ([], [0], [3, 1, 4, 1], list(range(0, 600, 7))):
            bits = pack_bits(vertices)
            expected = sorted(set(vertices))
            assert bit_list(bits) == expected
            assert list(iter_bits(bits)) == expected
            assert bits.bit_count() == len(expected)


class TestCandidateSetsRoundTrip:
    def test_from_bitmaps_roundtrip(self):
        bitmaps = [pack_bits([0, 2, 5]), pack_bits([1]), 0]
        cands = CandidateSets.from_bitmaps(bitmaps)
        assert cands[0] == (0, 2, 5)
        assert cands.as_set(1) == {1}
        assert cands[2] == ()
        assert cands.bits(0) == bitmaps[0]
        assert list(cands.sizes()) == [3, 1, 0]
        assert cands.total_candidates == 4
        assert cands.contains(0, 2) and not cands.contains(0, 3)
        assert not cands.all_nonempty
        assert len(cands) == 3

    def test_set_construction_matches_bitmap_construction(self):
        from_sets = CandidateSets([{2, 0, 5}, {1}])
        from_bits = CandidateSets.from_bitmaps([pack_bits([0, 2, 5]), 1 << 1])
        assert [from_sets[u] for u in range(2)] == [
            from_bits[u] for u in range(2)
        ]
        assert from_sets.all_nonempty
        assert from_sets.memory_bytes() == from_bits.memory_bytes()

    def test_legacy_wrappers_match_bit_kernels(self):
        db = generate_database(
            num_graphs=4, num_vertices=15, avg_degree=4, num_labels=3, seed=9
        )
        query = generate_graph(
            num_vertices=4, avg_degree=2, num_labels=3, seed=4
        )
        for g in db.graphs():
            assert [
                bit_list(b) for b in ldf_candidate_bits(query, g)
            ] == [sorted(s) for s in ldf_candidates(query, g)]
            assert [
                bit_list(b) for b in nlf_candidate_bits(query, g)
            ] == [sorted(s) for s in nlf_candidates(query, g)]

    def test_nlf_is_subset_of_ldf(self):
        db = generate_database(
            num_graphs=4, num_vertices=15, avg_degree=4, num_labels=3, seed=9
        )
        query = generate_graph(
            num_vertices=4, avg_degree=2, num_labels=3, seed=4
        )
        for g in db.graphs():
            ldf = ldf_candidate_bits(query, g)
            nlf = nlf_candidate_bits(query, g)
            for u in range(query.num_vertices):
                assert nlf[u] & ~ldf[u] == 0
