"""Tests for repro.graph.algorithms."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings

from repro.graph import (
    Graph,
    bfs_tree,
    connected_components,
    core_numbers,
    enumerate_simple_cycles,
    is_connected,
    is_tree,
    two_core,
)

from helpers import path_graph, to_networkx, triangle
from strategies import connected_graphs, labeled_graphs


class TestBFSTree:
    def test_path_graph_levels(self):
        tree = bfs_tree(path_graph([0, 0, 0, 0]), root=0)
        assert tree.order == (0, 1, 2, 3)
        assert tree.level == (0, 1, 2, 3)
        assert tree.parent == (-1, 0, 1, 2)
        assert tree.depth == 3

    def test_children_follow_visit_order(self):
        star = Graph.from_edge_list([0, 0, 0, 0], [(0, 1), (0, 2), (0, 3)])
        tree = bfs_tree(star, root=0)
        assert tree.children[0] == (1, 2, 3)
        assert tree.vertices_by_level() == [[0], [1, 2, 3]]

    def test_disconnected_rejected(self):
        g = Graph.from_edge_list([0, 0, 0], [(0, 1)])
        with pytest.raises(ValueError, match="connected"):
            bfs_tree(g, root=0)

    @given(connected_graphs(min_vertices=2, max_vertices=12))
    @settings(max_examples=50)
    def test_parents_precede_children(self, graph):
        tree = bfs_tree(graph, root=0)
        position = {v: i for i, v in enumerate(tree.order)}
        for v in graph.vertices():
            if tree.parent[v] >= 0:
                assert position[tree.parent[v]] < position[v]
                assert graph.has_edge(tree.parent[v], v)
                assert tree.level[v] == tree.level[tree.parent[v]] + 1


class TestConnectivity:
    def test_components_of_disconnected_graph(self):
        g = Graph.from_edge_list([0] * 5, [(0, 1), (2, 3)])
        assert connected_components(g) == [[0, 1], [2, 3], [4]]
        assert not is_connected(g)

    def test_empty_graph_is_connected(self):
        assert is_connected(Graph.from_edge_list([], []))

    def test_is_tree(self):
        assert is_tree(path_graph([0, 1, 2]))
        assert not is_tree(triangle())
        g = Graph.from_edge_list([0, 0], [])  # disconnected forest
        assert not is_tree(g)

    @given(labeled_graphs(max_vertices=12))
    @settings(max_examples=50)
    def test_components_partition_vertices(self, graph):
        components = connected_components(graph)
        seen = [v for comp in components for v in comp]
        assert sorted(seen) == list(graph.vertices())


class TestCoreNumbers:
    def test_triangle_is_2_core(self):
        assert core_numbers(triangle()) == [2, 2, 2]
        assert two_core(triangle()) == frozenset({0, 1, 2})

    def test_path_has_empty_2_core(self):
        assert two_core(path_graph([0, 0, 0, 0])) == frozenset()

    def test_triangle_with_tail(self):
        g = Graph.from_edge_list([0] * 5, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)])
        assert two_core(g) == frozenset({0, 1, 2})

    @given(labeled_graphs(max_vertices=12))
    @settings(max_examples=50)
    def test_matches_networkx(self, graph):
        expected = nx.core_number(to_networkx(graph)) if graph.num_vertices else {}
        assert core_numbers(graph) == [expected[v] for v in graph.vertices()]


class TestCycleEnumeration:
    def test_triangle_yields_one_cycle(self):
        cycles = list(enumerate_simple_cycles(triangle(), 5))
        assert cycles == [(0, 1, 2)]

    def test_square_with_chord(self):
        g = Graph.from_edge_list(
            [0] * 4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]
        )
        cycles = {frozenset(c) for c in enumerate_simple_cycles(g, 4)}
        assert cycles == {
            frozenset({0, 1, 2}),
            frozenset({0, 2, 3}),
            frozenset({0, 1, 2, 3}),
        }

    def test_max_length_respected(self):
        g = Graph.from_edge_list(
            [0] * 4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]
        )
        cycles = list(enumerate_simple_cycles(g, 3))
        assert all(len(c) <= 3 for c in cycles)
        assert len(cycles) == 2

    def test_below_minimum_yields_nothing(self):
        assert list(enumerate_simple_cycles(triangle(), 2)) == []

    @given(labeled_graphs(max_vertices=8))
    @settings(max_examples=40)
    def test_cycle_count_matches_networkx(self, graph):
        ours = {frozenset(c) for c in enumerate_simple_cycles(graph, 8)}
        theirs = {
            frozenset(c)
            for c in nx.simple_cycles(to_networkx(graph))
            if len(c) >= 3
        }
        assert ours == theirs

    @given(labeled_graphs(max_vertices=8))
    @settings(max_examples=40)
    def test_each_cycle_is_a_real_cycle(self, graph):
        for cycle in enumerate_simple_cycles(graph, 6):
            assert len(set(cycle)) == len(cycle) >= 3
            for i, u in enumerate(cycle):
                assert graph.has_edge(u, cycle[(i + 1) % len(cycle)])
