"""Tests for repro.bench.reporting (Table rendering)."""

from __future__ import annotations

import pytest

from repro.bench import Table, format_cell


class TestFormatCell:
    def test_none_is_na(self):
        assert format_cell(None) == "N/A"

    def test_strings_pass_through(self):
        assert format_cell("OOT") == "OOT"
        assert format_cell("OOM") == "OOM"

    def test_integers_grouped(self):
        assert format_cell(1234567) == "1,234,567"

    def test_float_ranges(self):
        assert format_cell(0.0) == "0"
        assert format_cell(1234.5) == "1,234"
        assert format_cell(3.14159) == "3.14"
        assert format_cell(0.01234) == "0.0123"
        assert format_cell(0.0000071) == "7.100e-06"


class TestTable:
    def make(self) -> Table:
        table = Table("demo", ["a", "b"])
        table.add_row("row1", {"a": 1.0, "b": "OOT"})
        table.add_row("row2", {"a": None})
        return table

    def test_cell_access(self):
        table = self.make()
        assert table.cell("row1", "b") == "OOT"
        assert table.cell("row2", "a") is None
        with pytest.raises(KeyError):
            table.cell("missing", "a")

    def test_column_values_and_labels(self):
        table = self.make()
        assert table.column_values("a") == [1.0, None]
        assert table.row_labels() == ["row1", "row2"]

    def test_unknown_column_rejected(self):
        table = Table("t", ["a"])
        with pytest.raises(ValueError, match="unknown columns"):
            table.add_row("r", {"zzz": 1})

    def test_text_rendering(self):
        text = self.make().format_text()
        assert text.startswith("demo")
        assert "OOT" in text and "N/A" in text
        # All lines after the title align on the same width.
        lines = text.splitlines()[1:]
        assert len({len(line.rstrip()) for line in lines}) <= len(lines)

    def test_markdown_rendering(self):
        md = self.make().format_markdown()
        assert "| row1 | 1.00 | OOT |" in md
        assert md.splitlines()[2].startswith("| | a | b |"[0])

    def test_str_is_text(self):
        table = self.make()
        assert str(table) == table.format_text()


class TestFormatFigure:
    def make(self) -> Table:
        table = Table("fig", ["Q4S", "Q8S"])
        table.add_row("fast", {"Q4S": 1.0, "Q8S": 2.0})
        table.add_row("slow", {"Q4S": 10.0, "Q8S": "OOT"})
        return table

    def test_bars_scale_with_values(self):
        figure = self.make().format_figure(width=10)
        lines = figure.splitlines()
        fast_bar = next(l for l in lines if l.strip().startswith("fast"))
        slow_bar = next(l for l in lines if "slow" in l and "█" in l)
        assert slow_bar.count("█") > fast_bar.count("█")

    def test_non_numeric_cells_annotated(self):
        assert "[OOT]" in self.make().format_figure()

    def test_groups_per_column(self):
        figure = self.make().format_figure()
        assert "Q4S:" in figure and "Q8S:" in figure

    def test_log_scale(self):
        figure = self.make().format_figure(width=10, log_scale=True)
        assert "█" in figure

    def test_all_non_numeric_falls_back_to_text(self):
        table = Table("t", ["a"])
        table.add_row("r", {"a": "OOT"})
        assert table.format_figure() == table.format_text()
