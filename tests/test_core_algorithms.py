"""Tests for repro.core.algorithms (the Table III factory)."""

from __future__ import annotations

import pytest

from repro.core import (
    ALGORITHM_CATEGORIES,
    ALGORITHM_NAMES,
    create_engine,
    create_pipeline,
)
from repro.core.pipeline import (
    IFVPipeline,
    IvcFVPipeline,
    NaiveFVPipeline,
    VcFVPipeline,
)
from repro.graph import GraphDatabase
from repro.utils.errors import ConfigurationError

from helpers import triangle


class TestRegistry:
    def test_all_eight_paper_algorithms_present(self):
        paper = {
            "CT-Index", "Grapes", "GGSX",
            "CFL", "GraphQL", "CFQL",
            "vcGrapes", "vcGGSX",
        }
        assert paper <= set(ALGORITHM_NAMES)

    def test_categories_match_table_three(self):
        assert ALGORITHM_CATEGORIES["CT-Index"] == "IFV"
        assert ALGORITHM_CATEGORIES["CFQL"] == "vcFV"
        assert ALGORITHM_CATEGORIES["vcGrapes"] == "IvcFV"
        assert set(ALGORITHM_CATEGORIES) == set(ALGORITHM_NAMES)

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown algorithm"):
            create_pipeline("BoostIso")

    def test_extension_algorithms_present(self):
        assert {"GraphGrep", "TurboIso", "QuickSI-FV"} <= set(ALGORITHM_NAMES)


class TestPipelineShapes:
    @pytest.mark.parametrize("name", ["CT-Index", "Grapes", "GGSX"])
    def test_ifv_pipelines(self, name):
        assert isinstance(create_pipeline(name), IFVPipeline)

    @pytest.mark.parametrize("name", ["CFL", "GraphQL", "CFQL"])
    def test_vcfv_pipelines(self, name):
        assert isinstance(create_pipeline(name), VcFVPipeline)

    @pytest.mark.parametrize("name", ["vcGrapes", "vcGGSX"])
    def test_ivcfv_pipelines(self, name):
        assert isinstance(create_pipeline(name), IvcFVPipeline)

    @pytest.mark.parametrize("name", ["VF2-FV", "Ullmann-FV"])
    def test_baselines(self, name):
        assert isinstance(create_pipeline(name), NaiveFVPipeline)

    def test_names_round_trip(self):
        for name in ALGORITHM_NAMES:
            assert create_pipeline(name).name == name


class TestOverrides:
    def test_index_override_applied(self):
        pipeline = create_pipeline("Grapes", index_max_path_edges=2)
        assert pipeline.index.max_path_edges == 2

    def test_matcher_override_applied(self):
        pipeline = create_pipeline("GraphQL", matcher_refine_iterations=5)
        assert pipeline.matcher.refine_iterations == 5

    def test_irrelevant_overrides_ignored(self):
        # One override bundle must work for heterogeneous algorithms.
        pipeline = create_pipeline(
            "CT-Index", index_max_path_edges=2, index_max_tree_edges=2
        )
        assert pipeline.index.max_tree_edges == 2

    def test_ct_index_uses_degree_vf2(self):
        pipeline = create_pipeline("CT-Index")
        assert pipeline.verifier.name == "VF2-degree"


class TestCreateEngine:
    def test_engine_wired_to_db(self):
        db = GraphDatabase()
        db.add_graph(triangle())
        engine = create_engine(db, "CFQL")
        assert engine.db is db
        assert engine.name == "CFQL"
