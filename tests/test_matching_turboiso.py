"""Tests for repro.matching.turboiso (candidate-region matching)."""

from __future__ import annotations

from hypothesis import given, settings

from repro.graph import Graph
from repro.matching import TurboIsoMatcher, VF2Matcher

from helpers import nx_monomorphism_count, paper_like_data, paper_like_query, path_graph
from strategies import matching_instances


class TestRegions:
    def test_one_region_per_start_candidate(self):
        q = path_graph([0, 1])
        g = Graph.from_edge_list([0, 1, 0, 1], [(0, 1), (2, 3)])
        matcher = TurboIsoMatcher()
        explored = matcher._regions(q, g, None)
        assert explored is not None
        _, regions = explored
        assert len(regions) == 2

    def test_dead_regions_dropped(self):
        q = path_graph([0, 1, 2])
        # Vertex 3 (label 0) has no label-1 neighbor → its region dies.
        g = Graph.from_edge_list(
            [0, 1, 2, 0], [(0, 1), (1, 2), (2, 3)]
        )
        matcher = TurboIsoMatcher()
        explored = matcher._regions(q, g, None)
        assert explored is not None
        _, regions = explored
        assert len(regions) == 1

    def test_union_candidates_complete(self):
        q, g = paper_like_query(), paper_like_data()
        phi = TurboIsoMatcher().build_candidates(q, g)
        assert phi is not None
        for mapping in VF2Matcher().find_all(q, g):
            for u, v in mapping.items():
                assert phi.contains(u, v)

    def test_unmatchable_returns_none(self):
        assert TurboIsoMatcher().build_candidates(
            path_graph([9, 9]), path_graph([0, 0])
        ) is None


class TestMatching:
    def test_square_query(self):
        assert TurboIsoMatcher().exists(paper_like_query(), paper_like_data())

    def test_regions_partition_embeddings(self):
        """Summing per-region counts must equal the global count (no
        duplicates across regions, none lost)."""
        q, g = paper_like_query(), paper_like_data()
        assert TurboIsoMatcher().count(q, g) == VF2Matcher().count(q, g)

    def test_limit_respected_across_regions(self):
        q = path_graph([0, 0])
        g = Graph.from_edge_list([0] * 4, [(0, 1), (1, 2), (2, 3)])
        outcome = TurboIsoMatcher().run(q, g, limit=2)
        assert outcome.num_embeddings == 2
        assert not outcome.completed

    def test_filtered_out_flag(self):
        outcome = TurboIsoMatcher().run(path_graph([9, 9]), path_graph([0, 0]))
        assert outcome.filtered_out and not outcome.found

    @given(matching_instances())
    @settings(max_examples=40, deadline=None)
    def test_count_matches_networkx(self, instance):
        query, data = instance
        assert TurboIsoMatcher().count(query, data) == nx_monomorphism_count(
            query, data
        )

    @given(matching_instances(guaranteed_match=True))
    @settings(max_examples=25, deadline=None)
    def test_collected_embeddings_valid(self, instance):
        query, data = instance
        for mapping in TurboIsoMatcher().find_all(query, data):
            assert len(set(mapping.values())) == query.num_vertices
            for u, v in query.edges():
                assert data.has_edge(mapping[u], mapping[v])
