"""Stateful property test: a random add/remove/query interleaving.

Hypothesis drives an arbitrary sequence of database mutations and queries
against three engines at once — an index-based one (Grapes), an index-free
one (CFQL) and a cached one — comparing every answer set against a
brute-force VF2 scan of the model state.  This is the strongest
consistency check in the suite: it exercises index maintenance, cache
invalidation and query processing under interleavings no example-based
test would think of.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.core import CachingPipeline, SubgraphQueryEngine, create_pipeline
from repro.graph import GraphDatabase, generate_graph, random_walk_query
from repro.matching import VF2Matcher


class DatabaseMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self) -> None:
        self.db = GraphDatabase()
        self.engines = {
            "Grapes": SubgraphQueryEngine(
                self.db, create_pipeline("Grapes", index_max_path_edges=2)
            ),
            "CFQL": SubgraphQueryEngine(self.db, create_pipeline("CFQL")),
            "cached-CFQL": SubgraphQueryEngine(
                self.db, CachingPipeline(create_pipeline("CFQL"), capacity=4)
            ),
        }
        for engine in self.engines.values():
            engine.build_index()
        self.vf2 = VF2Matcher()
        # Mutations must go through every engine, so route them manually.
        self._mutate_seed = 0

    def _add(self, graph) -> None:
        gid = self.db.add_graph(graph)
        for engine in self.engines.values():
            engine.pipeline.on_graph_added(gid, graph)

    def _remove(self, gid: int) -> None:
        self.db.remove_graph(gid)
        for engine in self.engines.values():
            engine.pipeline.on_graph_removed(gid)

    @rule(seed=st.integers(0, 2**32 - 1), size=st.integers(4, 10))
    def add_graph(self, seed: int, size: int) -> None:
        self._add(generate_graph(size, 2.5, 3, seed=seed))

    @rule(pick=st.integers(0, 2**31))
    def remove_graph(self, pick: int) -> None:
        ids = self.db.ids()
        if ids:
            self._remove(ids[pick % len(ids)])

    @rule(pick=st.integers(0, 2**31), edges=st.integers(1, 4), seed=st.integers(0, 2**32 - 1))
    def query(self, pick: int, edges: int, seed: int) -> None:
        ids = self.db.ids()
        if not ids:
            return
        source = self.db[ids[pick % len(ids)]]
        query = random_walk_query(source, edges, seed=seed)
        if query is None:
            return
        expected = {gid for gid, g in self.db.items() if self.vf2.exists(query, g)}
        for name, engine in self.engines.items():
            assert engine.query(query).answers == expected, name

    @invariant()
    def engines_share_the_database(self) -> None:
        for engine in self.engines.values():
            assert engine.db is self.db


TestDatabaseMachine = DatabaseMachine.TestCase
TestDatabaseMachine.settings = settings(
    max_examples=15, stateful_step_count=12, deadline=None
)
