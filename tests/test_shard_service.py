"""Tests for the service layer over a sharded engine.

Covers the wiring the unit tests of :mod:`repro.shard` cannot: per-shard
rows in the ``stats`` verb, the ``rebalance`` admin verb (including its
rejection on an unsharded engine), the dedup window reseeding from
recovered request keys after a restart, and the no-caching rule for
partial (shard-down) answers.
"""

from __future__ import annotations

import threading

import pytest

from repro.core import create_engine, create_pipeline
from repro.exec import faults
from repro.graph import generate_database
from repro.service.client import ServiceClient, wait_for_service
from repro.service.server import QueryService, ServiceConfig
from repro.shard import ShardedEngine
from repro.workloads.querysets import generate_query_set

ALGORITHM = "Grapes"


def make_db():
    return generate_database(
        num_graphs=20, num_vertices=12, avg_degree=2.8, num_labels=4, seed=21,
        name="shard-svc",
    )


def make_engine(db, num_shards=2, store_root=None):
    engine = ShardedEngine(
        db, num_shards, lambda: create_pipeline(ALGORITHM),
        store_root=store_root,
    )
    engine.build_index()
    return engine


@pytest.fixture()
def queries():
    return list(generate_query_set(make_db(), 4, False, size=3, seed=22))


class running_service:
    """A QueryService on a temp Unix socket, shut down on exit."""

    def __init__(self, engine, tmp_path, config=None, tag="svc"):
        self.service = QueryService(engine, config or ServiceConfig())
        self.address = f"unix:{tmp_path / f'{tag}.sock'}"

    def __enter__(self):
        self._thread = threading.Thread(
            target=self.service.serve, args=(self.address,), daemon=True
        )
        self._thread.start()
        wait_for_service(self.address)
        return self

    def __exit__(self, *exc_info):
        try:
            with ServiceClient(self.address) as client:
                client.shutdown()
        except Exception:
            self.service.request_shutdown()
        self._thread.join(timeout=30.0)


class TestStatsVerb:
    def test_per_shard_rows_and_store_recovery(self, tmp_path, queries):
        engine = make_engine(make_db(), 2, store_root=tmp_path / "store")
        with running_service(engine, tmp_path) as under_test:
            with ServiceClient(under_test.address) as client:
                client.query(queries[0])
                stats = client.stats()
        rows = stats["shards"]
        assert [row["shard"] for row in rows] == [0, 1]
        assert sum(row["graphs"] for row in rows) == 20
        assert all(row["breaker"]["state"] == "closed" for row in rows)
        # Satellite: wal_recovery counters per store, one row per shard.
        store = stats["store"]
        assert store["recovery"]["replayed"] == 0
        assert [row["shard"] for row in store["shards"]] == [0, 1]
        workers = stats["workers"]
        assert workers["executor"] == "ShardedExecutor"

    def test_unsharded_stats_has_no_shard_rows(self, tmp_path, queries):
        engine = create_engine(make_db(), ALGORITHM)
        engine.build_index()
        with running_service(engine, tmp_path) as under_test:
            with ServiceClient(under_test.address) as client:
                stats = client.stats()
        assert stats["shards"] is None


class TestRebalanceVerb:
    def test_split_and_heal_over_the_wire(self, tmp_path, queries):
        engine = make_engine(make_db(), 2)
        with running_service(engine, tmp_path) as under_test:
            with ServiceClient(under_test.address) as client:
                expected = [
                    sorted(client.query(q)["answers"]) for q in queries
                ]
                summary = client.rebalance(shards=4)
                assert summary["num_shards"] == 4
                assert summary["grown"] == 2
                assert sum(summary["graphs"]) == 20
                assert client.rebalance()["moved"] == 0
                assert len(client.stats()["shards"]) == 4
                got = [
                    sorted(
                        client.query(q, no_cache=True)["answers"]
                    ) for q in queries
                ]
        assert got == expected

    def test_rejected_on_unsharded_engine(self, tmp_path):
        from repro.service.client import ServiceError

        engine = create_engine(make_db(), ALGORITHM)
        engine.build_index()
        with running_service(engine, tmp_path) as under_test:
            with ServiceClient(under_test.address) as client:
                with pytest.raises(ServiceError, match="not sharded"):
                    client.rebalance()

    def test_bad_shard_count_rejected(self, tmp_path):
        from repro.service.client import ServiceError

        engine = make_engine(make_db(), 2, store_root=tmp_path / "store")
        with running_service(engine, tmp_path) as under_test:
            with ServiceClient(under_test.address) as client:
                with pytest.raises(ServiceError):
                    client.rebalance(shards=0)
                # Below the seed count with a store attached: structured
                # bad_request, service stays up.
                with pytest.raises(ServiceError, match="seed shard count"):
                    client.rebalance(shards=1)
                assert client.ping()


class TestDedupPersistence:
    def test_window_survives_restart(self, tmp_path, queries):
        root = tmp_path / "store"
        db = make_db()
        extra = db[db.ids()[0]]
        engine = make_engine(db, 2, store_root=root)
        with running_service(engine, tmp_path, tag="first") as under_test:
            with ServiceClient(under_test.address) as client:
                gid = client.add_graph(extra)
                assert client.stats()["dedup"]["size"] == 1

        revived = make_engine(make_db(), 2, store_root=root)
        assert gid in revived.db
        with running_service(revived, tmp_path, tag="second") as under_test:
            with ServiceClient(under_test.address) as client:
                stats = client.stats()["dedup"]
                assert stats["seeded"] == 1
                assert stats["size"] == 1

    def test_seeding_respects_disabled_dedup(self, tmp_path):
        root = tmp_path / "store"
        db = make_db()
        engine = make_engine(db, 2, store_root=root)
        engine.add_graph(db[db.ids()[0]], request_key="k1")
        engine.close()
        revived = make_engine(make_db(), 2, store_root=root)
        assert revived.recovered_request_keys
        service = QueryService(revived, ServiceConfig(dedup_capacity=0))
        assert service.dedup_seeded == 0
        revived.close()


class TestPartialResults:
    def test_partial_answers_are_not_cached(self, tmp_path, queries):
        engine = make_engine(make_db(), 2)
        with running_service(engine, tmp_path) as under_test:
            with ServiceClient(under_test.address) as client:
                full = sorted(client.query(queries[0])["answers"])
                client_stats = client.stats()
                assert client_stats["cache"]["size"] == 1
                # Take shard 1 down for exactly one routed batch; use a
                # different query so the cache cannot answer it.
                faults.inject(
                    "shard.query", "error", match="shard-1", times=1
                )
                try:
                    partial = client.query(queries[1])
                finally:
                    faults.clear()
                assert partial["metadata"]["partial"]
                assert partial["metadata"]["missing_shards"] == [1]
                # The degraded answer must not have been admitted: the
                # same query now misses the cache and gets full answers.
                again = client.query(queries[1])
                assert again["cache"] == "miss"
                assert not again["metadata"].get("partial")
                assert set(partial["answers"]) <= set(again["answers"])
                # And the untouched cached entry still serves hits.
                hit = client.query(queries[0])
                assert hit["cache"] == "hit"
                assert sorted(hit["answers"]) == full
