"""Fault containment in cooperative (in-process) execution.

Exercises the tentpole guarantee at the exception level: injected OOT /
OOM / unexpected errors in one query become structured failure records on
that query's result, and the rest of the query set completes untouched.
"""

from __future__ import annotations

import pytest

from helpers import nx_contains
from repro.core import (
    SubgraphQueryEngine,
    VcFVPipeline,
    create_engine,
    create_pipeline,
    fallback_pipeline,
)
from repro.core.pipeline import IvcFVPipeline, NaiveFVPipeline
from repro.exec import faults
from repro.exec.base import (
    InProcessExecutor,
    classify_exception,
    create_executor,
    failure_result,
)
from repro.core.metrics import QueryFailure, aggregate_results
from repro.utils.errors import (
    ConfigurationError,
    MemoryLimitExceeded,
    TimeLimitExceeded,
)


def expected_answers(query, db):
    return {gid for gid, graph in db.items() if nx_contains(query, graph)}


@pytest.fixture(params=["CFQL", "Grapes"])
def engine(request, small_db):
    eng = create_engine(small_db, request.param, index_max_path_edges=2)
    eng.build_index()
    return eng


class TestClassification:
    def test_oot(self):
        failure = classify_exception(TimeLimitExceeded("deadline expired"))
        assert failure.kind == "oot"

    def test_oom_from_budget_and_from_interpreter(self):
        assert classify_exception(MemoryLimitExceeded("budget")).kind == "oom"
        assert classify_exception(MemoryError()).kind == "oom"

    def test_everything_else_is_error(self):
        failure = classify_exception(KeyError("boom"))
        assert failure.kind == "error"
        assert "KeyError" in failure.message

    def test_failure_result_flags_timeout_only_for_oot(self):
        oot = failure_result("CFQL", "q", QueryFailure(kind="oot"), query_time=1.0)
        assert oot.timed_out and oot.failed and oot.query_time == 1.0
        crash = failure_result("CFQL", "q", QueryFailure(kind="crash"))
        assert crash.failed and not crash.timed_out

    def test_failed_results_have_no_precision(self):
        result = failure_result("CFQL", "q", QueryFailure(kind="error"))
        assert result.precision is None and result.per_si_test_time is None


class TestCreateExecutor:
    def test_names(self):
        assert isinstance(create_executor("inprocess"), InProcessExecutor)
        with pytest.raises(ConfigurationError, match="unknown executor"):
            create_executor("threads")


class TestContainment:
    """One poisoned query must not take down the set (satellite 1)."""

    def kinds_seen(self, engine, queries):
        results = engine.query_many(queries, time_limit=5.0)
        return results

    def test_injected_error_is_contained(self, engine, small_db, square_query):
        queries = [square_query] * 3
        faults.inject("query:start", "error", times=1)
        results = engine.query_many(queries, time_limit=5.0)
        assert results[0].failure is not None
        assert results[0].failure.kind == "error"
        assert results[0].failure.stage == "query"
        expected = expected_answers(square_query, small_db)
        for r in results[1:]:
            assert r.failure is None and r.answers == expected

    def test_injected_oom_is_contained(self, engine, square_query):
        faults.inject("query:start", "oom", times=1)
        results = engine.query_many([square_query] * 2, time_limit=5.0)
        assert results[0].failure.kind == "oom"
        assert not results[0].timed_out
        assert results[1].failure is None

    def test_injected_oot_flags_timeout(self, engine, square_query):
        faults.inject("query:start", "oot", times=1)
        results = engine.query_many([square_query] * 2, time_limit=5.0)
        assert results[0].failure.kind == "oot" and results[0].timed_out
        assert results[1].failure is None

    def test_stage_faults_are_contained(self, engine, square_query):
        faults.inject("filter", "error", times=1)
        result = engine.query(square_query, time_limit=5.0)
        assert result.failure is not None and result.failure.kind == "error"

    def test_aggregation_counts_failures(self, engine, square_query):
        faults.inject("query:start", "oom", times=1)
        faults.inject("query:start", "error", times=1)
        report = aggregate_results(engine.query_many([square_query] * 4))
        assert report.num_failures == 2
        assert report.num_timeouts == 0
        assert report.completed == 2
        assert report.failed_fraction() == pytest.approx(0.5)

    def test_interpreter_memoryerror_is_contained(self, small_db, square_query):
        pipeline = create_pipeline("CFQL")

        def exploding(*args, **kwargs):
            raise MemoryError

        pipeline.matcher.build_candidates = exploding
        engine = SubgraphQueryEngine(small_db, pipeline)
        result = engine.query(square_query)
        assert result.failure is not None and result.failure.kind == "oom"


class TestFallback:
    """Graceful degradation from a failed index build (tentpole part 3)."""

    def test_without_fallback_build_raises(self, small_db):
        engine = create_engine(small_db, "Grapes", index_max_trie_nodes=2)
        with pytest.raises(MemoryLimitExceeded):
            engine.build_index()

    def test_real_budget_oom_degrades_ifv_to_cfql(self, small_db, square_query):
        engine = create_engine(small_db, "Grapes", index_max_trie_nodes=2)
        engine.build_index(fallback=True)
        assert engine.degraded and engine.degraded_reason == "OOM"
        assert isinstance(engine.pipeline, VcFVPipeline)
        assert engine.pipeline.name == "Grapes"  # attribution is preserved
        result = engine.query(square_query)
        assert result.answers == expected_answers(square_query, small_db)

    def test_injected_index_oot_degrades(self, small_db, square_query):
        engine = create_engine(small_db, "Grapes")
        faults.inject("index.build", "oot")
        engine.build_index(fallback=True)
        assert engine.degraded and engine.degraded_reason == "OOT"
        result = engine.query(square_query)
        assert result.answers == expected_answers(square_query, small_db)

    def test_ivcfv_falls_back_to_its_own_matcher(self, small_db, square_query):
        engine = create_engine(small_db, "vcGrapes")
        original_matcher = engine.pipeline.matcher
        faults.inject("index.build", "oom")
        engine.build_index(fallback=True)
        assert isinstance(engine.pipeline, VcFVPipeline)
        assert engine.pipeline.matcher is original_matcher
        result = engine.query(square_query)
        assert result.answers == expected_answers(square_query, small_db)

    def test_fallback_pipeline_rejects_index_free(self):
        with pytest.raises(ConfigurationError):
            fallback_pipeline(create_pipeline("CFQL"))
        with pytest.raises(ConfigurationError):
            fallback_pipeline(NaiveFVPipeline.__new__(NaiveFVPipeline))

    def test_fallback_preserves_names(self):
        for name in ("Grapes", "GGSX", "CT-Index", "vcGrapes", "vcGGSX"):
            pipeline = create_pipeline(name)
            assert isinstance(pipeline, (IvcFVPipeline,)) or pipeline.uses_index
            assert fallback_pipeline(pipeline).name == name

    def test_degraded_flag_reaches_report(self, small_db, square_query):
        engine = create_engine(small_db, "Grapes", index_max_trie_nodes=2)
        engine.build_index(fallback=True)
        report = aggregate_results(
            engine.query_many([square_query] * 2), degraded=engine.degraded
        )
        assert report.degraded
        assert report.to_dict()["degraded"]
