"""Tests for repro.utils.timing (Timer and Deadline)."""

from __future__ import annotations

import time

import pytest

from repro.utils.errors import TimeLimitExceeded
from repro.utils.timing import Deadline, Timer


class TestDeadline:
    def test_unlimited_never_expires(self):
        deadline = Deadline(None)
        assert deadline.unlimited
        assert not deadline.expired()
        assert deadline.remaining() is None
        for _ in range(10_000):
            deadline.check()  # must never raise

    def test_zero_budget_expires_immediately(self):
        deadline = Deadline(0.0)
        assert deadline.expired()

    def test_check_raises_after_expiry(self):
        deadline = Deadline(0.0)
        with pytest.raises(TimeLimitExceeded):
            for _ in range(10_000):
                deadline.check()

    def test_check_is_strided(self):
        """A freshly expired deadline may survive a few checks (the clock
        is only read every stride) but must raise within one stride."""
        deadline = Deadline(0.0)
        raised_at = None
        try:
            for i in range(1000):
                deadline.check()
        except TimeLimitExceeded:
            raised_at = i
        assert raised_at is not None
        assert raised_at < 512

    def test_remaining_decreases(self):
        deadline = Deadline(10.0)
        first = deadline.remaining()
        time.sleep(0.01)
        second = deadline.remaining()
        assert second < first <= 10.0

    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError):
            Deadline(-1.0)

    def test_long_deadline_not_expired(self):
        assert not Deadline(3600.0).expired()


class TestDeadlineSerialization:
    """Deadlines cross process boundaries as their remaining budget: the
    absolute perf_counter expiry is meaningless in another process."""

    def test_from_remaining_none_is_unlimited(self):
        assert Deadline.from_remaining(None).unlimited

    def test_from_remaining_clamps_negative(self):
        deadline = Deadline.from_remaining(-5.0)
        assert deadline.expired()

    def test_pickle_preserves_unlimited(self):
        import pickle

        clone = pickle.loads(pickle.dumps(Deadline(None)))
        assert clone.unlimited

    def test_pickle_preserves_remaining_budget(self):
        import pickle

        original = Deadline(60.0)
        clone = pickle.loads(pickle.dumps(original))
        assert not clone.unlimited
        assert clone.remaining() == pytest.approx(original.remaining(), abs=0.5)

    def test_pickled_expired_deadline_stays_expired(self):
        import pickle

        clone = pickle.loads(pickle.dumps(Deadline(0.0)))
        assert clone.expired()
        with pytest.raises(TimeLimitExceeded):
            for _ in range(1000):
                clone.check()


class TestTimer:
    def test_context_manager_accumulates(self):
        timer = Timer()
        with timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.01
        with timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.02

    def test_start_stop(self):
        timer = Timer()
        timer.start()
        assert timer.running
        elapsed = timer.stop()
        assert elapsed == timer.elapsed >= 0.0
        assert not timer.running

    def test_double_start_rejected(self):
        timer = Timer().start()
        with pytest.raises(RuntimeError):
            timer.start()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_reset(self):
        timer = Timer()
        with timer:
            pass
        timer.reset()
        assert timer.elapsed == 0.0
        assert not timer.running
