"""Tests for repro.utils.timing (Timer and Deadline)."""

from __future__ import annotations

import time

import pytest

from repro.utils.errors import TimeLimitExceeded
from repro.utils.timing import Deadline, Timer


class TestDeadline:
    def test_unlimited_never_expires(self):
        deadline = Deadline(None)
        assert deadline.unlimited
        assert not deadline.expired()
        assert deadline.remaining() is None
        for _ in range(10_000):
            deadline.check()  # must never raise

    def test_zero_budget_expires_immediately(self):
        deadline = Deadline(0.0)
        assert deadline.expired()

    def test_check_raises_after_expiry(self):
        deadline = Deadline(0.0)
        with pytest.raises(TimeLimitExceeded):
            for _ in range(10_000):
                deadline.check()

    def test_check_is_strided(self):
        """A freshly expired deadline may survive a few checks (the clock
        is only read every stride) but must raise within one stride."""
        deadline = Deadline(0.0)
        raised_at = None
        try:
            for i in range(1000):
                deadline.check()
        except TimeLimitExceeded:
            raised_at = i
        assert raised_at is not None
        assert raised_at < 512

    def test_check_every_detects_expiry_within_one_stride(self):
        """``check_every(k)`` retires ``k`` units of work per call; an
        expired deadline must be noticed before a full stride (256 units)
        of additional work has been retired."""
        deadline = Deadline(0.0)
        work_done = 0
        with pytest.raises(TimeLimitExceeded):
            for _ in range(1000):
                deadline.check_every(8)
                work_done += 8
        assert work_done <= 256

    def test_check_every_large_batch_raises_immediately(self):
        """A single batch at least one stride wide must poll the clock on
        the very first call."""
        deadline = Deadline(0.0)
        with pytest.raises(TimeLimitExceeded):
            deadline.check_every(256)

    def test_check_every_unlimited_never_raises(self):
        deadline = Deadline(None)
        for _ in range(100):
            deadline.check_every(10_000)  # must never raise

    def test_remaining_decreases(self):
        deadline = Deadline(10.0)
        first = deadline.remaining()
        time.sleep(0.01)
        second = deadline.remaining()
        assert second < first <= 10.0

    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError):
            Deadline(-1.0)

    def test_long_deadline_not_expired(self):
        assert not Deadline(3600.0).expired()


class TestDeadlineSerialization:
    """Deadlines cross process boundaries as their remaining budget: the
    absolute perf_counter expiry is meaningless in another process."""

    def test_from_remaining_none_is_unlimited(self):
        assert Deadline.from_remaining(None).unlimited

    def test_from_remaining_clamps_negative(self):
        deadline = Deadline.from_remaining(-5.0)
        assert deadline.expired()

    def test_pickle_preserves_unlimited(self):
        import pickle

        clone = pickle.loads(pickle.dumps(Deadline(None)))
        assert clone.unlimited

    def test_pickle_preserves_remaining_budget(self):
        import pickle

        original = Deadline(60.0)
        clone = pickle.loads(pickle.dumps(original))
        assert not clone.unlimited
        assert clone.remaining() == pytest.approx(original.remaining(), abs=0.5)

    def test_pickled_expired_deadline_stays_expired(self):
        import pickle

        clone = pickle.loads(pickle.dumps(Deadline(0.0)))
        assert clone.expired()
        with pytest.raises(TimeLimitExceeded):
            for _ in range(1000):
                clone.check()


class TestTimer:
    def test_context_manager_accumulates(self):
        timer = Timer()
        with timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.01
        with timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.02

    def test_start_stop(self):
        timer = Timer()
        timer.start()
        assert timer.running
        elapsed = timer.stop()
        assert elapsed == timer.elapsed >= 0.0
        assert not timer.running

    def test_double_start_rejected(self):
        timer = Timer().start()
        with pytest.raises(RuntimeError):
            timer.start()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_reset(self):
        timer = Timer()
        with timer:
            pass
        timer.reset()
        assert timer.elapsed == 0.0
        assert not timer.running


class TestLatencyHistogram:
    def make(self, values, **kwargs):
        from repro.utils.timing import LatencyHistogram

        hist = LatencyHistogram(**kwargs)
        for value in values:
            hist.record(value)
        return hist

    def test_empty(self):
        hist = self.make([])
        assert hist.count == 0
        assert hist.mean == 0.0
        assert hist.percentile(50) == 0.0
        assert hist.summary()["count"] == 0

    def test_percentiles_within_one_growth_factor(self):
        """The documented accuracy contract: a reported percentile is the
        bucket upper bound, at most one growth factor above the true
        order statistic (and never above the recorded maximum)."""
        values = [i / 1000.0 for i in range(1, 1001)]  # 1ms .. 1s
        hist = self.make(values)
        for p in (50, 90, 95, 99, 100):
            true = values[max(0, int(len(values) * p / 100) - 1)]
            reported = hist.percentile(p)
            assert true <= reported <= true * hist.growth + 1e-12

    def test_max_is_exact(self):
        hist = self.make([0.002, 0.5, 0.123])
        assert hist.max_value == 0.5
        assert hist.percentile(100) == 0.5

    def test_mean_is_exact(self):
        hist = self.make([0.1, 0.2, 0.3])
        assert hist.mean == pytest.approx(0.2)

    def test_negative_values_clamp_to_zero(self):
        hist = self.make([-1.0, 0.5])
        assert hist.count == 2
        assert hist.total == 0.5

    def test_merge_equals_single_histogram(self):
        """Per-thread histograms folded together must be indistinguishable
        from one histogram that saw every observation."""
        import random

        rng = random.Random(7)
        values = [rng.uniform(1e-5, 2.0) for _ in range(500)]
        combined = self.make(values)
        part_a = self.make(values[:200])
        part_b = self.make(values[200:])
        part_a.merge(part_b)
        assert part_a.counts == combined.counts
        assert part_a.count == combined.count
        assert part_a.total == pytest.approx(combined.total)
        assert part_a.max_value == combined.max_value
        for p in (50, 95, 99):
            assert part_a.percentile(p) == combined.percentile(p)

    def test_merge_rejects_different_layouts(self):
        from repro.utils.timing import LatencyHistogram

        hist = LatencyHistogram()
        with pytest.raises(ValueError):
            hist.merge(LatencyHistogram(growth=2.0))
        with pytest.raises(ValueError):
            hist.merge(LatencyHistogram(num_buckets=16))

    def test_dict_round_trip(self):
        import json

        from repro.utils.timing import LatencyHistogram

        hist = self.make([0.001, 0.01, 0.01, 3.0])
        data = json.loads(json.dumps(hist.to_dict()))
        back = LatencyHistogram.from_dict(data)
        assert back.counts == hist.counts
        assert back.count == hist.count
        assert back.max_value == hist.max_value
        assert back.summary() == hist.summary()

    def test_overflow_lands_in_last_bucket(self):
        from repro.utils.timing import LatencyHistogram

        hist = LatencyHistogram(min_value=1e-3, growth=2.0, num_buckets=4)
        hist.record(1e9)  # far past the covered range
        assert hist.counts[-1] == 1
        assert hist.percentile(100) == 1e9  # max still exact

    def test_invalid_parameters(self):
        from repro.utils.timing import LatencyHistogram

        with pytest.raises(ValueError):
            LatencyHistogram(min_value=0.0)
        with pytest.raises(ValueError):
            LatencyHistogram(growth=1.0)
        with pytest.raises(ValueError):
            LatencyHistogram(num_buckets=1)
        with pytest.raises(ValueError):
            LatencyHistogram().percentile(101)
