"""Tests for repro.matching.vf2."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.graph import Graph
from repro.matching import VF2Matcher
from repro.utils.errors import TimeLimitExceeded
from repro.utils.timing import Deadline

from helpers import (
    nx_monomorphism_count,
    paper_like_data,
    paper_like_query,
    path_graph,
    triangle,
)
from strategies import matching_instances


class TestBasics:
    def test_square_query_found_in_data(self):
        assert VF2Matcher().exists(paper_like_query(), paper_like_data())

    def test_count_triangle_automorphisms(self):
        assert VF2Matcher().count(triangle(), triangle()) == 6

    def test_non_induced_semantics(self):
        """A path must match inside a triangle (extra edge allowed)."""
        assert VF2Matcher().exists(path_graph([0, 0, 0]), triangle())

    def test_label_mismatch(self):
        assert not VF2Matcher().exists(triangle(1), triangle(0))

    def test_query_larger_than_data(self):
        assert VF2Matcher().count(path_graph([0, 0, 0]), path_graph([0, 0])) == 0

    def test_single_vertex_query(self):
        q = Graph.from_edge_list([1], [])
        g = path_graph([0, 1, 1])
        assert VF2Matcher().count(q, g) == 2

    def test_empty_query(self):
        q = Graph.from_edge_list([], [])
        outcome = VF2Matcher().run(q, triangle())
        assert outcome.found and outcome.num_embeddings == 1

    def test_find_all_mappings_are_valid(self):
        q = paper_like_query()
        g = paper_like_data()
        for mapping in VF2Matcher().find_all(q, g):
            assert len(set(mapping.values())) == q.num_vertices
            for u in q.vertices():
                assert q.label(u) == g.label(mapping[u])
            for u, v in q.edges():
                assert g.has_edge(mapping[u], mapping[v])


class TestLimitsAndDeadlines:
    def test_limit_stops_after_first(self):
        outcome = VF2Matcher().run(triangle(), triangle(), limit=1)
        assert outcome.num_embeddings == 1
        assert not outcome.completed

    def test_deadline_expiry_raises(self):
        g = Graph.from_edge_list(
            [0] * 10, [(u, v) for u in range(10) for v in range(u + 1, 10)]
        )
        with pytest.raises(TimeLimitExceeded):
            VF2Matcher().run(triangle(), g, deadline=Deadline(0.0))

    def test_recursion_calls_counted(self):
        outcome = VF2Matcher().run(triangle(), triangle())
        assert outcome.recursion_calls > 0


class TestOrderHeuristics:
    def test_degree_heuristic_same_answers(self):
        q, g = paper_like_query(), paper_like_data()
        assert (
            VF2Matcher("degree").count(q, g) == VF2Matcher("id").count(q, g)
        )

    def test_degree_variant_is_named(self):
        assert VF2Matcher("degree").name == "VF2-degree"

    def test_unknown_heuristic_rejected(self):
        with pytest.raises(ValueError):
            VF2Matcher("random")


class TestAgainstOracle:
    @given(matching_instances())
    @settings(max_examples=50, deadline=None)
    def test_count_matches_networkx(self, instance):
        query, data = instance
        assert VF2Matcher().count(query, data) == nx_monomorphism_count(query, data)

    @given(matching_instances(guaranteed_match=True))
    @settings(max_examples=30, deadline=None)
    def test_sampled_queries_always_found(self, instance):
        query, data = instance
        assert VF2Matcher().exists(query, data)
