"""Unit tests for the per-shard label summary and its persistence.

The summary is the router's pruning oracle, so the properties that
matter are (a) soundness — ``can_contain`` returning False really means
no graph in the summarised set can embed the query — and (b) that the
incrementally maintained counts always equal a from-scratch rebuild,
including across the persistence round-trip and its staleness rules.
"""

from __future__ import annotations

import json

import pytest

from repro.core import SubgraphQueryEngine, create_engine, create_pipeline
from repro.graph import GraphDatabase, generate_database
from repro.graph.labeled_graph import Graph
from repro.shard.host import recover_summary
from repro.shard.summary import ShardSummary
from repro.store import IndexStore
from repro.workloads.querysets import generate_query_set


@pytest.fixture(scope="module")
def db():
    return generate_database(
        num_graphs=16, num_vertices=12, avg_degree=2.6, num_labels=6, seed=41,
        name="summary-prop",
    )


def test_incremental_equals_from_scratch(db):
    incremental = ShardSummary()
    for _, graph in db.items():
        incremental.add_graph(graph)
    assert incremental == ShardSummary.from_database(db)
    assert incremental.graphs == len(db)


def test_remove_inverts_add(db):
    summary = ShardSummary.from_database(db)
    victims = [db[gid] for gid in list(db.ids())[:5]]
    for graph in victims:
        summary.remove_graph(graph)
    survivors = GraphDatabase()
    for gid, graph in db.items():
        if graph not in victims:
            survivors.add_graph_with_id(gid, graph)
    assert summary == ShardSummary.from_database(survivors)
    for graph in victims:
        summary.add_graph(graph)
    assert summary == ShardSummary.from_database(db)


def test_empty_summary_contains_nothing():
    summary = ShardSummary()
    query = Graph.from_edge_list([0, 1], [(0, 1)])
    assert not summary.can_contain(query)


def test_can_contain_is_sound(db):
    """Whenever the summary says "cannot contain", the real engine finds
    zero answers in the summarised set — for every generated query."""
    summary = ShardSummary.from_database(db)
    queries = list(generate_query_set(db, 4, False, size=8, seed=42))
    # Force some definitely-prunable queries in: labels the db never uses.
    queries.append(Graph.from_edge_list([97, 98], [(0, 1)], name="alien"))
    with create_engine(db, "Grapes") as engine:
        engine.build_index()
        results = engine.query_many(queries)
    pruned_any = False
    for query, result in zip(queries, results):
        if not summary.can_contain(query):
            pruned_any = True
            assert result.answers == set()
    assert pruned_any  # the alien query at minimum


def test_dict_round_trip(db):
    summary = ShardSummary.from_database(db)
    data = summary.to_dict()
    json.dumps(data)  # must be JSON-serialisable as-is
    assert ShardSummary.from_dict(data) == summary


def test_from_dict_rejects_unknown_format(db):
    data = ShardSummary.from_database(db).to_dict()
    data["format"] = 999
    with pytest.raises(ValueError, match="format"):
        ShardSummary.from_dict(data)


# ---------------------------------------------------------------------------
# Persistence + staleness (recover_summary)
# ---------------------------------------------------------------------------


def _engine(db, store_dir):
    # Each engine gets its own database copy: WAL replay mutates it.
    clone = GraphDatabase(name=db.name)
    for gid, graph in db.items():
        clone.add_graph_with_id(gid, graph)
    engine = SubgraphQueryEngine(clone, create_pipeline("Grapes"))
    engine.build_index(store=IndexStore(store_dir))
    return engine


@pytest.fixture()
def small_db():
    return generate_database(
        num_graphs=6, num_vertices=8, avg_degree=2.2, num_labels=4, seed=43,
        name="summary-store",
    )


def test_recover_summary_storeless_builds(small_db):
    engine = SubgraphQueryEngine(small_db, create_pipeline("Grapes"))
    engine.build_index()
    summary, source = recover_summary(engine)
    assert source == "built"
    assert summary == ShardSummary.from_database(engine.db)


def test_recover_summary_persists_then_loads(small_db, tmp_path):
    engine = _engine(small_db, tmp_path)
    summary, source = recover_summary(engine)
    assert source == "rebuild"  # no file yet -> rebuilt and persisted
    engine.close()
    engine = _engine(small_db, tmp_path)
    loaded, source = recover_summary(engine)
    assert source == "store"  # clean warm start -> the persisted file
    assert loaded == summary
    engine.close()


def test_recover_summary_stale_wal_rebuilds(small_db, tmp_path):
    engine = _engine(small_db, tmp_path)
    recover_summary(engine)
    # A mutation journaled after the save makes the file stale: its
    # wal_seq stamp no longer matches the journal head.
    extra = generate_database(
        num_graphs=1, num_vertices=6, avg_degree=2.0, num_labels=4, seed=44,
    )
    engine.add_graph(extra[extra.ids()[0]])
    engine.close()
    engine = _engine(small_db, tmp_path)  # WAL replay restores the add
    summary, source = recover_summary(engine)
    assert source == "rebuild"
    assert summary == ShardSummary.from_database(engine.db)
    engine.close()
    # ... and the rebuild re-stamped the file: next start is warm again.
    engine = _engine(small_db, tmp_path)
    _, source = recover_summary(engine)
    assert source == "store"
    engine.close()


def test_recover_summary_corrupt_file_rebuilds(small_db, tmp_path):
    engine = _engine(small_db, tmp_path)
    expected, _ = recover_summary(engine)
    engine.close()
    (tmp_path / "summary.json").write_text("{ torn write")
    engine = _engine(small_db, tmp_path)
    summary, source = recover_summary(engine)
    assert source == "rebuild"
    assert summary == expected
    engine.close()
