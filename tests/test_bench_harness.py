"""Tests for repro.bench.harness (at a deliberately tiny configuration)."""

from __future__ import annotations

import pytest

from repro.bench import (
    BenchConfig,
    build_engine,
    get_query_sets,
    get_real_dataset,
    get_synthetic_sweep,
    real_world_matrix,
    run_query_set,
)

TINY = BenchConfig(
    dataset_scale=0.02,
    queries_per_set=2,
    edge_counts=(4,),
    query_time_limit=2.0,
    index_time_limit=10.0,
    synthetic_num_graphs=4,
    synthetic_num_vertices=12,
    synthetic_sweeps=(("num_labels", (2, 4)),),
)


class TestConfig:
    def test_frozen_and_hashable(self):
        assert hash(BenchConfig()) == hash(BenchConfig())
        with pytest.raises(Exception):
            BenchConfig().seed = 5  # type: ignore[misc]

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "2.0")
        monkeypatch.setenv("REPRO_BENCH_QUERIES", "9")
        monkeypatch.setenv("REPRO_BENCH_QUERY_LIMIT", "3.5")
        monkeypatch.setenv("REPRO_BENCH_INDEX_LIMIT", "45")
        config = BenchConfig.from_env()
        assert config.dataset_scale == pytest.approx(0.30)
        assert config.queries_per_set == 9
        assert config.query_time_limit == 3.5
        assert config.index_time_limit == 45.0

    def test_from_env_defaults(self, monkeypatch):
        for var in ("REPRO_BENCH_SCALE", "REPRO_BENCH_QUERIES",
                    "REPRO_BENCH_QUERY_LIMIT", "REPRO_BENCH_INDEX_LIMIT"):
            monkeypatch.delenv(var, raising=False)
        assert BenchConfig.from_env() == BenchConfig()


class TestCaching:
    def test_datasets_cached(self):
        assert get_real_dataset("AIDS", TINY) is get_real_dataset("AIDS", TINY)

    def test_query_sets_cached_and_shaped(self):
        sets = get_query_sets("AIDS", TINY)
        assert set(sets) == {"Q4S", "Q4D"}
        assert all(len(qs) == 2 for qs in sets.values())

    def test_synthetic_sweep_cached(self):
        sweep = get_synthetic_sweep("num_labels", TINY)
        assert set(sweep) == {2, 4}
        assert sweep is get_synthetic_sweep("num_labels", TINY)


class TestBuildEngine:
    def test_success_returns_seconds(self):
        db = get_real_dataset("AIDS", TINY)
        engine, status = build_engine(db, "Grapes", TINY)
        assert engine is not None
        assert isinstance(status, float) and status > 0.0

    def test_vcfv_builds_instantly(self):
        db = get_real_dataset("AIDS", TINY)
        engine, status = build_engine(db, "CFQL", TINY)
        assert engine is not None and status == 0.0

    def test_oot_returns_marker(self):
        db = get_real_dataset("PCM", TINY)
        config = BenchConfig(
            dataset_scale=0.05, index_time_limit=0.0, queries_per_set=1,
        )
        engine, status = build_engine(db, "Grapes", config)
        assert engine is None and status == "OOT"

    def test_oom_returns_marker(self):
        db = get_real_dataset("PCM", TINY)
        config = BenchConfig(dataset_scale=0.05, index_feature_budget=2)
        engine, status = build_engine(db, "Grapes", config)
        assert engine is None and status == "OOM"


class TestRunQuerySet:
    def test_report_shape(self):
        db = get_real_dataset("AIDS", TINY)
        engine, _ = build_engine(db, "CFQL", TINY)
        assert engine is not None
        report = run_query_set(engine, get_query_sets("AIDS", TINY)["Q4S"], TINY)
        assert report.algorithm == "CFQL"
        assert report.num_queries == 2
        assert report.avg_query_time > 0.0


class TestSyntheticMatrix:
    def test_mini_sweep_matrix(self):
        from repro.bench import synthetic_matrix

        matrix = synthetic_matrix(
            TINY, algorithms=("CFQL",), index_algorithms=("Grapes",)
        )
        # Reports for the vcFV algorithm at every sweep point.
        for value in (2, 4):
            report = matrix.reports[("num_labels", value, "CFQL")]
            assert report is not None and report.num_queries == TINY.queries_per_set
            assert ("num_labels", value) in matrix.dataset_memory
            # Grapes was indexing-only here: build record, no report.
            assert ("num_labels", value, "Grapes") in matrix.index_build
            assert ("num_labels", value, "Grapes") not in matrix.reports

    def test_cached(self):
        from repro.bench import synthetic_matrix

        a = synthetic_matrix(TINY, algorithms=("CFQL",), index_algorithms=("Grapes",))
        b = synthetic_matrix(TINY, algorithms=("CFQL",), index_algorithms=("Grapes",))
        assert a is b


class TestRealWorldMatrix:
    def test_matrix_populated_and_cached(self):
        matrix = real_world_matrix(TINY, datasets=("AIDS",), algorithms=("CFQL", "Grapes"))
        again = real_world_matrix(TINY, datasets=("AIDS",), algorithms=("CFQL", "Grapes"))
        assert matrix is again
        assert ("AIDS", "Grapes") in matrix.index_build
        assert matrix.reports[("AIDS", "CFQL", "Q4S")] is not None
        assert matrix.dataset_memory["AIDS"] > 0
        assert matrix.auxiliary_memory[("AIDS", "CFQL")] > 0
        assert matrix.query_set_names() == ["Q4S", "Q4D"]

    def test_candidate_counts_cover_answers(self):
        matrix = real_world_matrix(TINY, datasets=("AIDS",), algorithms=("CFQL", "Grapes"))
        cfql = matrix.reports[("AIDS", "CFQL", "Q4S")]
        grapes = matrix.reports[("AIDS", "Grapes", "Q4S")]
        assert cfql is not None and grapes is not None
        assert cfql.avg_candidates is not None and cfql.avg_candidates > 0


class TestIndexStoreConfig:
    def test_jobs_below_one_rejected(self):
        from repro.utils.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            BenchConfig(jobs=0)
        with pytest.raises(ConfigurationError):
            BenchConfig(jobs=-2)

    def test_env_jobs_below_one_rejected(self, monkeypatch):
        from repro.utils.errors import ConfigurationError

        monkeypatch.setenv("REPRO_BENCH_JOBS", "0")
        with pytest.raises(ConfigurationError) as err:
            BenchConfig.from_env()
        assert "REPRO_BENCH_JOBS" in str(err.value)

    def test_env_index_store(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_BENCH_INDEX_STORE", str(tmp_path / "idx"))
        assert BenchConfig.from_env().index_store == str(tmp_path / "idx")

    def test_matrix_saves_and_reuses_snapshots(self, tmp_path):
        import dataclasses

        config = dataclasses.replace(TINY, index_store=str(tmp_path / "idx"))
        cold = real_world_matrix(config, datasets=("AIDS",),
                                 algorithms=("Grapes",))
        snaps = sorted((tmp_path / "idx").rglob("*.snap"))
        assert [p.name for p in snaps] == ["Grapes.snap"]
        assert "real_AIDS" in str(snaps[0].parent)
        # A fresh matrix run (cache cleared) warm-starts and reproduces
        # the exact same reports.
        real_world_matrix.cache_clear()
        warm = real_world_matrix(config, datasets=("AIDS",),
                                 algorithms=("Grapes",))
        assert set(warm.reports) == set(cold.reports)
        for key, report in cold.reports.items():
            if report is None:
                assert warm.reports[key] is None
            else:
                assert warm.reports[key].num_queries == report.num_queries
                assert (warm.reports[key].filtering_precision
                        == report.filtering_precision)
        real_world_matrix.cache_clear()

    def test_journal_fingerprint_ignores_index_store(self, tmp_path):
        import dataclasses

        journal_path = str(tmp_path / "run.jsonl")
        config = dataclasses.replace(TINY, journal=journal_path)
        real_world_matrix(config, datasets=("AIDS",), algorithms=("CFQL",))
        real_world_matrix.cache_clear()
        # Adding an index store must not invalidate the journal.
        with_store = dataclasses.replace(
            config, index_store=str(tmp_path / "idx")
        )
        real_world_matrix(with_store, datasets=("AIDS",), algorithms=("CFQL",))
        real_world_matrix.cache_clear()


class TestShardedConfig:
    def test_shards_below_one_rejected(self):
        import dataclasses

        from repro.utils.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="shards"):
            dataclasses.replace(TINY, shards=0)

    def test_env_shards(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SHARDS", "3")
        assert BenchConfig.from_env().shards == 3

    def test_sharded_engine_matches_unsharded_reports(self):
        import dataclasses

        db = get_real_dataset("AIDS", TINY)
        query_set = get_query_sets("AIDS", TINY)["Q4S"]
        plain, _ = build_engine(db, "Grapes", TINY)
        sharded_config = dataclasses.replace(TINY, shards=2)
        sharded, _ = build_engine(db, "Grapes", sharded_config)
        try:
            assert type(sharded).__name__ == "ShardedEngine"
            base = run_query_set(plain, query_set, TINY)
            over = run_query_set(sharded, query_set, sharded_config)
            assert over.num_queries == base.num_queries
            assert over.num_failures == base.num_failures == 0
            assert over.avg_candidates == base.avg_candidates
            assert over.filtering_precision == base.filtering_precision
        finally:
            plain.close()
            sharded.close()

    def test_sharded_store_combination_rejected(self, tmp_path):
        import dataclasses

        from repro.store import IndexStore
        from repro.utils.errors import ConfigurationError

        db = get_real_dataset("AIDS", TINY)
        config = dataclasses.replace(TINY, shards=2)
        with pytest.raises(ConfigurationError, match="index store"):
            build_engine(
                db, "Grapes", config, store=IndexStore(tmp_path / "s")
            )
