"""Tests for repro.service.protocol (wire codec, addresses, framing)."""

from __future__ import annotations

import pytest

from repro.service.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    decode_line,
    encode_message,
    error_response,
    format_address,
    graph_from_wire,
    graph_key,
    graph_to_wire,
    parse_address,
)

from helpers import path_graph, triangle


class TestGraphCodec:
    def test_round_trip_preserves_structure(self):
        graph = triangle(2)
        rebuilt = graph_from_wire(graph_to_wire(graph))
        assert list(rebuilt.labels) == list(graph.labels)
        assert sorted(map(tuple, rebuilt.edges())) == sorted(
            map(tuple, graph.edges())
        )

    def test_round_trip_preserves_name(self):
        graph = graph_from_wire(
            {"labels": [0, 1, 2], "edges": [[0, 1], [1, 2]], "name": "q7"}
        )
        wire = graph_to_wire(graph)
        assert wire["name"] == "q7"
        assert graph_from_wire(wire).name == "q7"

    def test_wire_form_is_json_safe(self):
        import json

        wire = graph_to_wire(path_graph([0, 0, 1]))
        assert graph_from_wire(json.loads(json.dumps(wire))).num_vertices == 3

    @pytest.mark.parametrize("wire", [
        None,
        [],
        "graph",
        {},                                        # no labels
        {"labels": []},                            # empty labels
        {"labels": [0, -1]},                       # negative label
        {"labels": [0, True]},                     # bool masquerading as int
        {"labels": [0, 1], "edges": "0-1"},        # edges not a list
        {"labels": [0, 1], "edges": [[0]]},        # not a pair
        {"labels": [0, 1], "edges": [[0, 2]]},     # endpoint out of range
        {"labels": [0, 1], "edges": [[1, 1]]},     # self loop
        {"labels": [0, 1], "edges": [[0, 1], [1, 0]]},  # duplicate edge
        {"labels": [0, 1], "name": 3},             # non-string name
    ])
    def test_malformed_graphs_rejected(self, wire):
        with pytest.raises(ProtocolError):
            graph_from_wire(wire)


class TestGraphKey:
    def test_same_graph_same_key(self):
        assert graph_key(triangle(1)) == graph_key(triangle(1))

    def test_edge_order_does_not_matter(self):
        a = graph_from_wire({"labels": [0, 0, 0], "edges": [[0, 1], [1, 2]]})
        b = graph_from_wire({"labels": [0, 0, 0], "edges": [[2, 1], [0, 1]]})
        assert graph_key(a) == graph_key(b)

    def test_labels_distinguish(self):
        a = graph_from_wire({"labels": [0, 0], "edges": [[0, 1]]})
        b = graph_from_wire({"labels": [0, 1], "edges": [[0, 1]]})
        assert graph_key(a) != graph_key(b)

    def test_structure_distinguishes(self):
        a = graph_from_wire({"labels": [0, 0, 0], "edges": [[0, 1], [1, 2]]})
        b = graph_from_wire({"labels": [0, 0, 0], "edges": [[0, 1], [0, 2]]})
        assert graph_key(a) != graph_key(b)


class TestFraming:
    def test_encode_decode_round_trip(self):
        message = {"id": 3, "op": "query", "graph": {"labels": [0]}}
        data = encode_message(message)
        assert data.endswith(b"\n") and b"\n" not in data[:-1]
        assert decode_line(data.strip()) == message

    def test_non_json_rejected(self):
        with pytest.raises(ProtocolError):
            decode_line(b"not json at all {")

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError):
            decode_line(b"[1, 2, 3]")

    def test_oversized_line_rejected(self):
        with pytest.raises(ProtocolError):
            decode_line(b"x" * (MAX_LINE_BYTES + 1))

    def test_error_response_shape(self):
        response = error_response(7, "overloaded", "queue full")
        assert response == {
            "id": 7,
            "ok": False,
            "error": {"code": "overloaded", "message": "queue full"},
        }

    def test_error_response_requires_stable_code(self):
        with pytest.raises(AssertionError):
            error_response(1, "made_up_code", "nope")


class TestAddresses:
    def test_unix_address(self):
        assert parse_address("unix:/tmp/x.sock") == ("unix", "/tmp/x.sock")
        assert format_address("unix", "/tmp/x.sock") == "unix:/tmp/x.sock"

    def test_tcp_address(self):
        assert parse_address("127.0.0.1:7687") == ("tcp", ("127.0.0.1", 7687))
        assert format_address("tcp", ("127.0.0.1", 7687)) == "127.0.0.1:7687"

    def test_empty_host_defaults_to_localhost(self):
        assert parse_address(":7687") == ("tcp", ("127.0.0.1", 7687))

    @pytest.mark.parametrize("text", [
        "unix:",            # no path
        "justaname",        # neither form
        "host:notaport",    # non-numeric port
        "host:70000",       # port out of range
    ])
    def test_bad_addresses_rejected(self, text):
        with pytest.raises(ProtocolError):
            parse_address(text)
