"""Tests for repro.matching.ullmann."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.graph import Graph
from repro.matching import UllmannMatcher
from repro.utils.errors import TimeLimitExceeded
from repro.utils.timing import Deadline

from helpers import nx_monomorphism_count, paper_like_data, paper_like_query, path_graph, triangle
from strategies import matching_instances


class TestBasics:
    def test_square_query_found(self):
        assert UllmannMatcher().exists(paper_like_query(), paper_like_data())

    def test_count_automorphisms(self):
        assert UllmannMatcher().count(triangle(), triangle()) == 6

    def test_non_induced_semantics(self):
        assert UllmannMatcher().exists(path_graph([0, 0, 0]), triangle())

    def test_empty_candidate_row_short_circuits(self):
        outcome = UllmannMatcher().run(triangle(5), triangle(0))
        assert not outcome.found
        assert outcome.recursion_calls == 0

    def test_empty_query(self):
        q = Graph.from_edge_list([], [])
        assert UllmannMatcher().run(q, triangle()).num_embeddings == 1

    def test_limit_one(self):
        outcome = UllmannMatcher().run(triangle(), triangle(), limit=1)
        assert outcome.num_embeddings == 1 and not outcome.completed

    def test_collected_mappings_valid(self):
        q, g = paper_like_query(), paper_like_data()
        for mapping in UllmannMatcher().find_all(q, g):
            for u, v in q.edges():
                assert g.has_edge(mapping[u], mapping[v])

    def test_deadline_expiry_raises(self):
        g = Graph.from_edge_list(
            [0] * 9, [(u, v) for u in range(9) for v in range(u + 1, 9)]
        )
        with pytest.raises(TimeLimitExceeded):
            UllmannMatcher().run(triangle(), g, deadline=Deadline(0.0))


class TestAgainstOracle:
    @given(matching_instances())
    @settings(max_examples=35, deadline=None)
    def test_count_matches_networkx(self, instance):
        query, data = instance
        assert UllmannMatcher().count(query, data) == nx_monomorphism_count(query, data)
