"""Tests for repro.matching.ordering (join-based & path-based orders)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.graph import Graph, bfs_tree, two_core
from repro.matching import (
    CandidateSets,
    join_based_order,
    ldf_candidates,
    path_based_order,
)

from helpers import path_graph, triangle
from strategies import connected_graphs, matching_instances


def _assert_connected_order(query: Graph, order: tuple[int, ...]) -> None:
    assert sorted(order) == list(query.vertices())
    position = {u: i for i, u in enumerate(order)}
    for i, u in enumerate(order):
        if i > 0:
            assert any(position[w] < i for w in query.neighbors(u)), (
                f"{u} has no earlier neighbor in {order}"
            )


class TestJoinBasedOrder:
    def test_starts_at_minimum_candidates(self):
        q = path_graph([0, 1, 2])
        cands = CandidateSets([[1, 2, 3], [4], [5, 6]])
        order = join_based_order(q, cands)
        assert order[0] == 1

    def test_greedy_expansion_prefers_small_sets(self):
        # Star: center 0 with leaves 1..3; candidate sizes force 3 first.
        q = Graph.from_edge_list([0, 1, 1, 1], [(0, 1), (0, 2), (0, 3)])
        cands = CandidateSets([[0], [5, 6, 7], [8, 9], [4]])
        order = join_based_order(q, cands)
        assert order[:2] == (0, 3)

    def test_single_vertex(self):
        q = Graph.from_edge_list([0], [])
        assert join_based_order(q, CandidateSets([[1, 2]])) == (0,)

    def test_disconnected_query_rejected(self):
        q = Graph.from_edge_list([0, 0], [])
        with pytest.raises(ValueError, match="connected"):
            join_based_order(q, CandidateSets([[1], [2]]))

    @given(connected_graphs(min_vertices=1, max_vertices=10))
    @settings(max_examples=50)
    def test_order_is_connected(self, query):
        cands = CandidateSets([[v] for v in query.vertices()])
        _assert_connected_order(query, join_based_order(query, cands))


class TestPathBasedOrder:
    def test_core_vertices_come_first(self):
        # Triangle with a long tail: the 2-core is the triangle.
        q = Graph.from_edge_list(
            [0] * 6, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5)]
        )
        tree = bfs_tree(q, root=0)
        cands = CandidateSets([[1]] * 6)
        order = path_based_order(q, tree, cands, core=two_core(q))
        core = two_core(q)
        core_positions = [i for i, u in enumerate(order) if u in core]
        tail_positions = [i for i, u in enumerate(order) if u not in core]
        assert max(core_positions) < min(tail_positions)

    def test_cheaper_paths_first(self):
        # Star with two leaves of very different candidate counts.
        q = Graph.from_edge_list([0, 1, 1], [(0, 1), (0, 2)])
        tree = bfs_tree(q, root=0)
        cands = CandidateSets([[0], list(range(50)), [1]])
        order = path_based_order(q, tree, cands)
        assert order == (0, 2, 1)

    def test_single_vertex(self):
        q = Graph.from_edge_list([0], [])
        tree = bfs_tree(q, root=0)
        assert path_based_order(q, tree, CandidateSets([[1]])) == (0,)

    @given(matching_instances(guaranteed_match=True))
    @settings(max_examples=40, deadline=None)
    def test_order_is_connected(self, instance):
        query, data = instance
        cands = CandidateSets(ldf_candidates(query, data))
        tree = bfs_tree(query, root=0)
        _assert_connected_order(query, path_based_order(query, tree, cands))

    def test_triangle_all_in_core(self):
        q = triangle()
        tree = bfs_tree(q, root=0)
        order = path_based_order(q, tree, CandidateSets([[1], [2], [3]]))
        _assert_connected_order(q, order)
