"""Tests for the snapshot file format and the atomic write primitives.

Covers repro.utils.fsio (temp-file + fsync + rename) and
repro.store.snapshot (framing, CRCs, version, fingerprint) — the layers
everything else in the store trusts.
"""

from __future__ import annotations

import struct

import pytest

from repro.exec import faults
from repro.graph import GraphDatabase, generate_database
from repro.store import (
    FORMAT_VERSION,
    MAGIC,
    SnapshotError,
    database_fingerprint,
    read_snapshot,
    write_snapshot,
)
from repro.utils.fsio import atomic_write_bytes, atomic_write_text

from helpers import path_graph, triangle

SECTIONS = {"header": b'{"family": "x"}', "index": b"payload-bytes" * 7}


class TestAtomicWrite:
    def test_bytes_round_trip(self, tmp_path):
        target = tmp_path / "out.bin"
        atomic_write_bytes(target, b"\x00\x01\xff")
        assert target.read_bytes() == b"\x00\x01\xff"

    def test_text_round_trip(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "héllo\n")
        assert target.read_text(encoding="utf-8") == "héllo\n"

    def test_creates_parent_directories(self, tmp_path):
        target = tmp_path / "a" / "b" / "out.bin"
        atomic_write_bytes(target, b"x")
        assert target.read_bytes() == b"x"

    def test_replaces_existing_file(self, tmp_path):
        target = tmp_path / "out.bin"
        target.write_bytes(b"old")
        atomic_write_bytes(target, b"new")
        assert target.read_bytes() == b"new"

    def test_no_temp_file_left_behind(self, tmp_path):
        target = tmp_path / "out.bin"
        atomic_write_bytes(target, b"x")
        assert [p.name for p in tmp_path.iterdir()] == ["out.bin"]


class TestSnapshotRoundTrip:
    def test_sections_round_trip(self, tmp_path):
        path = tmp_path / "a.snap"
        write_snapshot(path, SECTIONS)
        assert read_snapshot(path) == SECTIONS

    def test_empty_payloads_round_trip(self, tmp_path):
        path = tmp_path / "a.snap"
        write_snapshot(path, {"header": b"", "index": b""})
        assert read_snapshot(path) == {"header": b"", "index": b""}

    def test_starts_with_magic_and_version(self, tmp_path):
        path = tmp_path / "a.snap"
        write_snapshot(path, SECTIONS)
        raw = path.read_bytes()
        assert raw.startswith(MAGIC)
        assert struct.unpack_from("<I", raw, len(MAGIC))[0] == FORMAT_VERSION

    def test_missing_file(self, tmp_path):
        with pytest.raises(SnapshotError) as err:
            read_snapshot(tmp_path / "nope.snap")
        assert err.value.reason == "missing"


class TestCorruptionDetection:
    """Injected corruption must always be detected, never crash."""

    def _image(self, tmp_path):
        path = tmp_path / "a.snap"
        write_snapshot(path, SECTIONS)
        return path, path.read_bytes()

    def test_every_truncation_detected(self, tmp_path):
        path, image = self._image(tmp_path)
        for n in range(len(image)):
            path.write_bytes(image[:n])
            with pytest.raises(SnapshotError) as err:
                read_snapshot(path)
            assert err.value.reason in ("truncated", "magic", "version", "checksum")

    def test_every_bit_flip_detected_or_isolated(self, tmp_path):
        """Flipping any single byte either raises or changes the payload
        *names* only (payload bytes themselves are CRC-protected, names
        are caught by the header/section checks one layer up)."""
        path, image = self._image(tmp_path)
        for offset in range(len(image)):
            flipped = bytearray(image)
            flipped[offset] ^= 0x01
            path.write_bytes(bytes(flipped))
            try:
                sections = read_snapshot(path)
            except SnapshotError:
                continue
            assert sections != SECTIONS
            assert set(sections) != set(SECTIONS)
            assert sorted(sections.values()) == sorted(SECTIONS.values())

    def test_version_skew_detected(self, tmp_path):
        path, image = self._image(tmp_path)
        skewed = bytearray(image)
        struct.pack_into("<I", skewed, len(MAGIC), FORMAT_VERSION + 1)
        path.write_bytes(bytes(skewed))
        with pytest.raises(SnapshotError) as err:
            read_snapshot(path)
        assert err.value.reason == "version"

    def test_wrong_magic_detected(self, tmp_path):
        path, image = self._image(tmp_path)
        path.write_bytes(b"NOTASNAP" + image[len(MAGIC):])
        with pytest.raises(SnapshotError) as err:
            read_snapshot(path)
        assert err.value.reason == "magic"

    def test_trailing_garbage_detected(self, tmp_path):
        path, image = self._image(tmp_path)
        path.write_bytes(image + b"junk")
        with pytest.raises(SnapshotError) as err:
            read_snapshot(path)
        assert err.value.reason == "truncated"


class TestFaultSites:
    def test_corrupt_fault_damages_the_snapshot(self, tmp_path):
        path = tmp_path / "a.snap"
        faults.inject("store.corrupt_snapshot", "corrupt", arg=3)
        write_snapshot(path, SECTIONS)
        with pytest.raises(SnapshotError):
            read_snapshot(path)

    def test_torn_write_fires_before_publication(self, tmp_path):
        path = tmp_path / "a.snap"
        write_snapshot(path, {"header": b"old"})
        faults.inject("store.torn_write", "error")
        with pytest.raises(Exception):
            write_snapshot(path, SECTIONS)
        # The previous snapshot is still intact — the new image never
        # reached the destination path.
        assert read_snapshot(path) == {"header": b"old"}

    def test_corrupt_fault_matches_by_path(self, tmp_path):
        a, b = tmp_path / "a.snap", tmp_path / "b.snap"
        faults.inject("store.corrupt_snapshot", "corrupt", arg=0, match="b.snap")
        write_snapshot(a, SECTIONS)
        write_snapshot(b, SECTIONS)
        assert read_snapshot(a) == SECTIONS
        with pytest.raises(SnapshotError):
            read_snapshot(b)


class TestDatabaseFingerprint:
    def test_deterministic(self):
        a = generate_database(num_graphs=4, num_vertices=8, avg_degree=2,
                              num_labels=3, seed=1)
        b = generate_database(num_graphs=4, num_vertices=8, avg_degree=2,
                              num_labels=3, seed=1)
        assert database_fingerprint(a) == database_fingerprint(b)

    def test_label_change_changes_fingerprint(self):
        a, b = GraphDatabase(), GraphDatabase()
        a.add_graph(path_graph([0, 1]))
        b.add_graph(path_graph([0, 2]))
        assert database_fingerprint(a) != database_fingerprint(b)

    def test_edge_change_changes_fingerprint(self):
        a, b = GraphDatabase(), GraphDatabase()
        a.add_graph(triangle(0))
        b.add_graph(path_graph([0, 0, 0]))
        assert database_fingerprint(a) != database_fingerprint(b)

    def test_names_do_not_matter(self):
        a, b = GraphDatabase(name="one"), GraphDatabase(name="two")
        a.add_graph(triangle(0))
        b.add_graph(triangle(0))
        assert database_fingerprint(a) == database_fingerprint(b)
