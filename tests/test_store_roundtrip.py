"""Round-trip property per index family: save → load ≡ cold rebuild.

The acceptance bar for the store: for every index family, a snapshot
load must answer exactly like the index it was saved from — identical
candidate sets on a full query workload — and stay within the same
memory envelope.  Plus the negative space: parameter skew, database
skew, and family mismatches must all be refused at load.
"""

from __future__ import annotations

import pytest

from repro.core.algorithms import create_pipeline
from repro.store import IndexStore, SnapshotError, database_fingerprint
from repro.workloads.querysets import generate_query_set

#: Every algorithm whose pipeline carries a persistable index.
FAMILIES = ("Grapes", "GGSX", "CT-Index", "GraphGrep", "TreePi", "SING")


def _queries(db):
    sparse = generate_query_set(db, 4, False, size=4, seed=3).queries
    dense = generate_query_set(db, 6, True, size=4, seed=5).queries
    return list(sparse) + list(dense)


def _fresh_index(name, **kwargs):
    return create_pipeline(name, **kwargs).index


@pytest.mark.parametrize("name", FAMILIES)
class TestRoundTrip:
    def test_identical_candidates_after_reload(self, name, small_db, tmp_path):
        store = IndexStore(tmp_path / "store")
        cold = _fresh_index(name)
        cold.build(small_db)
        store.save(cold, small_db)

        warm = _fresh_index(name)
        header = store.load_into(warm, small_db)
        assert header["family"]
        assert warm.indexed_ids == cold.indexed_ids
        for q in _queries(small_db):
            assert warm.candidates(q) == cold.candidates(q)

    def test_memory_stays_in_envelope(self, name, small_db, tmp_path):
        store = IndexStore(tmp_path / "store")
        cold = _fresh_index(name)
        cold.build(small_db)
        store.save(cold, small_db)
        warm = _fresh_index(name)
        store.load_into(warm, small_db)
        # Reconstructed containers may intern/size slightly differently;
        # the budget-relevant claim is "same magnitude", not byte-equality.
        assert warm.memory_bytes() <= cold.memory_bytes() * 1.5 + 4096

    def test_maintenance_still_works_after_reload(self, name, small_db, tmp_path):
        store = IndexStore(tmp_path / "store")
        cold = _fresh_index(name)
        cold.build(small_db)
        store.save(cold, small_db)
        warm = _fresh_index(name)
        store.load_into(warm, small_db)
        graph = small_db[0]
        new_gid = max(gid for gid, _ in small_db.items()) + 1
        warm.add_graph(new_gid, graph)
        assert new_gid in warm.indexed_ids
        warm.remove_graph(new_gid)
        assert new_gid not in warm.indexed_ids


class TestLoadRefusals:
    def test_parameter_skew_refused(self, small_db, tmp_path):
        store = IndexStore(tmp_path / "store")
        cold = _fresh_index("Grapes", index_max_path_edges=2)
        cold.build(small_db)
        store.save(cold, small_db)
        other = _fresh_index("Grapes", index_max_path_edges=3)
        with pytest.raises(SnapshotError) as err:
            store.load_into(other, small_db)
        assert err.value.reason == "params"

    def test_stale_database_refused(self, small_db, dense_db, tmp_path):
        store = IndexStore(tmp_path / "store")
        cold = _fresh_index("Grapes")
        cold.build(small_db)
        store.save(cold, small_db)
        fresh = _fresh_index("Grapes")
        with pytest.raises(SnapshotError) as err:
            store.load_into(fresh, dense_db)
        assert err.value.reason == "db-fingerprint"

    def test_family_mismatch_refused(self, small_db, tmp_path):
        store = IndexStore(tmp_path / "store")
        grapes = _fresh_index("Grapes")
        grapes.build(small_db)
        path = store.save(grapes, small_db)
        # Masquerade the Grapes snapshot as the GGSX one.
        ggsx = _fresh_index("GGSX")
        path.rename(store.snapshot_path(ggsx.name))
        with pytest.raises(SnapshotError) as err:
            store.load_into(ggsx, small_db)
        assert err.value.reason == "family"

    def test_missing_snapshot_refused(self, small_db, tmp_path):
        store = IndexStore(tmp_path / "store")
        with pytest.raises(SnapshotError) as err:
            store.load_into(_fresh_index("Grapes"), small_db)
        assert err.value.reason == "missing"

    def test_failed_load_leaves_index_untouched(self, small_db, dense_db, tmp_path):
        store = IndexStore(tmp_path / "store")
        cold = _fresh_index("Grapes")
        cold.build(small_db)
        store.save(cold, small_db)
        fresh = _fresh_index("Grapes")
        with pytest.raises(SnapshotError):
            store.load_into(fresh, dense_db)
        assert fresh.indexed_ids == set()


class TestStoreSurface:
    def test_snapshot_listing(self, small_db, tmp_path):
        store = IndexStore(tmp_path / "store")
        assert store.snapshots() == []
        for name in ("Grapes", "GGSX"):
            index = _fresh_index(name)
            index.build(small_db)
            store.save(index, small_db)
        assert [p.name for p in store.snapshots()] == ["GGSX.snap", "Grapes.snap"]
        assert store.has_snapshot("Grapes")
        assert not store.has_snapshot("CT-Index")

    def test_verify_snapshot_checks_fingerprint(self, small_db, dense_db, tmp_path):
        store = IndexStore(tmp_path / "store")
        index = _fresh_index("Grapes")
        index.build(small_db)
        path = store.save(index, small_db)
        header = store.verify_snapshot(path, db=small_db)
        assert header["db_fingerprint"] == database_fingerprint(small_db)
        with pytest.raises(SnapshotError) as err:
            store.verify_snapshot(path, db=dense_db)
        assert err.value.reason == "db-fingerprint"

    def test_save_overwrites_previous_snapshot(self, small_db, dense_db, tmp_path):
        store = IndexStore(tmp_path / "store")
        index = _fresh_index("Grapes")
        index.build(small_db)
        store.save(index, small_db)
        newer = _fresh_index("Grapes")
        newer.build(dense_db)
        store.save(newer, dense_db)
        warm = _fresh_index("Grapes")
        store.load_into(warm, dense_db)
        assert warm.indexed_ids == newer.indexed_ids
