"""Tests for repro.core.engine (SubgraphQueryEngine)."""

from __future__ import annotations

import pytest

from repro.core import create_engine
from repro.graph import Graph, GraphDatabase
from repro.utils.errors import ConfigurationError, TimeLimitExceeded

from helpers import path_graph, triangle


@pytest.fixture()
def db() -> GraphDatabase:
    db = GraphDatabase()
    db.add_graphs([triangle(0), path_graph([0, 0, 0]), path_graph([1, 1])])
    return db


class TestLifecycle:
    def test_vcfv_needs_no_index(self, db):
        engine = create_engine(db, "CFQL")
        assert engine.build_index() == 0.0
        assert engine.query(triangle(0)).answers == {0}

    def test_ifv_requires_build_before_query(self, db):
        engine = create_engine(db, "Grapes", index_max_path_edges=2)
        with pytest.raises(ConfigurationError, match="build_index"):
            engine.query(triangle(0))
        assert engine.build_index() > 0.0
        assert engine.query(triangle(0)).answers == {0}

    def test_vcfv_queries_immediately(self, db):
        engine = create_engine(db, "CFQL")
        assert engine.query(triangle(0)).answers == {0}

    def test_indexing_time_limit(self, db):
        for _ in range(5):
            db.add_graph(path_graph([0] * 20))
        engine = create_engine(db, "Grapes", index_max_path_edges=4)
        with pytest.raises(TimeLimitExceeded):
            engine.build_index(time_limit=0.0)

    def test_empty_query_rejected(self, db):
        engine = create_engine(db, "CFQL")
        with pytest.raises(ConfigurationError, match="at least one vertex"):
            engine.query(Graph.from_edge_list([], []))


class TestQuerying:
    def test_query_many(self, db):
        engine = create_engine(db, "CFQL")
        results = engine.query_many([triangle(0), path_graph([1, 1])])
        assert [r.answers for r in results] == [{0}, {2}]

    def test_time_limit_flags_timeout(self):
        from repro.graph import generate_database

        big = generate_database(3, 30, 12.0, 1, seed=1)
        clique = Graph.from_edge_list(
            [0] * 8, [(u, v) for u in range(8) for v in range(u + 1, 8)]
        )
        engine = create_engine(big, "VF2-FV")
        result = engine.query(clique, time_limit=0.0)
        assert result.timed_out

    def test_name_and_repr(self, db):
        engine = create_engine(db, "CFQL")
        assert engine.name == "CFQL"
        assert "CFQL" in repr(engine)


class TestMaintenance:
    def test_add_graph_updates_index(self, db):
        engine = create_engine(db, "Grapes", index_max_path_edges=2)
        engine.build_index()
        gid = engine.add_graph(triangle(0))
        assert engine.query(triangle(0)).answers == {0, gid}

    def test_remove_graph_updates_index(self, db):
        engine = create_engine(db, "Grapes", index_max_path_edges=2)
        engine.build_index()
        engine.remove_graph(0)
        assert engine.query(triangle(0)).answers == set()

    def test_vcfv_updates_need_no_index_work(self, db):
        engine = create_engine(db, "CFQL")
        gid = engine.add_graph(triangle(0))
        assert engine.query(triangle(0)).answers == {0, gid}
        engine.remove_graph(0)
        assert engine.query(triangle(0)).answers == {gid}

    def test_memory_accounting(self, db):
        grapes = create_engine(db, "Grapes", index_max_path_edges=2)
        grapes.build_index()
        assert grapes.index_memory_bytes() > 0
        cfql = create_engine(db, "CFQL")
        assert cfql.index_memory_bytes() == 0


class TestFindEmbeddings:
    def test_embeddings_from_vcfv_engine(self, db):
        from repro.matching import VF2Matcher

        engine = create_engine(db, "CFQL")
        embeddings = engine.find_embeddings(triangle(0), 0)
        assert len(embeddings) == VF2Matcher().count(triangle(0), db[0]) == 6
        for mapping in embeddings:
            assert set(mapping) == {0, 1, 2}

    def test_embeddings_from_ifv_engine_fall_back_to_cfql(self, db):
        engine = create_engine(db, "Grapes", index_max_path_edges=2)
        engine.build_index()
        embeddings = engine.find_embeddings(triangle(0), 0)
        assert len(embeddings) == 6

    def test_limit(self, db):
        engine = create_engine(db, "CFQL")
        assert len(engine.find_embeddings(triangle(0), 0, limit=2)) == 2

    def test_no_match_gives_empty(self, db):
        engine = create_engine(db, "CFQL")
        assert engine.find_embeddings(triangle(0), 2) == []
