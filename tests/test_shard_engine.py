"""Tests for repro.shard.engine (partitioning, manifest, rebalance,
per-shard durability, and the engine-compatible surface)."""

from __future__ import annotations

import json

import pytest

from repro.core import create_pipeline
from repro.graph import generate_database
from repro.shard import MANIFEST_NAME, ShardedEngine
from repro.utils.errors import ConfigurationError
from repro.workloads.querysets import generate_query_set


def make_sharded(db, num_shards, algorithm="Grapes", **kwargs):
    return ShardedEngine(
        db, num_shards, lambda: create_pipeline(algorithm), **kwargs
    )


@pytest.fixture()
def mutable_db():
    """Private copy — the mutation tests must not leak into ``small_db``."""
    return generate_database(
        num_graphs=20, num_vertices=12, avg_degree=2.8, num_labels=4, seed=42,
        name="small",
    )


@pytest.fixture()
def queries(small_db):
    return list(generate_query_set(small_db, 4, False, size=4, seed=11))


class TestConstruction:
    def test_partitions_are_disjoint_and_complete(self, small_db):
        with make_sharded(small_db, 3) as engine:
            seen: set[int] = set()
            for shard in engine._shards:
                ids = set(shard.engine.db.ids())
                assert not ids & seen
                seen |= ids
            assert seen == set(small_db.ids())

    def test_placement_follows_partitioner(self, small_db):
        with make_sharded(small_db, 3) as engine:
            for shard in engine._shards:
                for gid in shard.engine.db.ids():
                    assert engine.partitioner.owner(gid, 3) == shard.index

    def test_db_view_unions_shards(self, small_db):
        with make_sharded(small_db, 4) as engine:
            assert len(engine.db) == len(small_db)
            assert engine.db.ids() == sorted(small_db.ids())
            gid = small_db.ids()[0]
            assert gid in engine.db
            assert engine.db[gid] is small_db[gid]
            assert 999 not in engine.db

    def test_zero_shards_rejected(self, small_db):
        with pytest.raises(ConfigurationError, match="at least 1"):
            make_sharded(small_db, 0)

    def test_query_requires_build_index(self, small_db, queries):
        with make_sharded(small_db, 2) as engine:
            with pytest.raises(ConfigurationError, match="build_index"):
                engine.query(queries[0])

    def test_build_index_rejects_direct_store(self, small_db, tmp_path):
        from repro.store import IndexStore

        with make_sharded(small_db, 2) as engine:
            with pytest.raises(ConfigurationError, match="store_root"):
                engine.build_index(store=IndexStore(tmp_path / "s"))

    def test_shared_plan_cache(self, small_db):
        with make_sharded(small_db, 3) as engine:
            assert all(
                shard.engine.plans is engine.plans
                for shard in engine._shards
            )


class TestManifest:
    def test_written_on_first_open(self, small_db, tmp_path):
        root = tmp_path / "store"
        with make_sharded(small_db, 2, store_root=root):
            pass
        manifest = json.loads((root / MANIFEST_NAME).read_text())
        assert manifest["num_shards"] == 2
        assert manifest["seed_shards"] == 2
        assert manifest["partitioner"] == "hash"

    def test_count_mismatch_rejected(self, small_db, tmp_path):
        root = tmp_path / "store"
        with make_sharded(small_db, 2, store_root=root):
            pass
        with pytest.raises(ConfigurationError, match="--shards 2"):
            make_sharded(small_db, 3, store_root=root)

    def test_partitioner_mismatch_rejected(self, small_db, tmp_path):
        root = tmp_path / "store"
        with make_sharded(small_db, 2, store_root=root):
            pass
        with pytest.raises(ConfigurationError, match="partitioner"):
            make_sharded(small_db, 2, store_root=root, partitioner="modulo")

    def test_unreadable_manifest_rejected(self, small_db, tmp_path):
        root = tmp_path / "store"
        root.mkdir()
        (root / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(ConfigurationError, match="unreadable"):
            make_sharded(small_db, 2, store_root=root)

    def test_unsupported_version_rejected(self, small_db, tmp_path):
        root = tmp_path / "store"
        root.mkdir()
        (root / MANIFEST_NAME).write_text(
            json.dumps({"version": 99, "num_shards": 2, "seed_shards": 2,
                        "partitioner": "hash"})
        )
        with pytest.raises(ConfigurationError, match="version"):
            make_sharded(small_db, 2, store_root=root)


class TestMutations:
    def test_add_routes_to_owner(self, mutable_db, small_db):
        extra = small_db[small_db.ids()[0]]
        with make_sharded(mutable_db, 3) as engine:
            engine.build_index()
            gid = engine.add_graph(extra)
            owner = engine.owner_of(gid)
            assert gid in engine._shards[owner].engine.db
            assert all(
                gid not in s.engine.db
                for s in engine._shards if s.index != owner
            )

    def test_remove_unknown_raises(self, mutable_db):
        with make_sharded(mutable_db, 2) as engine:
            engine.build_index()
            with pytest.raises(KeyError):
                engine.remove_graph(10_000)

    def test_remove_heals_duplicates(self, mutable_db):
        # Simulate the window of a crashed two-phase move: one graph on
        # two shards.  A removal must take both copies out.
        with make_sharded(mutable_db, 2) as engine:
            engine.build_index()
            gid = mutable_db.ids()[0]
            holder = next(
                s for s in engine._shards if gid in s.engine.db
            )
            other = engine._shards[1 - holder.index]
            other.engine.add_graph_with_id(gid, holder.engine.db[gid])
            engine.remove_graph(gid)
            assert gid not in engine.db

    def test_mutation_visible_to_queries(self, mutable_db, queries):
        with make_sharded(mutable_db, 3) as engine:
            engine.build_index()
            before = engine.query(queries[0]).answers
            victim = sorted(before)[0]
            engine.remove_graph(victim)
            after = engine.query(queries[0]).answers
            assert after == before - {victim}


class TestRebalance:
    def test_idempotent_noop(self, mutable_db):
        with make_sharded(mutable_db, 3) as engine:
            engine.build_index()
            summary = engine.rebalance()
            assert summary == {
                "num_shards": 3, "moved": 0, "healed": 0, "grown": 0,
                "dropped": 0,
                "graphs": [len(s.engine.db) for s in engine._shards],
            }

    def test_grow_migrates_to_new_placement(self, mutable_db, queries):
        with make_sharded(mutable_db, 2) as engine:
            engine.build_index()
            expected = [sorted(r.answers) for r in engine.query_many(queries)]
            summary = engine.rebalance(4)
            assert summary["num_shards"] == 4
            assert summary["grown"] == 2
            assert sum(summary["graphs"]) == len(mutable_db)
            for shard in engine._shards:
                for gid in shard.engine.db.ids():
                    assert engine.partitioner.owner(gid, 4) == shard.index
            got = [sorted(r.answers) for r in engine.query_many(queries)]
            assert got == expected

    def test_shrink_without_store(self, mutable_db, queries):
        with make_sharded(mutable_db, 4) as engine:
            engine.build_index()
            expected = [sorted(r.answers) for r in engine.query_many(queries)]
            summary = engine.rebalance(2)
            assert summary["num_shards"] == 2
            assert summary["dropped"] == 2
            assert engine.num_shards == 2
            got = [sorted(r.answers) for r in engine.query_many(queries)]
            assert got == expected

    def test_shrink_below_seed_rejected_with_store(self, mutable_db, tmp_path):
        with make_sharded(
            mutable_db, 3, store_root=tmp_path / "store"
        ) as engine:
            engine.build_index()
            with pytest.raises(ConfigurationError, match="seed shard count"):
                engine.rebalance(2)

    def test_rebalance_heals_duplicates(self, mutable_db):
        with make_sharded(mutable_db, 2) as engine:
            engine.build_index()
            gid = mutable_db.ids()[0]
            holder = next(s for s in engine._shards if gid in s.engine.db)
            other = engine._shards[1 - holder.index]
            other.engine.add_graph_with_id(gid, holder.engine.db[gid])
            summary = engine.rebalance()
            assert summary["healed"] == 1
            assert sum(1 for s in engine._shards if gid in s.engine.db) == 1

    def test_target_below_one_rejected(self, mutable_db):
        with make_sharded(mutable_db, 2) as engine:
            engine.build_index()
            with pytest.raises(ConfigurationError, match="at least 1"):
                engine.rebalance(0)

    def test_grow_persists_across_restart(self, mutable_db, queries, tmp_path):
        root = tmp_path / "store"
        with make_sharded(mutable_db, 2, store_root=root) as engine:
            engine.build_index()
            expected = [sorted(r.answers) for r in engine.query_many(queries)]
            engine.rebalance(4)
        # The grown manifest forces --shards 4; the moves replay from the
        # per-shard journals over the *base* (seed-partitioned) database.
        with pytest.raises(ConfigurationError, match="--shards 4"):
            make_sharded(mutable_db, 2, store_root=root)
        with make_sharded(mutable_db, 4, store_root=root) as revived:
            revived.build_index()
            assert revived.seed_shards == 2
            assert revived.wal_recovery["replayed"] > 0
            got = [sorted(r.answers) for r in revived.query_many(queries)]
            assert got == expected
            assert revived.rebalance()["moved"] == 0


class TestDurability:
    def test_per_shard_stores_and_recovery(self, mutable_db, queries, tmp_path):
        root = tmp_path / "store"
        with make_sharded(mutable_db, 2, store_root=root) as engine:
            engine.build_index()
            assert (root / "shard-00").is_dir()
            assert (root / "shard-01").is_dir()
            extra = mutable_db[mutable_db.ids()[0]]
            engine.add_graph(extra, request_key="k-add-1")
            engine.remove_graph(mutable_db.ids()[1], request_key="k-rm-1")
            expected = [sorted(r.answers) for r in engine.query_many(queries)]

        base = generate_database(
            num_graphs=20, num_vertices=12, avg_degree=2.8, num_labels=4,
            seed=42, name="small",
        )
        with make_sharded(base, 2, store_root=root) as revived:
            revived.build_index()
            assert revived.index_source in ("store", "mixed")
            assert revived.wal_recovery["replayed"] == 2
            got = [sorted(r.answers) for r in revived.query_many(queries)]
            assert got == expected
            # The dedup window reseeds from the journaled request keys.
            keys = {(k, op) for k, op, _ in revived.recovered_request_keys}
            assert ("k-add-1", "add") in keys
            assert ("k-rm-1", "remove") in keys

    def test_compact_store_folds_every_shard(self, mutable_db, tmp_path):
        with make_sharded(
            mutable_db, 2, store_root=tmp_path / "store"
        ) as engine:
            engine.build_index()
            engine.add_graph(mutable_db[mutable_db.ids()[0]])
            summary = engine.compact_store()
            assert summary["log_depth"] == 0
            assert len(summary["shards"]) == 2
            assert engine.store.wal.depth == 0

    def test_compact_requires_store(self, small_db):
        with make_sharded(small_db, 2) as engine:
            engine.build_index()
            with pytest.raises(ConfigurationError, match="store_root"):
                engine.compact_store()


class TestStatsSurface:
    def test_shard_stats_rows(self, small_db, tmp_path):
        with make_sharded(
            small_db, 3, store_root=tmp_path / "store"
        ) as engine:
            engine.build_index()
            rows = engine.shard_stats()
            assert [row["shard"] for row in rows] == [0, 1, 2]
            assert sum(row["graphs"] for row in rows) == len(small_db)
            for row in rows:
                assert row["breaker"]["state"] == "closed"
                assert row["store"].endswith(f"shard-0{row['shard']}")

    def test_store_stats_aggregates(self, small_db, tmp_path):
        with make_sharded(
            small_db, 2, store_root=tmp_path / "store"
        ) as engine:
            engine.build_index()
            stats = engine.store_stats()
            assert stats["wal_depth"] == 0
            assert len(stats["shards"]) == 2
            assert "recovery" in stats

    def test_store_stats_none_without_root(self, small_db):
        with make_sharded(small_db, 2) as engine:
            assert engine.store_stats() is None
            assert engine.store is None

    def test_executor_stats_per_shard(self, small_db):
        with make_sharded(small_db, 2) as engine:
            stats = engine.executor_stats()
            assert stats["executor"] == "ShardedExecutor"
            assert [row["shard"] for row in stats["shards"]] == [0, 1]

    def test_index_memory_sums_shards(self, small_db):
        with make_sharded(small_db, 2) as engine:
            engine.build_index()
            total = engine.index_memory_bytes()
            assert total == sum(
                s.engine.index_memory_bytes() for s in engine._shards
            )
            assert total > 0
