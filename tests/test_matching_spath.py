"""Tests for repro.matching.spath (k-hop signature matching)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.graph import Graph
from repro.matching import SPathMatcher, neighborhood_signature

from helpers import nx_monomorphism_count, paper_like_data, paper_like_query, path_graph, star_graph
from strategies import matching_instances


class TestSignature:
    def test_radius_one_is_neighbor_labels(self):
        star = star_graph(0, [1, 1, 2])
        sig = neighborhood_signature(star, 0, radius=1)
        assert sig == {1: {1: 2, 2: 1}}

    def test_radius_two_counts_by_distance(self):
        path = path_graph([0, 1, 2, 3])
        sig = neighborhood_signature(path, 0, radius=2)
        assert sig == {1: {1: 1}, 2: {2: 1}}

    def test_center_not_counted(self):
        sig = neighborhood_signature(path_graph([5, 5]), 0, radius=2)
        assert sig[1] == {5: 1}
        assert sig[2] == {}

    def test_radius_caps_exploration(self):
        path = path_graph([0] * 6)
        sig = neighborhood_signature(path, 0, radius=2)
        assert sum(sum(level.values()) for level in sig.values()) == 2


class TestFiltering:
    def test_signature_prunes_beyond_ldf(self):
        # Two label-1 vertices of equal degree; only one has a label-3
        # vertex at distance 2, which the query requires.
        query = path_graph([1, 2, 3])
        data = Graph.from_edge_list(
            [1, 2, 3, 1, 2, 4],
            [(0, 1), (1, 2), (3, 4), (4, 5)],
        )
        matcher = SPathMatcher(radius=2)
        candidates = matcher.candidate_sets(query, data)
        assert candidates[0] == (0,)

    def test_larger_radius_filters_no_worse(self):
        query, data = paper_like_query(), paper_like_data()
        narrow = SPathMatcher(radius=1).candidate_sets(query, data)
        wide = SPathMatcher(radius=3).candidate_sets(query, data)
        for u in query.vertices():
            assert set(wide[u]) <= set(narrow[u])

    def test_invalid_radius(self):
        with pytest.raises(ValueError):
            SPathMatcher(radius=0)


class TestMatching:
    def test_square_query(self):
        assert SPathMatcher().exists(paper_like_query(), paper_like_data())

    def test_empty_query(self):
        q = Graph.from_edge_list([], [])
        assert SPathMatcher().run(q, paper_like_data()).num_embeddings == 1

    def test_no_candidates_short_circuits(self):
        outcome = SPathMatcher().run(path_graph([9, 9]), path_graph([0, 0]))
        assert not outcome.found and outcome.recursion_calls == 0

    @given(matching_instances())
    @settings(max_examples=40, deadline=None)
    def test_count_matches_networkx(self, instance):
        query, data = instance
        assert SPathMatcher().count(query, data) == nx_monomorphism_count(query, data)

    @given(matching_instances(guaranteed_match=True))
    @settings(max_examples=20, deadline=None)
    def test_radius_never_changes_answers(self, instance):
        query, data = instance
        counts = {SPathMatcher(radius=r).count(query, data) for r in (1, 2, 3)}
        assert len(counts) == 1
