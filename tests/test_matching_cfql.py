"""Tests for repro.matching.cfql (CFL filter + GraphQL order)."""

from __future__ import annotations

from hypothesis import given, settings

from repro.matching import CFLMatcher, CFQLMatcher, join_based_order

from helpers import nx_monomorphism_count, paper_like_data, paper_like_query
from strategies import matching_instances


class TestComposition:
    def test_candidates_identical_to_cfl(self):
        q, g = paper_like_query(), paper_like_data()
        cfql_phi = CFQLMatcher().build_candidates(q, g)
        cfl_phi = CFLMatcher().build_candidates(q, g)
        assert cfql_phi is not None and cfl_phi is not None
        for u in q.vertices():
            assert cfql_phi[u] == cfl_phi[u]

    def test_order_is_join_based(self):
        q, g = paper_like_query(), paper_like_data()
        matcher = CFQLMatcher()
        phi = matcher.build_candidates(q, g)
        assert phi is not None
        assert matcher.matching_order(q, g, phi) == join_based_order(q, phi)

    def test_name(self):
        assert CFQLMatcher().name == "CFQL"


class TestMatching:
    def test_square_query(self):
        assert CFQLMatcher().exists(paper_like_query(), paper_like_data())

    @given(matching_instances())
    @settings(max_examples=40, deadline=None)
    def test_count_matches_networkx(self, instance):
        query, data = instance
        assert CFQLMatcher().count(query, data) == nx_monomorphism_count(query, data)

    @given(matching_instances(guaranteed_match=True))
    @settings(max_examples=25, deadline=None)
    def test_first_match_agrees_with_full_count(self, instance):
        query, data = instance
        matcher = CFQLMatcher()
        assert matcher.exists(query, data) == (matcher.count(query, data) > 0)
