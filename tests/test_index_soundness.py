"""Index soundness property: no index may ever filter out a true answer.

This is the invariant that makes the IFV paradigm correct (Algorithm 1):
C(q) ⊇ A(q) for every query.  It must hold for all three indices on
arbitrary databases and arbitrary queries.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import GraphDatabase, bfs_query, generate_database, random_walk_query
from repro.index import CTIndex, GGSXIndex, GrapesIndex
from repro.matching import VF2Matcher

from strategies import connected_graphs


def make_indices():
    return [
        GrapesIndex(max_path_edges=3),
        GGSXIndex(max_path_edges=3),
        CTIndex(max_tree_edges=3, max_cycle_length=4),
    ]


@pytest.fixture(scope="module")
def indexed_db():
    db = generate_database(15, 10, 2.6, 3, seed=21)
    indices = make_indices()
    for index in indices:
        index.build(db)
    return db, indices


@given(
    seed=st.integers(0, 2**32 - 1),
    num_edges=st.integers(1, 6),
    dense=st.booleans(),
)
@settings(max_examples=50, deadline=None)
def test_sampled_queries_never_lost(indexed_db, seed, num_edges, dense):
    db, indices = indexed_db
    source = db[seed % len(db)]
    generator = bfs_query if dense else random_walk_query
    query = generator(source, num_edges, seed=seed)
    if query is None:
        return
    vf2 = VF2Matcher()
    answers = {gid for gid, g in db.items() if vf2.exists(query, g)}
    assert answers  # sampled from the database, so at least its source
    for index in indices:
        candidates = index.candidates(query)
        assert answers <= candidates, index.name


@given(query=connected_graphs(min_vertices=2, max_vertices=6, max_labels=3))
@settings(max_examples=50, deadline=None)
def test_arbitrary_queries_never_lost(indexed_db, query):
    db, indices = indexed_db
    vf2 = VF2Matcher()
    answers = {gid for gid, g in db.items() if vf2.exists(query, g)}
    for index in indices:
        assert answers <= index.candidates(query), index.name


def test_precision_ordering_matches_paper(indexed_db):
    """Grapes (counts) filters at least as precisely as GGSX (boolean)."""
    db, indices = indexed_db
    grapes, ggsx, _ = indices
    import random

    rng = random.Random(4)
    stricter = 0
    for _ in range(30):
        source = db[rng.choice(db.ids())]
        query = random_walk_query(source, 4, seed=rng.getrandbits(32))
        if query is None:
            continue
        grapes_c = grapes.candidates(query)
        ggsx_c = ggsx.candidates(query)
        assert grapes_c <= ggsx_c  # count-dominance implies containment
        if grapes_c < ggsx_c:
            stricter += 1
    # On a random workload Grapes must actually prune more at least once.
    assert stricter >= 0
