"""Tests for repro.workloads.datasets (the Table IV stand-ins)."""

from __future__ import annotations

import pytest

from repro.graph import is_connected
from repro.workloads import REAL_WORLD_SPECS, make_dataset
from repro.workloads.datasets import zipf_weights


class TestSpecs:
    def test_four_datasets_defined(self):
        assert set(REAL_WORLD_SPECS) == {"AIDS", "PDBS", "PCM", "PPI"}

    def test_paper_rows_complete(self):
        for spec in REAL_WORLD_SPECS.values():
            assert set(spec.paper_row) == {
                "#graphs", "#labels", "#vertices per graph",
                "#edges per graph", "degree per graph", "#labels per graph",
            }

    def test_structure_class_orderings_preserved(self):
        """The orderings the evaluation depends on (DESIGN.md)."""
        specs = REAL_WORLD_SPECS
        # AIDS has by far the most graphs; PPI the fewest.
        assert specs["AIDS"].num_graphs > specs["PDBS"].num_graphs
        assert specs["PPI"].num_graphs < specs["PCM"].num_graphs
        # PPI graphs are the largest; AIDS the smallest.
        assert specs["PPI"].num_vertices > specs["PCM"].num_vertices
        assert specs["AIDS"].num_vertices < specs["PDBS"].num_vertices
        # PCM and PPI are dense, AIDS and PDBS sparse.
        assert specs["PCM"].avg_degree > 4 * specs["AIDS"].avg_degree
        assert specs["PPI"].avg_degree > 3 * specs["PDBS"].avg_degree


class TestInstantiation:
    def test_unknown_dataset_rejected(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            make_dataset("IMDB")

    def test_deterministic_under_seed(self):
        a = make_dataset("AIDS", seed=1, scale=0.02)
        b = make_dataset("AIDS", seed=1, scale=0.02)
        assert all(a[i].labels == b[i].labels for i in a.ids())

    def test_scale_changes_graph_count_only(self):
        small = make_dataset("AIDS", scale=0.02)
        large = make_dataset("AIDS", scale=0.05)
        assert len(small) < len(large)
        assert small[0].num_vertices == large[0].num_vertices == 45

    def test_graphs_are_connected(self):
        db = make_dataset("PCM", scale=0.1)
        assert all(is_connected(g) for g in db.graphs())

    @pytest.mark.parametrize("name", ["AIDS", "PDBS", "PCM", "PPI"])
    def test_stats_track_spec(self, name):
        spec = REAL_WORLD_SPECS[name]
        stats = make_dataset(name, scale=0.1).stats()
        assert stats.avg_vertices == spec.num_vertices
        assert stats.avg_degree == pytest.approx(spec.avg_degree, rel=0.05)

    def test_aids_label_diversity_is_low(self):
        """Zipf skew keeps per-graph label diversity far below the
        62-label alphabet, like the real AIDS (4.4 labels per graph)."""
        stats = make_dataset("AIDS", scale=0.1).stats()
        assert stats.avg_labels_per_graph < 15


class TestZipfWeights:
    def test_monotone_decreasing(self):
        weights = zipf_weights(10, 1.5)
        assert all(a > b for a, b in zip(weights, weights[1:]))

    def test_skew_zero_is_uniform(self):
        assert zipf_weights(5, 0.0) == [1.0] * 5

    def test_length(self):
        assert len(zipf_weights(62, 2.0)) == 62
