"""Cross-algorithm agreement: all five matchers and the networkx oracle.

This is the central correctness property of the matching layer — every
algorithm implements the same Definition II.1, so their embedding counts
must be identical on arbitrary instances.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.matching import (
    CFLMatcher,
    CFQLMatcher,
    GraphQLMatcher,
    QuickSIMatcher,
    TurboIsoMatcher,
    UllmannMatcher,
    VF2Matcher,
)

from helpers import nx_monomorphism_count
from strategies import matching_instances

ALL_MATCHERS = [
    VF2Matcher(),
    VF2Matcher("degree"),
    UllmannMatcher(),
    QuickSIMatcher(),
    GraphQLMatcher(),
    CFLMatcher(),
    CFQLMatcher(),
    TurboIsoMatcher(),
]


@given(matching_instances())
@settings(max_examples=50, deadline=None)
def test_all_matchers_agree_with_oracle(instance):
    query, data = instance
    expected = nx_monomorphism_count(query, data)
    for matcher in ALL_MATCHERS:
        assert matcher.count(query, data) == expected, matcher.name


@given(matching_instances())
@settings(max_examples=30, deadline=None)
def test_exists_consistent_with_count(instance):
    query, data = instance
    expected = nx_monomorphism_count(query, data) > 0
    for matcher in ALL_MATCHERS:
        assert matcher.exists(query, data) == expected, matcher.name


@given(matching_instances(guaranteed_match=True))
@settings(max_examples=30, deadline=None)
def test_collected_embeddings_are_identical_sets(instance):
    """Beyond counts: the embeddings themselves must coincide."""
    query, data = instance
    reference = {
        frozenset(m.items()) for m in VF2Matcher().find_all(query, data)
    }
    assert reference
    for matcher in ALL_MATCHERS[1:]:
        found = {frozenset(m.items()) for m in matcher.find_all(query, data)}
        assert found == reference, matcher.name


@pytest.mark.parametrize("matcher", ALL_MATCHERS, ids=lambda m: m.name)
def test_timed_phase_totals_are_consistent(matcher, square_query, square_data):
    outcome = matcher.run(square_query, square_data)
    assert outcome.total_time == pytest.approx(
        outcome.filter_time + outcome.order_time + outcome.enumeration_time
    )


def test_agreement_on_dense_graphs(dense_db):
    """The denser fixture stresses orderings and candidate pruning."""
    import random

    from repro.graph import bfs_query

    rng = random.Random(14)
    checked = 0
    for _ in range(6):
        source = dense_db[rng.choice(dense_db.ids())]
        query = bfs_query(source, 8, seed=rng.getrandbits(32))
        if query is None:
            continue
        counts = {m.name: m.count(query, source) for m in ALL_MATCHERS}
        assert len(set(counts.values())) == 1, counts
        checked += 1
    assert checked >= 3
