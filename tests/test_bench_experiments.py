"""Tests for repro.bench.experiments (table formatters, tiny config)."""

from __future__ import annotations

import pytest

from repro.bench import BenchConfig
from repro.bench.experiments import (
    fig2_filtering_precision,
    fig3_filtering_time,
    fig4_verification_time,
    fig5_per_si_test_time,
    fig6_candidate_counts,
    fig7_query_time,
    fig8_synthetic_precision,
    fig9_synthetic_filtering_time,
    table4_dataset_stats,
    table5_queryset_stats,
    table6_indexing_time,
    table7_memory_cost,
    table8_synthetic_indexing_time,
    table9_synthetic_memory_cost,
)

TINY = BenchConfig(
    dataset_scale=0.02,
    queries_per_set=2,
    edge_counts=(4,),
    query_time_limit=2.0,
    index_time_limit=10.0,
    synthetic_num_graphs=4,
    synthetic_num_vertices=12,
    synthetic_sweeps=(("num_labels", (2, 4)),),
)


class TestStatisticsTables:
    def test_table4_has_ours_and_paper_rows(self):
        table = table4_dataset_stats(TINY)
        labels = table.row_labels()
        assert "#graphs (ours)" in labels and "#graphs (paper)" in labels
        assert table.cell("#graphs (paper)", "AIDS") == 40000

    def test_table5_per_dataset(self):
        tables = table5_queryset_stats(TINY)
        assert set(tables) == {"AIDS", "PDBS", "PCM", "PPI"}
        assert tables["AIDS"].row_labels() == [
            "|V| per q", "|Σ| per q", "d per q", "% of trees",
        ]


class TestRealWorldTables:
    def test_table6_rows_are_ifv_indices(self):
        table = table6_indexing_time(TINY)
        assert table.row_labels() == ["CT-Index", "GGSX", "Grapes"]
        cell = table.cell("Grapes", "AIDS")
        assert isinstance(cell, float) and cell > 0

    def test_fig2_covers_all_algorithms(self):
        tables = fig2_filtering_precision(TINY)
        assert set(tables) == {"AIDS", "PDBS", "PCM", "PPI"}
        aids = tables["AIDS"]
        assert len(aids.row_labels()) == 8
        precision = aids.cell("CFQL", "Q4S")
        assert isinstance(precision, float) and 0.0 < precision <= 1.0

    def test_fig7_times_positive(self):
        tables = fig7_query_time(TINY)
        cell = tables["AIDS"].cell("CFQL", "Q4S")
        assert isinstance(cell, float) and cell > 0.0

    def test_table7_structure(self):
        table = table7_memory_cost(TINY)
        assert table.row_labels() == ["Datasets", "CFQL", "CT-Index", "GGSX", "Grapes"]
        assert table.cell("Datasets", "AIDS") > 0
        # CFQL's auxiliary structures are far smaller than path indices.
        assert table.cell("CFQL", "AIDS") < table.cell("Grapes", "AIDS")


class TestRemainingFigures:
    def test_fig3_fig4_nonnegative_times(self):
        for producer in (fig3_filtering_time, fig4_verification_time):
            tables = producer(TINY)
            for table in tables.values():
                for algorithm in table.row_labels():
                    for column in table.columns:
                        cell = table.cell(algorithm, column)
                        if isinstance(cell, float):
                            assert cell >= 0.0

    def test_fig5_per_si_time_defined_for_cfql(self):
        tables = fig5_per_si_test_time(TINY)
        cell = tables["AIDS"].cell("CFQL", "Q4S")
        assert isinstance(cell, float) and cell > 0.0

    def test_fig6_candidates_bounded_by_database(self):
        from repro.bench.harness import get_real_dataset

        tables = fig6_candidate_counts(TINY)
        for dataset, table in tables.items():
            db_size = len(get_real_dataset(dataset, TINY))
            for algorithm in table.row_labels():
                for column in table.columns:
                    cell = table.cell(algorithm, column)
                    if isinstance(cell, (int, float)):
                        assert 0 <= cell <= db_size

    def test_fig9_cfql_completes_each_point(self):
        tables = fig9_synthetic_filtering_time(TINY)
        table = tables["num_labels"]
        assert all(
            isinstance(table.cell("CFQL", c), float) for c in table.columns
        )


class TestSyntheticTables:
    def test_table8_axes(self):
        tables = table8_synthetic_indexing_time(TINY)
        assert set(tables) == {"num_labels"}
        assert tables["num_labels"].row_labels() == ["CT-Index", "GGSX", "Grapes"]

    def test_fig8_values(self):
        tables = fig8_synthetic_precision(TINY)
        cell = tables["num_labels"].cell("CFQL", "4")
        assert isinstance(cell, float) and 0.0 < cell <= 1.0

    def test_table9_rows(self):
        tables = table9_synthetic_memory_cost(TINY)
        table = tables["num_labels"]
        assert table.row_labels() == ["Datasets", "CFQL", "GGSX", "Grapes"]
        assert table.cell("CFQL", "4") < table.cell("Grapes", "4")


class TestDegradedMarkers:
    def test_metric_cell_stars_degraded_reports(self):
        import dataclasses

        from repro.bench.experiments import _metric_cell
        from repro.bench.harness import build_engine, get_real_dataset, run_query_set
        from repro.bench.harness import get_query_sets

        config = dataclasses.replace(TINY, index_fallback=True)
        db = get_real_dataset("AIDS", config)
        from repro.exec import faults

        faults.inject("index.build", "oom")
        try:
            engine, status = build_engine(db, "Grapes", config)
        finally:
            faults.clear()
        assert engine is not None and engine.degraded
        assert status == "OOM→vcFV"
        query_set = next(iter(get_query_sets("AIDS", config).values()))
        report = run_query_set(engine, query_set, config)
        engine.close()
        assert report.degraded
        cell = _metric_cell(report, lambda r: r.avg_query_time)
        assert isinstance(cell, str) and cell.endswith("*")

    def test_metric_cell_passes_through_normal_reports(self):
        from repro.bench.experiments import _metric_cell
        from repro.core.metrics import QuerySetReport

        report = QuerySetReport(
            algorithm="CFQL", num_queries=1, num_timeouts=0,
            filtering_precision=1.0, avg_filtering_time=0.0,
            avg_verification_time=0.0, avg_query_time=0.5,
            max_query_time=0.5, avg_candidates=1.0, per_si_test_time=None,
            max_auxiliary_memory_bytes=0,
        )
        assert _metric_cell(report, lambda r: r.avg_query_time) == 0.5
