"""Tests for repro.index.suffix_tree (GGSX's suffix trie)."""

from __future__ import annotations

from repro.index import SuffixTrie


class TestInsertWithSuffixes:
    def test_all_suffixes_findable(self):
        trie = SuffixTrie()
        trie.insert_with_suffixes((1, 2, 3), graph_id=0)
        for sub in [(1, 2, 3), (2, 3), (3,), (1, 2), (2,), (1,)]:
            assert trie.graphs_containing(sub) == {0}

    def test_subpaths_of_suffixes_findable(self):
        """Any contiguous subsequence = prefix of some suffix."""
        trie = SuffixTrie()
        trie.insert_with_suffixes((5, 6, 7, 8), 3)
        assert trie.graphs_containing((6, 7)) == {3}

    def test_non_subpath_not_found(self):
        trie = SuffixTrie()
        trie.insert_with_suffixes((1, 2, 3), 0)
        assert trie.graphs_containing((1, 3)) == set()
        assert trie.graphs_containing((3, 2)) == set()

    def test_multiple_graphs(self):
        trie = SuffixTrie()
        trie.insert_with_suffixes((1, 2), 0)
        trie.insert_with_suffixes((2, 2), 1)
        assert trie.graphs_containing((2,)) == {0, 1}
        assert trie.graphs_containing((1, 2)) == {0}

    def test_empty_sequence_returns_all_marked(self):
        trie = SuffixTrie()
        trie.insert_with_suffixes((1,), 0)
        # The root holds no marks; empty lookups return the root's (empty) set.
        assert trie.graphs_containing(()) == set()


class TestRemoveGraph:
    def test_remove(self):
        trie = SuffixTrie()
        trie.insert_with_suffixes((1, 2), 0)
        trie.insert_with_suffixes((1, 2), 1)
        trie.remove_graph(0)
        assert trie.graphs_containing((1, 2)) == {1}
        assert trie.graphs_containing((2,)) == {1}


class TestAccounting:
    def test_num_nodes(self):
        trie = SuffixTrie()
        trie.insert_with_suffixes((1, 2), 0)
        # root, 1, 1→2, 2  → 4 nodes.
        assert trie.num_nodes == 4

    def test_num_entries(self):
        trie = SuffixTrie()
        trie.insert_with_suffixes((1, 2), 0)
        assert trie.num_entries() == 3  # nodes (1), (1,2), (2)
