"""Tests for repro.exec.faults (the deterministic fault-injection registry)."""

from __future__ import annotations

import time

import pytest

from repro.exec import faults
from repro.exec.faults import FAULT_KINDS, FaultSpec
from repro.utils.errors import MemoryLimitExceeded, TimeLimitExceeded


class TestFaultSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="fault kind"):
            FaultSpec(site="filter", kind="explode")

    def test_all_kinds_constructible(self):
        for kind in FAULT_KINDS:
            assert FaultSpec(site="filter", kind=kind).kind == kind


class TestRegistry:
    def test_trip_is_noop_when_nothing_armed(self):
        faults.trip("filter", tag="anything")  # must not raise

    def test_inject_arms_and_returns_spec(self):
        spec = faults.inject("filter", "error")
        assert spec in faults._active
        with pytest.raises(RuntimeError, match="injected error"):
            faults.trip("filter")

    def test_clear_disarms(self):
        faults.inject("filter", "error")
        faults.clear()
        faults.trip("filter")  # must not raise

    def test_site_must_match(self):
        faults.inject("verify", "error")
        faults.trip("filter")  # wrong site: no fire
        with pytest.raises(RuntimeError):
            faults.trip("verify")

    def test_match_filters_on_tag_substring(self):
        faults.inject("filter", "error", match="q7")
        faults.trip("filter", tag="Grapes:q3")  # no fire
        with pytest.raises(RuntimeError):
            faults.trip("filter", tag="Grapes:q7")

    def test_times_bounds_firing(self):
        faults.inject("filter", "error", times=2)
        for _ in range(2):
            with pytest.raises(RuntimeError):
                faults.trip("filter")
        faults.trip("filter")  # exhausted: no fire

    def test_latch_file_makes_fault_one_shot(self, tmp_path):
        latch = str(tmp_path / "latch")
        faults.inject("filter", "error", latch=latch)
        with pytest.raises(RuntimeError):
            faults.trip("filter")
        # Latch already acquired: even a fresh registry (modelling a
        # respawned worker re-installing the same specs) skips the fault.
        faults.trip("filter")
        faults.clear()
        faults.inject("filter", "error", latch=latch)
        faults.trip("filter")

    def test_active_specs_returns_copies(self):
        faults.inject("filter", "error", times=3)
        shipped = faults.active_specs()
        shipped[0].times = 0
        assert faults._active[0].times == 3


class TestEffects:
    def test_oot_raises_time_limit(self):
        faults.inject("filter", "oot")
        with pytest.raises(TimeLimitExceeded):
            faults.trip("filter")

    def test_oom_raises_memory_limit(self):
        faults.inject("filter", "oom")
        with pytest.raises(MemoryLimitExceeded):
            faults.trip("filter")

    def test_delay_sleeps(self):
        faults.inject("filter", "delay", arg=0.05)
        start = time.perf_counter()
        faults.trip("filter")
        assert time.perf_counter() - start >= 0.04

    def test_spin_busy_waits(self):
        faults.inject("filter", "spin", arg=0.05)
        start = time.perf_counter()
        faults.trip("filter")
        assert time.perf_counter() - start >= 0.04

    def test_alloc_holds_ballast_until_clear(self):
        faults.inject("filter", "alloc", arg=1.0)  # 1 MiB
        faults.trip("filter")
        assert sum(len(b) for b in faults._ballast) == 1024 * 1024
        faults.clear()
        assert not faults._ballast
