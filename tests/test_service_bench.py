"""Tests for repro.service.bench (the serve load generator and report)."""

from __future__ import annotations

import json

import pytest

from repro.service.bench import BenchServeConfig, run_bench_serve, write_report


@pytest.fixture(scope="module")
def tiny_report():
    """One real end-to-end bench run, scaled to a few seconds."""
    config = BenchServeConfig(
        num_graphs=8,
        num_vertices=10,
        num_queries=4,
        requests_per_client=6,
        concurrency=(1, 2),
        open_loop_requests=8,
        open_loop_rate=50.0,
        time_limit=30.0,
        shard_counts=(1, 2),
    )
    return run_bench_serve(config)


class TestReportShape:
    def test_schema_and_sections(self, tiny_report):
        assert tiny_report["schema"] == "repro-bench-serve/1"
        assert tiny_report["workload"]["num_graphs"] == 8
        assert {"python", "platform", "cpu_count"} <= set(tiny_report["host"])
        # {off, on} × {1, 2} closed cells, one open cell per cache mode.
        assert len(tiny_report["closed_loop"]) == 4
        assert len(tiny_report["open_loop"]) == 2

    def test_closed_cells_complete_every_request(self, tiny_report):
        for cell in tiny_report["closed_loop"]:
            expected = cell["concurrency"] * 6
            assert cell["completed"] + cell["overloaded"] == expected
            assert cell["failures"] == 0
            assert cell["throughput_qps"] > 0
            latency = cell["latency_ms"]
            assert 0 < latency["p50"] <= latency["p95"] <= latency["p99"]
            assert latency["max"] > 0

    def test_open_cells_send_on_schedule(self, tiny_report):
        for cell in tiny_report["open_loop"]:
            assert cell["mode"] == "open"
            assert cell["rate_qps"] == 50.0
            assert cell["completed"] + cell["overloaded"] == 8

    def test_cache_on_cells_record_hits(self, tiny_report):
        on_cells = [c for c in tiny_report["closed_loop"] if c["cache"] == "on"]
        off_cells = [c for c in tiny_report["closed_loop"] if c["cache"] == "off"]
        # 6 requests over 4 distinct queries: repeats must hit.
        assert all(c["cache_hits"] > 0 for c in on_cells)
        assert all(c["cache_hits"] == 0 for c in off_cells)
        assert all(c["server"]["cache"]["hits"] > 0 for c in on_cells)
        assert all(c["server"]["cache"]["capacity"] == 0 for c in off_cells)

    def test_server_digest_attached(self, tiny_report):
        for cell in tiny_report["closed_loop"] + tiny_report["open_loop"]:
            digest = cell["server"]
            assert digest["batches"]["count"] >= 1
            assert digest["requests"]["answered"] >= cell["completed"]
            assert digest["queue_wait_p99_ms"] >= 0.0

    def test_report_is_json_and_written_atomically(self, tiny_report, tmp_path):
        path = tmp_path / "BENCH_serve.json"
        write_report(tiny_report, str(path))
        assert json.loads(path.read_text()) == json.loads(
            json.dumps(tiny_report)
        )


class TestShardingSweep:
    def test_cells_assert_parity_and_report_placement(self, tiny_report):
        sweep = tiny_report["sharding"]
        assert sweep["queries"] == 4
        # The host axis: one thread cell per count, plus a process cell
        # for every multi-shard count (one shard behind a pipe prices
        # nothing new).
        assert [(c["shards"], c["shard_host"]) for c in sweep["cells"]] == [
            (1, "thread"), (2, "thread"), (2, "process"),
        ]
        for cell in sweep["cells"]:
            # `parity: identical` is only written after every answer was
            # checked against the unsharded reference engine.
            assert cell["parity"] == "identical"
            assert cell["failures"] == 0
            assert len(cell["per_shard_graphs"]) == cell["shards"]
            assert sum(cell["per_shard_graphs"]) == 8
            assert cell["throughput_qps"] > 0

    def test_pruning_cells_skip_shards_with_parity(self, tiny_report):
        sweep = tiny_report["pruning"]
        assert [c["pruning"] for c in sweep["cells"]] == [True, False]
        on, off = sweep["cells"]
        for cell in (on, off):
            assert cell["parity"] == "identical"
            assert cell["failures"] == 0
            assert cell["throughput_qps"] > 0
        # The label-skewed workload makes every query prunable on one of
        # the two shards; with pruning off the counters stay at zero.
        assert on["shards_pruned"] >= 1
        assert on["shard_queries"] >= on["shards_pruned"]
        assert 0 < on["prune_rate"] <= 1.0
        assert off["shards_pruned"] == 0


class TestDurabilityCell:
    def test_cell_prices_wal_and_proves_recovery(self):
        from repro.service.bench import _durability_cell

        cell = _durability_cell(BenchServeConfig.quick())
        assert cell["mutations"] == 16
        assert cell["replayed"] == 16
        assert cell["folded"] == 16
        assert cell["wal_bytes"] > 0
        assert cell["baseline_mut_per_s"] > 0
        assert cell["durable_mut_per_s"] > 0


class TestConfig:
    def test_quick_variant_is_smaller(self):
        quick = BenchServeConfig.quick()
        full = BenchServeConfig()
        assert quick.num_graphs < full.num_graphs
        assert quick.requests_per_client < full.requests_per_client
        assert max(quick.concurrency) <= max(full.concurrency)
