"""Tests for repro.matching.bipartite."""

from __future__ import annotations

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matching import has_semi_perfect_matching, maximum_bipartite_matching
from repro.matching.bipartite import has_semi_perfect_matching_bits


class TestMaximumMatching:
    def test_perfect_matching(self):
        match = maximum_bipartite_matching([["a"], ["b"], ["c"]])
        assert len(match) == 3

    def test_requires_augmenting_path(self):
        # Greedy pairs 0→a; vertex 1 only has a; augmentation must reroute.
        match = maximum_bipartite_matching([["a", "b"], ["a"]])
        assert len(match) == 2
        assert match[1] == "a" and match[0] == "b"

    def test_empty_rows(self):
        assert maximum_bipartite_matching([[], []]) == {}

    def test_matching_is_valid(self):
        adjacency = [["a", "b"], ["b", "c"], ["a"]]
        match = maximum_bipartite_matching(adjacency)
        for left, right in match.items():
            assert right in adjacency[left]
        assert len(set(match.values())) == len(match)

    @given(
        st.lists(
            st.lists(st.integers(0, 5), max_size=4, unique=True),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=60)
    def test_size_matches_networkx(self, adjacency):
        bigraph = nx.Graph()
        lefts = [("L", i) for i in range(len(adjacency))]
        bigraph.add_nodes_from(lefts, bipartite=0)
        for i, row in enumerate(adjacency):
            for right in row:
                bigraph.add_edge(("L", i), ("R", right))
        expected = len(nx.bipartite.maximum_matching(bigraph, top_nodes=lefts)) // 2
        assert len(maximum_bipartite_matching(adjacency)) == expected


class TestSemiPerfect:
    def test_covering_matching_exists(self):
        assert has_semi_perfect_matching([["a", "b"], ["a"]])

    def test_shared_single_right_vertex_fails(self):
        assert not has_semi_perfect_matching([["a"], ["a"]])

    def test_empty_row_fails_fast(self):
        assert not has_semi_perfect_matching([[], ["a"]])

    def test_empty_left_side_is_trivially_covered(self):
        assert has_semi_perfect_matching([])

    @given(
        st.lists(
            st.lists(st.integers(0, 5), max_size=4, unique=True),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=60)
    def test_agrees_with_maximum_matching(self, adjacency):
        expected = len(maximum_bipartite_matching(adjacency)) == len(adjacency)
        assert has_semi_perfect_matching(adjacency) == expected


class TestSemiPerfectBits:
    """The bitset-row variant must agree with the list-based reference."""

    def test_empty_row_fails(self):
        assert not has_semi_perfect_matching_bits([0b10, 0])

    def test_saturated_fast_path(self):
        # Every row has >= n options: Hall holds for all subsets.
        assert has_semi_perfect_matching_bits([0b0111, 0b1011, 0b1110])

    def test_requires_augmenting_path(self):
        # Greedy pairs left 0 with bit 0; left 1 only has bit 0.
        assert has_semi_perfect_matching_bits([0b11, 0b01])
        assert not has_semi_perfect_matching_bits([0b01, 0b01])

    @given(
        st.lists(
            st.lists(st.integers(0, 5), max_size=4, unique=True),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=120)
    def test_agrees_with_list_reference(self, adjacency):
        rows = [sum(1 << r for r in row) for row in adjacency]
        assert has_semi_perfect_matching_bits(rows) == has_semi_perfect_matching(
            adjacency
        )
