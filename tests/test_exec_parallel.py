"""The parallel executor: serial-identical results, containment, resume.

The contract under test is the tentpole's: a ``jobs``-wide pool returns
the exact per-query outcome sequence the serial subprocess executor
returns — including injected OOT/crash faults — while one pathological
query never stalls the rest of the batch, and journaled benchmark runs
resume across serial/parallel boundaries.

Faults here are ``match``-based (never ``times``-based): ``times``
counters are per process, so a pool of N workers would fire such a fault
N times and diverge from the serial run by construction.
"""

from __future__ import annotations

import time

import pytest

from helpers import nx_contains
from repro.core import create_engine
from repro.exec import faults
from repro.exec.parallel import ParallelExecutor
from repro.exec.pool import SubprocessExecutor
from repro.graph import Graph


def named_square(name: str) -> Graph:
    return Graph.from_edge_list(
        [0, 1, 0, 1], [(0, 1), (1, 2), (2, 3), (3, 0)], name=name
    )


def expected_answers(query, db):
    return {gid for gid, graph in db.items() if nx_contains(query, graph)}


def signature(result):
    """The deterministic part of a QueryResult (timings excluded)."""
    return (
        result.algorithm,
        result.query_name,
        tuple(sorted(result.answers)),
        tuple(sorted(result.candidates)),
        result.index_candidates,
        result.timed_out,
        result.failure.kind if result.failure is not None else None,
    )


def run_serial(small_db, queries, time_limit=30.0):
    with create_engine(small_db, "CFQL", executor=SubprocessExecutor()) as eng:
        eng.build_index()
        return eng.query_many(queries, time_limit=time_limit)


def run_parallel(small_db, queries, time_limit=30.0, jobs=3, **kwargs):
    executor = ParallelExecutor(jobs=jobs, **kwargs)
    with create_engine(small_db, "CFQL", executor=executor) as eng:
        eng.build_index()
        return eng.query_many(queries, time_limit=time_limit)


class TestSerialParity:
    def test_clean_batch_is_identical_to_serial(self, small_db):
        queries = [named_square(f"q{i}") for i in range(6)]
        serial = run_serial(small_db, queries)
        parallel = run_parallel(small_db, queries)
        assert [signature(r) for r in parallel] == [signature(r) for r in serial]
        assert all(r.failure is None for r in parallel)

    def test_results_keep_input_order(self, small_db):
        queries = [named_square(f"q{i}") for i in range(8)]
        results = run_parallel(small_db, queries, jobs=4)
        assert [r.query_name for r in results] == [q.name for q in queries]

    def test_faulted_batch_is_identical_to_serial(self, small_db):
        """Injected OOT (busy spin) and crash on specific queries must be
        classified exactly as the serial executor classifies them."""
        queries = [named_square(f"q{i}") for i in range(5)]
        faults.inject("query:start", "spin", arg=30.0, match="q1")
        faults.inject("query:start", "crash", match="q3")
        serial = run_serial(small_db, queries, time_limit=0.5)
        parallel = run_parallel(small_db, queries, time_limit=0.5)
        kinds = [r.failure.kind if r.failure else None for r in parallel]
        assert kinds == [None, "oot", None, "crash", None]
        assert [signature(r) for r in parallel] == [signature(r) for r in serial]

    def test_single_query_run_delegates(self, small_db):
        executor = ParallelExecutor(jobs=2)
        with create_engine(small_db, "CFQL", executor=executor) as eng:
            eng.build_index()
            query = named_square("q0")
            result = eng.query(query, time_limit=30.0)
            assert result.failure is None
            assert result.answers == expected_answers(query, small_db)


class TestContainment:
    def test_one_oot_query_does_not_stall_the_pool(self, small_db):
        """A sleeping query is hard-killed on its own worker while the
        other workers drain the batch; the batch must finish in roughly
        the hard-kill bound, nowhere near the sleep duration."""
        queries = [named_square(f"q{i}") for i in range(6)]
        faults.inject("query:start", "delay", arg=30.0, match="q2")
        started = time.perf_counter()
        results = run_parallel(small_db, queries, time_limit=1.0, jobs=3)
        elapsed = time.perf_counter() - started
        kinds = [r.failure.kind if r.failure else None for r in results]
        assert kinds == [None, None, "oot", None, None, None]
        assert results[2].timed_out and results[2].query_time == 1.0
        assert elapsed < 10.0  # hard kill at ~1.75s, not the 30s sleep

    def test_mid_batch_crash_leaves_neighbors_intact(self, small_db):
        queries = [named_square(f"q{i}") for i in range(4)]
        faults.inject("query:start", "crash", match="q1")
        results = run_parallel(small_db, queries, jobs=2)
        assert results[1].failure is not None
        assert results[1].failure.kind == "crash"
        assert "exit code" in results[1].failure.message
        expected = expected_answers(queries[0], small_db)
        for i in (0, 2, 3):
            assert results[i].failure is None
            assert results[i].answers == expected

    def test_startup_crash_with_latch_recovers(self, small_db, tmp_path):
        """One worker dies at startup (one-shot via latch); the pool
        re-dispatches its queued query to a respawned worker."""
        faults.inject("worker:start", "crash", latch=str(tmp_path / "latch"))
        queries = [named_square(f"q{i}") for i in range(4)]
        results = run_parallel(
            small_db, queries, jobs=2, retry_backoff=0.01
        )
        assert all(r.failure is None for r in results)
        expected = expected_answers(queries[0], small_db)
        assert all(r.answers == expected for r in results)

    def test_persistent_startup_crash_fails_batch_bounded(self, small_db):
        """Every spawn dies before ready: the pool-wide fuse must fail the
        batch as crashes instead of respawning forever."""
        faults.inject("worker:start", "crash")
        started = time.perf_counter()
        results = run_parallel(
            small_db,
            [named_square(f"q{i}") for i in range(3)],
            jobs=2,
            max_retries=2,
            retry_backoff=0.01,
        )
        elapsed = time.perf_counter() - started
        assert all(r.failure is not None for r in results)
        assert all(r.failure.kind == "crash" for r in results)
        assert elapsed < 30.0


class TestWorkerReuse:
    def test_workers_persist_across_batches(self, small_db):
        """A second batch against the same (pipeline, db) must reuse the
        live workers instead of respawning the pool."""
        executor = ParallelExecutor(jobs=2)
        with create_engine(small_db, "CFQL", executor=executor) as eng:
            eng.build_index()
            eng.query_many([named_square(f"q{i}") for i in range(4)],
                           time_limit=30.0)
            first_pids = {w.proc.pid for w in executor._workers}
            assert first_pids
            eng.query_many([named_square(f"r{i}") for i in range(4)],
                           time_limit=30.0)
            second_pids = {w.proc.pid for w in executor._workers}
        assert first_pids & second_pids

    def test_invalidate_drops_the_pool(self, small_db):
        executor = ParallelExecutor(jobs=2)
        with create_engine(small_db, "CFQL", executor=executor) as eng:
            eng.build_index()
            eng.query_many([named_square("q0")], time_limit=30.0)
            executor.invalidate()
            assert executor._workers == []
            result = eng.query(named_square("q1"), time_limit=30.0)
            assert result.failure is None

    def test_close_is_idempotent(self, small_db):
        executor = ParallelExecutor(jobs=2)
        with create_engine(small_db, "CFQL", executor=executor) as eng:
            eng.build_index()
            eng.query_many([named_square("q0")], time_limit=30.0)
        executor.close()
        executor.close()

    def test_empty_batch(self, small_db):
        executor = ParallelExecutor(jobs=2)
        with create_engine(small_db, "CFQL", executor=executor) as eng:
            eng.build_index()
            assert eng.query_many([], time_limit=30.0) == []

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            ParallelExecutor(jobs=0)


class TestJournalResume:
    """Journal interop between serial and parallel matrix runs."""

    DATASETS = ("AIDS",)
    ALGORITHMS = ("CFQL",)

    def tiny_config(self, journal_path, jobs=1):
        from repro.bench.harness import BenchConfig

        return BenchConfig(
            dataset_scale=0.02,
            queries_per_set=2,
            edge_counts=(4,),
            query_time_limit=2.0,
            index_time_limit=10.0,
            journal=str(journal_path),
            jobs=jobs,
        )

    def run_matrix(self, config):
        from repro.bench.harness import real_world_matrix

        real_world_matrix.cache_clear()
        return real_world_matrix(
            config, datasets=self.DATASETS, algorithms=self.ALGORITHMS
        )

    @staticmethod
    def report_dicts(matrix):
        return {
            key: (None if report is None else report.to_dict())
            for key, report in matrix.reports.items()
        }

    # Fields a recomputed cell reproduces exactly; the timing averages
    # legitimately differ run to run.
    STABLE = (
        "algorithm",
        "num_queries",
        "num_timeouts",
        "filtering_precision",
        "avg_candidates",
        "num_failures",
        "degraded",
    )

    @classmethod
    def stable_reports(cls, matrix):
        return {
            key: (
                None
                if report is None
                else {f: report.to_dict()[f] for f in cls.STABLE}
            )
            for key, report in matrix.reports.items()
        }

    def test_serial_journal_resumes_under_parallel(self, tmp_path):
        """--jobs must not invalidate a journal: parallel and serial runs
        produce identical results, so the fingerprint normalises jobs."""
        import dataclasses

        path = tmp_path / "run.jsonl"
        serial_cfg = self.tiny_config(path, jobs=1)
        first = self.run_matrix(serial_cfg)
        parallel_cfg = dataclasses.replace(serial_cfg, jobs=2)
        resumed = self.run_matrix(parallel_cfg)
        assert self.report_dicts(resumed) == self.report_dicts(first)

    def test_kill_and_resume_mid_parallel_run(self, tmp_path, monkeypatch):
        """Truncating the journal reproduces a parallel run killed
        mid-matrix; the rerun replays journaled cells and recomputes only
        the missing ones — still under the pool executor."""
        from repro.bench import harness

        path = tmp_path / "run.jsonl"
        config = self.tiny_config(path, jobs=2)
        first = self.run_matrix(config)
        lines = path.read_text().splitlines()
        # 1 config stamp + 1 index cell + 2 report cells.
        assert len(lines) == 4
        path.write_text("\n".join(lines[:3]) + "\n")  # drop the last report

        recomputed = []
        original = harness.run_query_set

        def counting(engine, query_set, cfg):
            recomputed.append(query_set.name)
            return original(engine, query_set, cfg)

        monkeypatch.setattr(harness, "run_query_set", counting)
        resumed = self.run_matrix(config)
        assert len(recomputed) == 1  # only the truncated cell re-ran
        # The recomputed cell reproduces everything but wall-clock noise.
        assert self.stable_reports(resumed) == self.stable_reports(first)

    def test_parallel_matrix_matches_serial_matrix(self, tmp_path):
        serial = self.run_matrix(self.tiny_config(tmp_path / "a.jsonl", jobs=1))
        parallel = self.run_matrix(self.tiny_config(tmp_path / "b.jsonl", jobs=2))
        assert self.stable_reports(parallel) == self.stable_reports(serial)


class TestShutdownDrain:
    """Satellite coverage: pool teardown leaves nothing behind.

    Worker pids are captured while the pool is live and checked for
    liveness with ``os.kill(pid, 0)`` after teardown — scrap joins each
    process, so a reaped worker raises ``ProcessLookupError``.
    """

    @staticmethod
    def pid_alive(pid: int) -> bool:
        import os

        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return False
        except PermissionError:  # pragma: no cover - exists, other owner
            return True
        return True

    @classmethod
    def assert_all_reaped(cls, pids, timeout: float = 10.0) -> None:
        deadline = time.perf_counter() + timeout
        while time.perf_counter() < deadline:
            alive = [pid for pid in pids if cls.pid_alive(pid)]
            if not alive:
                return
            time.sleep(0.05)
        raise AssertionError(f"orphaned worker processes survive: {alive}")

    def test_close_reaps_every_worker_process(self, small_db):
        executor = ParallelExecutor(jobs=3)
        with create_engine(small_db, "CFQL", executor=executor) as eng:
            eng.build_index()
            eng.query_many([named_square(f"q{i}") for i in range(6)],
                           time_limit=30.0)
            workers = list(executor._workers)
            pids = [w.proc.pid for w in workers]
            assert len(pids) == 3
        # create_engine.__exit__ closed the executor.
        assert executor._workers == []
        self.assert_all_reaped(pids)
        # The stop message let every worker exit cleanly, not by kill.
        assert [w.exitcode for w in workers] == [0, 0, 0]

    def test_respawn_fuse_exhaustion_empties_pool_then_recovers(self, small_db):
        """After the fuse blows, the pool must be fully drained (no
        half-spawned workers parked in the list) — and once the fault
        goes away, the same executor must serve the next batch."""
        executor = ParallelExecutor(jobs=2, max_retries=1, retry_backoff=0.01)
        with create_engine(small_db, "CFQL", executor=executor) as eng:
            eng.build_index()
            faults.inject("worker:start", "crash")
            results = eng.query_many([named_square(f"q{i}") for i in range(3)],
                                     time_limit=30.0)
            assert all(r.failure is not None and r.failure.kind == "crash"
                       for r in results)
            assert executor._workers == []
            assert executor._spawn_failures > executor.max_retries

            faults.clear()
            executor.invalidate()  # the fuse resets with the pool
            recovered = eng.query_many([named_square("r0")], time_limit=30.0)
            assert recovered[0].failure is None
            pids = [w.proc.pid for w in executor._workers]
        self.assert_all_reaped(pids)

    def test_no_orphans_after_exception_mid_batch(self, small_db, monkeypatch):
        """An exception escaping run_many while jobs are in flight must
        not leak the pool: close() still stops and reaps every worker."""
        from repro.exec import parallel as parallel_module

        executor = ParallelExecutor(jobs=2)
        engine = create_engine(small_db, "CFQL", executor=executor)
        engine.build_index()
        engine.query_many([named_square("warm")], time_limit=30.0)
        pids = [w.proc.pid for w in executor._workers]
        assert pids

        calls = []
        original_wait = parallel_module._conn_wait

        def exploding_wait(conns, timeout=None):
            calls.append(1)
            if len(calls) > 1:
                raise RuntimeError("synthetic failure mid-batch")
            return original_wait(conns, timeout=timeout)

        monkeypatch.setattr(parallel_module, "_conn_wait", exploding_wait)
        with pytest.raises(RuntimeError, match="synthetic failure"):
            engine.query_many([named_square(f"q{i}") for i in range(4)],
                              time_limit=30.0)
        monkeypatch.setattr(parallel_module, "_conn_wait", original_wait)

        engine.close()
        assert executor._workers == []
        self.assert_all_reaped(pids)

    def test_no_orphans_after_crash_fault_then_close(self, small_db):
        """A worker hard-crashing mid-query is reaped by the batch loop;
        the close afterwards reaps the respawned replacements too."""
        executor = ParallelExecutor(jobs=2)
        all_pids = set()
        with create_engine(small_db, "CFQL", executor=executor) as eng:
            eng.build_index()
            faults.inject("query:start", "crash", match="q1")
            results = eng.query_many([named_square(f"q{i}") for i in range(4)],
                                     time_limit=30.0)
            assert results[1].failure is not None
            all_pids.update(w.proc.pid for w in executor._workers)
        assert all_pids
        self.assert_all_reaped(all_pids)
