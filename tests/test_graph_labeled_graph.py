"""Tests for repro.graph.labeled_graph (the CSR Graph)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.graph import Graph

from strategies import labeled_graphs


@pytest.fixture()
def diamond() -> Graph:
    """4 vertices, labels [0,1,1,2], a 4-cycle with one chord."""
    return Graph.from_edge_list(
        [0, 1, 1, 2], [(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)], name="diamond"
    )


class TestConstruction:
    def test_counts(self, diamond):
        assert diamond.num_vertices == 4
        assert diamond.num_edges == 5
        assert len(diamond) == 4

    def test_from_edge_list_rejects_self_loop(self):
        with pytest.raises(ValueError, match="self loop"):
            Graph.from_edge_list([0, 0], [(0, 0)])

    def test_from_edge_list_rejects_duplicate(self):
        with pytest.raises(ValueError, match="duplicate"):
            Graph.from_edge_list([0, 0], [(0, 1), (1, 0)])

    def test_from_edge_list_rejects_unknown_vertex(self):
        with pytest.raises(ValueError, match="unknown vertex"):
            Graph.from_edge_list([0], [(0, 1)])

    def test_empty_graph(self):
        g = Graph.from_edge_list([], [])
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert g.average_degree == 0.0
        assert g.max_degree == 0

    def test_single_vertex(self):
        g = Graph.from_edge_list([5], [])
        assert g.degree(0) == 0
        assert g.label(0) == 5
        assert g.density == 0.0

    def test_repr_mentions_name_and_sizes(self, diamond):
        assert "diamond" in repr(diamond)
        assert "|V|=4" in repr(diamond)


class TestAccessors:
    def test_labels(self, diamond):
        assert diamond.labels == (0, 1, 1, 2)
        assert diamond.label(2) == 1

    def test_degree(self, diamond):
        assert [diamond.degree(v) for v in diamond.vertices()] == [2, 3, 2, 3]
        assert diamond.max_degree == 3

    def test_neighbors_sorted(self, diamond):
        assert list(diamond.neighbors(1)) == [0, 2, 3]

    def test_neighbor_set(self, diamond):
        assert diamond.neighbor_set(3) == frozenset({0, 1, 2})

    def test_has_edge_symmetric(self, diamond):
        assert diamond.has_edge(1, 3) and diamond.has_edge(3, 1)
        assert not diamond.has_edge(0, 2)

    def test_edges_each_once(self, diamond):
        edges = list(diamond.edges())
        assert len(edges) == diamond.num_edges
        assert all(u < v for u, v in edges)
        assert len(set(edges)) == len(edges)

    def test_average_degree_and_density(self, diamond):
        assert diamond.average_degree == pytest.approx(2.5)
        assert diamond.density == pytest.approx(5 / 6)


class TestLabelViews:
    def test_vertices_with_label(self, diamond):
        assert diamond.vertices_with_label(1) == (1, 2)
        assert diamond.vertices_with_label(99) == ()

    def test_label_set(self, diamond):
        assert diamond.label_set() == frozenset({0, 1, 2})
        assert diamond.num_labels == 3

    def test_neighbors_with_label(self, diamond):
        assert diamond.neighbors_with_label(0, 1) == (1,)
        assert diamond.neighbors_with_label(0, 2) == (3,)
        assert diamond.neighbors_with_label(0, 99) == ()

    def test_neighbor_label_counts(self, diamond):
        assert diamond.neighbor_label_counts(1) == {0: 1, 1: 1, 2: 1}
        assert diamond.neighbor_label_counts(0) == {1: 1, 2: 1}


class TestMemoryAccounting:
    def test_csr_memory_formula(self, diamond):
        n, m = 4, 5
        assert diamond.csr_memory_bytes() == 4 * (n + (n + 1) + 2 * m)

    def test_word_size_scales(self, diamond):
        assert diamond.csr_memory_bytes(8) == 2 * diamond.csr_memory_bytes(4)


class TestInvariants:
    @given(labeled_graphs(max_vertices=12))
    @settings(max_examples=60)
    def test_adjacency_is_symmetric(self, graph):
        for u in graph.vertices():
            for v in graph.neighbors(u):
                assert graph.has_edge(v, u)

    @given(labeled_graphs(max_vertices=12))
    @settings(max_examples=60)
    def test_degree_sum_is_twice_edges(self, graph):
        assert sum(graph.degree(v) for v in graph.vertices()) == 2 * graph.num_edges

    @given(labeled_graphs(max_vertices=12))
    @settings(max_examples=60)
    def test_label_views_are_consistent(self, graph):
        for lab in graph.label_set():
            vs = graph.vertices_with_label(lab)
            assert all(graph.label(v) == lab for v in vs)
        assert sum(
            len(graph.vertices_with_label(lab)) for lab in graph.label_set()
        ) == graph.num_vertices

    @given(labeled_graphs(max_vertices=10))
    @settings(max_examples=60)
    def test_neighbor_label_counts_match_neighbors(self, graph):
        for v in graph.vertices():
            counts = graph.neighbor_label_counts(v)
            assert sum(counts.values()) == graph.degree(v)
            for lab, cnt in counts.items():
                assert len(graph.neighbors_with_label(v, lab)) == cnt


class TestEdgeLabelCounts:
    def test_counts_unordered_pairs(self, diamond):
        counts = diamond.edge_label_counts()
        # Edges: (0,1)=0-1, (1,2)=1-1, (2,3)=1-2, (3,0)=0-2, (1,3)=1-2.
        assert counts == {(0, 1): 1, (1, 1): 1, (1, 2): 2, (0, 2): 1}
        assert sum(counts.values()) == diamond.num_edges

    def test_empty_graph(self):
        assert Graph.from_edge_list([], []).edge_label_counts() == {}

    def test_cached_instance_reused(self, diamond):
        assert diamond.edge_label_counts() is diamond.edge_label_counts()
