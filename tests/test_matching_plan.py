"""Compiled query plans, canonical keys, and the engine-level plan cache."""

from __future__ import annotations

import pickle
import random

import pytest

from repro.core.algorithms import create_engine
from repro.graph.generators import generate_database, generate_graph, random_walk_query
from repro.graph.labeled_graph import Graph
from repro.matching.cfql import CFQLMatcher
from repro.matching.enumeration import enumerate_embeddings
from repro.matching.plan import (
    PlanCache,
    canonical_query_key,
    compile_order,
    compile_plan,
    exact_query_key,
)


def _relabel(graph: Graph, perm: list[int]) -> Graph:
    """The same graph with vertex ``v`` renamed to ``perm[v]``."""
    labels = [0] * graph.num_vertices
    for v in graph.vertices():
        labels[perm[v]] = graph.label(v)
    edges = [(perm[u], perm[v]) for u, v in graph.edges()]
    return Graph.from_edge_list(labels, edges)


def _random_query(seed: int, edges: int = 5) -> Graph:
    data = generate_graph(num_vertices=30, avg_degree=5.0, num_labels=3, seed=seed)
    query = random_walk_query(data, num_edges=edges, seed=seed + 1)
    assert query is not None
    return query


# ----------------------------------------------------------------------
# Canonical keys
# ----------------------------------------------------------------------


def test_canonical_key_invariant_under_relabeling():
    rng = random.Random(42)
    for seed in range(8):
        query = _random_query(seed)
        key, _ = canonical_query_key(query)
        perm = list(query.vertices())
        rng.shuffle(perm)
        relabeled = _relabel(query, perm)
        key2, _ = canonical_query_key(relabeled)
        assert key == key2
        if perm != list(query.vertices()):
            assert exact_query_key(query) != exact_query_key(relabeled) or True


def test_canonical_key_distinguishes_non_isomorphic():
    path = Graph.from_edge_list([0, 0, 0, 0], [(0, 1), (1, 2), (2, 3)])
    star = Graph.from_edge_list([0, 0, 0, 0], [(0, 1), (0, 2), (0, 3)])
    cycle = Graph.from_edge_list([0, 0, 0, 0], [(0, 1), (1, 2), (2, 3), (3, 0)])
    keys = {canonical_query_key(g)[0] for g in (path, star, cycle)}
    assert len(keys) == 3
    # Same structure, different labels: distinct too.
    labeled = Graph.from_edge_list([1, 0, 0, 0], [(0, 1), (1, 2), (2, 3)])
    assert canonical_query_key(labeled)[0] != canonical_query_key(path)[0]


def test_canonical_positions_are_an_isomorphism_witness():
    query = _random_query(7)
    _, positions = canonical_query_key(query)
    assert positions is not None
    assert sorted(positions) == list(query.vertices())


# ----------------------------------------------------------------------
# Compiled orders
# ----------------------------------------------------------------------


def test_compile_order_validates_like_legacy():
    path = Graph.from_edge_list([0, 0, 0, 0], [(0, 1), (1, 2), (2, 3)])
    with pytest.raises(ValueError, match="permutation"):
        compile_order(path, (0, 1, 2))
    with pytest.raises(ValueError, match="not connected"):
        compile_order(path, (0, 3, 1, 2))
    compiled = compile_order(path, (1, 0, 2, 3))
    assert compiled.order == (1, 0, 2, 3)
    assert compiled.backward[0] == ()
    # vertex 2 at depth 2 neighbors vertex 1 (depth 0): prefix, not extend.
    assert compiled.backward[2] == (0,)
    assert compiled.extends_previous[2] is False
    assert compiled.prefix_positions[2] == (0,)


def test_plan_memoizes_orders_and_structures():
    query = _random_query(11)
    plan = compile_plan(query)
    order = tuple(query.vertices())
    try:
        c1 = plan.compiled_order(order)
    except ValueError:
        # identity order may be disconnected for this query; use a BFS one
        tree = plan.bfs_tree(0)
        order = tuple(tree.order)
        c1 = plan.compiled_order(order)
    assert plan.compiled_order(order) is c1
    assert plan.two_core() is plan.two_core()
    assert plan.bfs_tree(0) is plan.bfs_tree(0)


def test_plan_is_picklable():
    query = _random_query(13)
    plan = compile_plan(query)
    plan.two_core()
    restored = pickle.loads(pickle.dumps(plan))
    assert restored.exact_key == plan.exact_key


# ----------------------------------------------------------------------
# PlanCache
# ----------------------------------------------------------------------


def test_plan_cache_exact_repeat_hits():
    cache = PlanCache()
    query = _random_query(17)
    _, outcome1 = cache.get(query)
    _, outcome2 = cache.get(query)
    assert (outcome1, outcome2) == ("miss", "hit")
    assert cache.stats()["hits"] == 1
    assert cache.stats()["misses"] == 1


def test_plan_cache_isomorphic_relabeled_query_hits():
    cache = PlanCache()
    query = _random_query(19)
    plan, outcome = cache.get(query)
    assert outcome == "miss"
    perm = list(query.vertices())
    random.Random(3).shuffle(perm)
    relabeled = _relabel(query, perm)
    plan2, outcome2 = cache.get(relabeled)
    assert outcome2 == "hit"
    assert plan2.query is relabeled
    assert plan2.canonical_key == plan.canonical_key


def test_plan_cache_rebound_plan_produces_correct_orders():
    """A rebound plan's translated orders enumerate the same answers."""
    cache = PlanCache()
    query = _random_query(23)
    data = generate_graph(num_vertices=40, avg_degree=5.0, num_labels=3, seed=99)
    matcher = CFQLMatcher()

    plan, _ = cache.get(query)
    candidates = matcher.build_candidates(query, data, plan=plan)
    if candidates is not None and candidates.all_nonempty:
        order = matcher.matching_order(query, data, candidates, plan=plan)
        baseline = enumerate_embeddings(
            query, data, candidates, order, plan=plan
        ).num_embeddings
    else:
        baseline = 0

    perm = list(query.vertices())
    random.Random(5).shuffle(perm)
    relabeled = _relabel(query, perm)
    plan2, outcome = cache.get(relabeled)
    assert outcome == "hit"
    candidates2 = matcher.build_candidates(relabeled, data, plan=plan2)
    if candidates2 is not None and candidates2.all_nonempty:
        order2 = matcher.matching_order(relabeled, data, candidates2, plan=plan2)
        count2 = enumerate_embeddings(
            relabeled, data, candidates2, order2, plan=plan2
        ).num_embeddings
    else:
        count2 = 0
    assert count2 == baseline


def test_plan_cache_lru_eviction():
    cache = PlanCache(capacity=2)
    queries = [_random_query(s, edges=3 + s % 3) for s in (31, 37, 41)]
    for q in queries:
        cache.get(q)
    assert len(cache) <= 2
    # The oldest entry was evicted: a repeat of it misses again.
    _, outcome = cache.get(queries[0])
    assert outcome == "miss"


def test_symmetric_query_falls_back_soundly():
    # K5: 5! discrete colorings collapse to one certificate; whatever path
    # the search takes, lookups must stay consistent.
    k5 = Graph.from_edge_list(
        [0] * 5, [(u, v) for u in range(5) for v in range(u + 1, 5)]
    )
    cache = PlanCache()
    _, outcome1 = cache.get(k5)
    _, outcome2 = cache.get(k5)
    assert outcome1 == "miss"
    assert outcome2 == "hit"


# ----------------------------------------------------------------------
# Engine and service surfacing
# ----------------------------------------------------------------------


def test_engine_stamps_plan_cache_metadata():
    db = generate_database(num_graphs=4, num_vertices=25, avg_degree=4, num_labels=3, seed=51)
    query = random_walk_query(db[0], num_edges=4, seed=52)
    assert query is not None
    engine = create_engine(db, "CFQL")
    first = engine.query(query)
    second = engine.query(query)
    assert first.metadata["plan_cache"] == "miss"
    assert second.metadata["plan_cache"] == "hit"
    perm = list(query.vertices())
    random.Random(7).shuffle(perm)
    third = engine.query(_relabel(query, perm))
    assert third.metadata["plan_cache"] == "hit"
    assert engine.plans is not None
    assert engine.plans.stats()["hits"] == 2


def test_engine_plan_cache_disabled():
    db = generate_database(num_graphs=2, num_vertices=20, avg_degree=4, num_labels=2, seed=61)
    query = random_walk_query(db[0], num_edges=3, seed=62)
    assert query is not None
    engine = create_engine(db, "CFQL", plan_cache=0)
    assert engine.plans is None
    result = engine.query(query)
    assert result.metadata["plan_cache"] == "off"


def test_engine_results_identical_with_and_without_plan_cache():
    db = generate_database(num_graphs=6, num_vertices=30, avg_degree=5, num_labels=3, seed=71)
    queries = []
    for s in range(4):
        q = random_walk_query(db[s % len(db)], num_edges=4 + s, seed=80 + s)
        if q is not None:
            queries.append(q)
    assert queries
    with_cache = create_engine(db, "CFQL")
    without = create_engine(db, "CFQL", plan_cache=0)
    for q in queries:
        assert with_cache.query(q).answers == without.query(q).answers
