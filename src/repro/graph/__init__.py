"""Graph substrate: labeled graphs, databases, I/O, generators, algorithms."""

from repro.graph.algorithms import (
    BFSTree,
    bfs_tree,
    connected_components,
    core_numbers,
    enumerate_simple_cycles,
    is_connected,
    is_tree,
    two_core,
)
from repro.graph.builder import GraphBuilder
from repro.graph.database import DatabaseStats, GraphDatabase
from repro.graph.generators import (
    bfs_query,
    generate_database,
    generate_graph,
    random_walk_query,
    subgraph_from_edges,
)
from repro.graph.io import (
    parse_graph_database,
    read_graph_database,
    serialize_graph_database,
    write_graph_database,
)
from repro.graph.labeled_graph import Graph

__all__ = [
    "BFSTree",
    "DatabaseStats",
    "Graph",
    "GraphBuilder",
    "GraphDatabase",
    "bfs_query",
    "bfs_tree",
    "connected_components",
    "core_numbers",
    "enumerate_simple_cycles",
    "generate_database",
    "generate_graph",
    "is_connected",
    "is_tree",
    "parse_graph_database",
    "random_walk_query",
    "read_graph_database",
    "serialize_graph_database",
    "subgraph_from_edges",
    "two_core",
    "write_graph_database",
]
