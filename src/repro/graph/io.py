"""Text serialization of graphs and graph databases.

The format is the de-facto standard used by the subgraph-query literature
(GraphGen, Grapes, the paper's own released datasets)::

    t # <graph_name>
    v <vertex_id> <label>
    e <u> <v>

Vertices must be declared before edges reference them and must be numbered
``0..n-1`` within each graph.  Labels may be arbitrary tokens; non-integer
tokens are interned into dense integer labels and the mapping is attached to
the returned :class:`~repro.graph.database.GraphDatabase` as
``label_names``.
"""

from __future__ import annotations

import io as _io
from pathlib import Path
from typing import TextIO

from repro.graph.builder import GraphBuilder
from repro.graph.database import GraphDatabase
from repro.graph.labeled_graph import Graph
from repro.utils.errors import GraphBuildError, GraphFormatError
from repro.utils.fsio import atomic_write_text

__all__ = [
    "read_graph_database",
    "write_graph_database",
    "parse_graph_database",
    "serialize_graph_database",
]


class _LabelInterner:
    """Maps label tokens to dense ints; integer tokens map to themselves."""

    def __init__(self) -> None:
        self._by_name: dict[str, int] = {}
        self.names: dict[int, str] = {}
        self.saw_string = False

    def intern(self, token: str) -> int:
        try:
            return int(token)
        except ValueError:
            pass
        self.saw_string = True
        if token not in self._by_name:
            label = len(self._by_name)
            self._by_name[token] = label
            self.names[label] = token
        return self._by_name[token]


def _parse_stream(stream: TextIO, name: str | None) -> GraphDatabase:
    db = GraphDatabase(name=name)
    interner = _LabelInterner()
    builder: GraphBuilder | None = None

    def flush() -> None:
        nonlocal builder
        if builder is not None:
            db.add_graph(builder.build())
            builder = None

    lineno = 0
    try:
        for lineno, raw in enumerate(stream, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            kind = parts[0]
            try:
                if kind == "t":
                    flush()
                    graph_name = parts[-1] if len(parts) > 1 else None
                    if graph_name == "#":
                        graph_name = None
                    builder = GraphBuilder(name=graph_name)
                elif kind == "v":
                    if builder is None:
                        raise GraphFormatError("'v' line before any 't' line")
                    vid, label = int(parts[1]), interner.intern(parts[2])
                    assigned = builder.add_vertex(label)
                    if assigned != vid:
                        raise GraphFormatError(
                            f"vertex ids must be dense and in order; "
                            f"expected {assigned}, got {vid}"
                        )
                elif kind == "e":
                    if builder is None:
                        raise GraphFormatError("'e' line before any 't' line")
                    builder.add_edge(int(parts[1]), int(parts[2]))
                else:
                    raise GraphFormatError(f"unknown record type {kind!r}")
            except (IndexError, ValueError) as exc:
                raise GraphFormatError(
                    f"line {lineno}: malformed record {line!r}",
                    lineno=lineno,
                    line=line,
                ) from exc
            except GraphFormatError as exc:
                raise GraphFormatError(
                    f"line {lineno}: {exc}", lineno=lineno, line=line
                ) from None
            except GraphBuildError as exc:
                raise GraphFormatError(
                    f"line {lineno}: {exc}", lineno=lineno, line=line
                ) from None
    except UnicodeDecodeError as exc:
        # Garbage/binary bytes (a bit-flipped or misnamed file).  Raised
        # by the stream's lazy decoding, so it surfaces here rather than
        # at open() time; report where the text stopped making sense.
        raise GraphFormatError(
            f"line {lineno + 1}: not valid UTF-8 text (bad byte at offset "
            f"{exc.start}); the file is binary or corrupted",
            lineno=lineno + 1,
        ) from exc
    try:
        flush()
    except GraphBuildError as exc:
        # A truncated file can leave the final graph half-declared.
        raise GraphFormatError(
            f"line {lineno}: {exc} (file ends mid-graph?)", lineno=lineno
        ) from None
    if interner.saw_string:
        db.label_names = dict(interner.names)
    return db


def parse_graph_database(text: str, name: str | None = None) -> GraphDatabase:
    """Parse a database from an in-memory string."""
    return _parse_stream(_io.StringIO(text), name)


def read_graph_database(path: str | Path) -> GraphDatabase:
    """Read a database from a file; the database is named after the file."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as f:
        return _parse_stream(f, name=path.stem)


def _serialize_graph(graph: Graph, gid: int, out: TextIO, names: dict[int, str] | None) -> None:
    out.write(f"t # {graph.name if graph.name is not None else gid}\n")
    for v in graph.vertices():
        label = graph.label(v)
        token = names[label] if names and label in names else str(label)
        out.write(f"v {v} {token}\n")
    for u, v in graph.edges():
        out.write(f"e {u} {v}\n")


def serialize_graph_database(db: GraphDatabase) -> str:
    """Render the database in the exchange format as a string."""
    out = _io.StringIO()
    for gid, graph in db.items():
        _serialize_graph(graph, gid, out, db.label_names)
    return out.getvalue()


def write_graph_database(db: GraphDatabase, path: str | Path) -> None:
    """Write the database in the exchange format to ``path``.

    Atomic (temp file + fsync + rename): a crash mid-write never leaves
    a truncated database where a complete one stood.
    """
    atomic_write_text(Path(path), serialize_graph_database(db))
