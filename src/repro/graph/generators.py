"""Workload generators: data graphs and query graphs.

Two families, matching Section IV-A of the paper:

* :func:`generate_graph` / :func:`generate_database` stand in for GraphGen
  [4]: random connected labeled graphs parameterised by the same knobs the
  paper sweeps — ``#graphs``, ``#labels``, ``|V(G)|`` and ``degree``.
* :func:`random_walk_query` and :func:`bfs_query` implement the two query
  generators verbatim (random walk → sparse ``Q_iS`` query sets, BFS →
  dense ``Q_iD`` query sets).

Both query generators extract a connected subgraph of an existing data
graph, so every generated query is guaranteed to have at least one answer
in the database it was sampled from.
"""

from __future__ import annotations

import random

from repro.graph.builder import GraphBuilder
from repro.graph.database import GraphDatabase
from repro.graph.labeled_graph import Graph
from repro.utils.rng import SeedLike, make_rng, spawn_rng

__all__ = [
    "bfs_query",
    "generate_database",
    "generate_graph",
    "random_walk_query",
    "subgraph_from_edges",
]


# ----------------------------------------------------------------------
# Data graph generation (GraphGen stand-in)
# ----------------------------------------------------------------------


def generate_graph(
    num_vertices: int,
    avg_degree: float,
    num_labels: int,
    seed: SeedLike = None,
    name: str | None = None,
    label_weights: list[float] | None = None,
    attachment: str = "uniform",
) -> Graph:
    """Generate a random connected labeled graph.

    The graph has exactly ``round(num_vertices * avg_degree / 2)`` edges
    (clamped between a spanning tree and a clique), built as a random
    spanning tree plus sampled extra edges.  Labels are drawn from
    ``0..num_labels-1``, uniformly or with the given weights — skewed
    weights emulate real datasets where a few labels (e.g. carbon atoms in
    molecules) dominate.

    ``attachment`` controls the degree distribution:

    * ``"uniform"`` — Erdős–Rényi-like; degrees concentrate around the
      mean (GraphGen's behaviour, used for the synthetic sweeps);
    * ``"preferential"`` — Barabási–Albert-like; tree attachment and extra
      edges favour high-degree vertices, producing the hubs characteristic
      of protein-interaction networks.
    """
    if num_vertices < 1:
        raise ValueError("num_vertices must be positive")
    if num_labels < 1:
        raise ValueError("num_labels must be positive")
    if label_weights is not None and len(label_weights) != num_labels:
        raise ValueError("label_weights must have one weight per label")
    if attachment not in ("uniform", "preferential"):
        raise ValueError(f"unknown attachment model {attachment!r}")
    rng = make_rng(seed)
    if label_weights is None:
        labels = [rng.randrange(num_labels) for _ in range(num_vertices)]
    else:
        labels = rng.choices(range(num_labels), weights=label_weights, k=num_vertices)
    builder = GraphBuilder(name=name)
    builder.add_vertices(labels)

    if num_vertices == 1:
        return builder.build()

    preferential = attachment == "preferential"
    permutation = list(range(num_vertices))
    rng.shuffle(permutation)
    # ``endpoints`` lists every edge endpoint so far; sampling from it is
    # degree-proportional sampling (the classic Barabási–Albert trick).
    endpoints: list[int] = []
    for i in range(1, num_vertices):
        vertex = permutation[i]
        if preferential and endpoints:
            target = endpoints[rng.randrange(len(endpoints))]
            # The target must precede ``vertex`` in the permutation, which
            # it does: endpoints only contains already-attached vertices.
        else:
            target = permutation[rng.randrange(i)]
        builder.add_edge(vertex, target)
        endpoints.append(vertex)
        endpoints.append(target)

    max_edges = num_vertices * (num_vertices - 1) // 2
    target_edges = min(max(round(num_vertices * avg_degree / 2), num_vertices - 1), max_edges)
    current = num_vertices - 1
    # Rejection-sample extra edges.  Near-clique targets would make
    # rejection slow, so fall back to explicit enumeration when dense.
    if target_edges > 0.6 * max_edges:
        missing = [
            (u, v)
            for u in range(num_vertices)
            for v in range(u + 1, num_vertices)
            if not builder.has_edge(u, v)
        ]
        rng.shuffle(missing)
        for u, v in missing[: target_edges - current]:
            builder.add_edge(u, v)
    else:
        stall = 0
        while current < target_edges and stall < 100 * num_vertices:
            if preferential:
                u = endpoints[rng.randrange(len(endpoints))]
            else:
                u = rng.randrange(num_vertices)
            v = rng.randrange(num_vertices)
            if u != v and builder.try_add_edge(u, v):
                endpoints.append(u)
                endpoints.append(v)
                current += 1
                stall = 0
            else:
                stall += 1
        # Preferential sampling can saturate hubs; top up uniformly.
        while current < target_edges:
            u = rng.randrange(num_vertices)
            v = rng.randrange(num_vertices)
            if u != v and builder.try_add_edge(u, v):
                current += 1
    return builder.build()


def generate_database(
    num_graphs: int,
    num_vertices: int,
    avg_degree: float,
    num_labels: int,
    seed: SeedLike = None,
    name: str | None = None,
    label_weights: list[float] | None = None,
    attachment: str = "uniform",
) -> GraphDatabase:
    """Generate a database of ``num_graphs`` i.i.d. random graphs."""
    rng = make_rng(seed)
    db = GraphDatabase(name=name)
    for i in range(num_graphs):
        db.add_graph(
            generate_graph(
                num_vertices,
                avg_degree,
                num_labels,
                seed=spawn_rng(rng),
                name=f"g{i}",
                label_weights=label_weights,
                attachment=attachment,
            )
        )
    return db


# ----------------------------------------------------------------------
# Query graph generation
# ----------------------------------------------------------------------


def subgraph_from_edges(
    graph: Graph, edges: list[tuple[int, int]], name: str | None = None
) -> Graph:
    """Build a query graph from a set of data-graph edges.

    Vertices are renumbered densely in first-appearance order; labels are
    copied from the data graph.  The result contains exactly the given
    edges, so it is subgraph-isomorphic to ``graph`` by construction.
    """
    remap: dict[int, int] = {}
    labels: list[int] = []
    for u, v in edges:
        for w in (u, v):
            if w not in remap:
                remap[w] = len(labels)
                labels.append(graph.label(w))
    return Graph.from_edge_list(
        labels, [(remap[u], remap[v]) for u, v in edges], name=name
    )


def random_walk_query(
    graph: Graph,
    num_edges: int,
    seed: SeedLike = None,
    name: str | None = None,
    max_stall: int = 1000,
) -> Graph | None:
    """Extract a query by random walk (the paper's sparse generator).

    Performs a random walk from a random start vertex, collecting each
    traversed edge until ``num_edges`` distinct edges are gathered.
    Returns ``None`` when the walk cannot reach the target (e.g. the start
    component has too few edges); callers retry with a different seed or
    data graph.
    """
    if num_edges < 1:
        raise ValueError("num_edges must be positive")
    rng = make_rng(seed)
    if graph.num_edges < num_edges:
        return None
    start = rng.randrange(graph.num_vertices)
    if graph.degree(start) == 0:
        return None
    edges: list[tuple[int, int]] = []
    seen: set[tuple[int, int]] = set()
    current = start
    stall = 0
    while len(edges) < num_edges and stall < max_stall:
        nbrs = graph.neighbors(current)
        nxt = nbrs[rng.randrange(len(nbrs))]
        key = (current, nxt) if current < nxt else (nxt, current)
        if key in seen:
            stall += 1
        else:
            seen.add(key)
            edges.append((current, nxt))
            stall = 0
        current = nxt
    if len(edges) < num_edges:
        return None
    return subgraph_from_edges(graph, edges, name=name)


def bfs_query(
    graph: Graph,
    num_edges: int,
    seed: SeedLike = None,
    name: str | None = None,
) -> Graph | None:
    """Extract a query by BFS (the paper's dense generator).

    Runs a BFS from a random start vertex; whenever a new vertex is
    visited, the vertex and *all* its edges to already-visited vertices are
    added (one edge at a time) until ``num_edges`` edges are collected.
    Returns ``None`` if the start component is too small.
    """
    if num_edges < 1:
        raise ValueError("num_edges must be positive")
    rng = make_rng(seed)
    start = rng.randrange(graph.num_vertices)
    visited = {start}
    frontier = [start]
    edges: list[tuple[int, int]] = []
    while frontier and len(edges) < num_edges:
        u = frontier.pop(0)
        nbrs = list(graph.neighbors(u))
        rng.shuffle(nbrs)
        for v in nbrs:
            if v in visited:
                continue
            visited.add(v)
            frontier.append(v)
            # Add all of v's edges into the visited set, stopping the
            # moment the target edge count is reached (paper, Sec. IV-A).
            for w in graph.neighbors(v):
                if w in visited and w != v:
                    edges.append((v, w))
                    if len(edges) == num_edges:
                        return subgraph_from_edges(graph, edges, name=name)
    if len(edges) < num_edges:
        return None
    return subgraph_from_edges(graph, edges, name=name)
