"""Incremental construction of :class:`~repro.graph.labeled_graph.Graph`.

``Graph`` itself is immutable, so all mutation happens here.  The builder
validates as it goes: vertex ids must exist before they appear in edges,
self loops are always rejected, and duplicate edges either raise
(:meth:`add_edge`) or are reported (:meth:`try_add_edge`) — the latter is
what the random generators use when they sample edges with replacement.
"""

from __future__ import annotations

from repro.graph.labeled_graph import Graph
from repro.utils.errors import GraphBuildError

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Accumulates vertices and edges, then produces an immutable graph."""

    def __init__(self, name: str | None = None) -> None:
        self.name = name
        self._labels: list[int] = []
        self._adjacency: list[set[int]] = []

    # ------------------------------------------------------------------
    # Vertices
    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self._adjacency) // 2

    def add_vertex(self, label: int) -> int:
        """Add a vertex with ``label`` and return its id."""
        self._labels.append(label)
        self._adjacency.append(set())
        return len(self._labels) - 1

    def add_vertices(self, labels: list[int]) -> range:
        """Add several vertices at once; returns the assigned id range."""
        start = len(self._labels)
        for label in labels:
            self.add_vertex(label)
        return range(start, len(self._labels))

    # ------------------------------------------------------------------
    # Edges
    # ------------------------------------------------------------------

    def _validate_endpoints(self, u: int, v: int) -> None:
        n = len(self._labels)
        if not (0 <= u < n and 0 <= v < n):
            raise GraphBuildError(f"edge ({u}, {v}) references unknown vertex")
        if u == v:
            raise GraphBuildError(f"self loop on vertex {u}")

    def add_edge(self, u: int, v: int) -> None:
        """Add the undirected edge ``(u, v)``; raises on duplicates."""
        self._validate_endpoints(u, v)
        if v in self._adjacency[u]:
            raise GraphBuildError(f"duplicate edge ({u}, {v})")
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)

    def try_add_edge(self, u: int, v: int) -> bool:
        """Add the edge if absent; returns whether it was added.

        Self loops are still an error — generators never produce them on
        purpose, so silently skipping one would hide a bug.
        """
        self._validate_endpoints(u, v)
        if v in self._adjacency[u]:
            return False
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)
        return True

    def has_edge(self, u: int, v: int) -> bool:
        self._validate_endpoints(u, v)
        return v in self._adjacency[u]

    def degree(self, v: int) -> int:
        return len(self._adjacency[v])

    # ------------------------------------------------------------------
    # Finalisation
    # ------------------------------------------------------------------

    def build(self) -> Graph:
        """Freeze the accumulated structure into an immutable graph.

        The builder remains usable afterwards (e.g. to keep growing a graph
        and snapshot it again), because ``Graph`` copies what it needs.
        """
        adjacency = [sorted(nbrs) for nbrs in self._adjacency]
        return Graph(self._labels, adjacency, name=self.name)
