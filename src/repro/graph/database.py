"""The graph database: an updatable collection of data graphs.

Graph ids are stable handles: removing a graph never renumbers the others.
This matters for the paper's motivating point that IFV indices are costly to
maintain under updates — the dynamic-database example exercises exactly
``add_graph``/``remove_graph`` against an index that must keep up.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

from repro.graph.labeled_graph import Graph

__all__ = ["DatabaseStats", "GraphDatabase"]


@dataclass(frozen=True)
class DatabaseStats:
    """The per-dataset statistics the paper reports in Table IV."""

    num_graphs: int
    num_labels: int
    avg_vertices: float
    avg_edges: float
    avg_degree: float
    avg_labels_per_graph: float

    def as_row(self) -> dict[str, float]:
        return {
            "#graphs": self.num_graphs,
            "#labels": self.num_labels,
            "#vertices per graph": round(self.avg_vertices, 2),
            "#edges per graph": round(self.avg_edges, 2),
            "degree per graph": round(self.avg_degree, 2),
            "#labels per graph": round(self.avg_labels_per_graph, 2),
        }


class GraphDatabase:
    """An ordered, updatable collection of data graphs with stable ids."""

    def __init__(self, name: str | None = None) -> None:
        self.name = name
        self._graphs: dict[int, Graph] = {}
        self._next_id = 0
        # Optional mapping from integer labels back to source names, filled
        # in by the I/O layer when a file uses string labels.
        self.label_names: dict[int, str] | None = None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    @property
    def next_id(self) -> int:
        """The id the next :meth:`add_graph` will assign (peek, no mutate).

        The durable mutation path journals an insertion *before* applying
        it, and the journaled record must carry the id the graph will
        actually get.
        """
        return self._next_id

    def add_graph(self, graph: Graph) -> int:
        """Insert ``graph`` and return its stable id."""
        gid = self._next_id
        self._graphs[gid] = graph
        self._next_id += 1
        return gid

    def add_graphs(self, graphs: list[Graph]) -> list[int]:
        return [self.add_graph(g) for g in graphs]

    def add_graph_with_id(self, gid: int, graph: Graph) -> int:
        """Insert ``graph`` under a caller-chosen id (mutation-log replay).

        Replaying a journaled insertion must reproduce the exact id the
        original session acknowledged, not whatever ``_next_id`` happens
        to be.  The id counter is bumped past ``gid`` so later plain
        insertions never collide with a replayed one.
        """
        if gid in self._graphs:
            raise ValueError(f"graph id {gid} is already present")
        if gid < 0:
            raise ValueError(f"graph id must be non-negative, got {gid}")
        self._graphs[gid] = graph
        self._next_id = max(self._next_id, gid + 1)
        return gid

    def remove_graph(self, gid: int) -> Graph:
        """Remove and return the graph with id ``gid``."""
        try:
            return self._graphs.pop(gid)
        except KeyError:
            raise KeyError(f"no graph with id {gid}") from None

    def restore(self, graphs: list[tuple[int, Graph]], next_id: int) -> None:
        """Replace the whole contents (database-snapshot recovery).

        ``graphs`` must be in the original insertion order: the database
        fingerprint hashes graphs in iteration order, so a restored
        database must iterate exactly like the one that was snapshotted.
        """
        self._graphs = dict(graphs)
        self._next_id = max(
            [next_id, *(gid + 1 for gid in self._graphs)], default=next_id
        )

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._graphs)

    def __contains__(self, gid: int) -> bool:
        return gid in self._graphs

    def __getitem__(self, gid: int) -> Graph:
        return self._graphs[gid]

    def __iter__(self) -> Iterator[int]:
        """Iterate over graph ids in insertion order."""
        return iter(self._graphs)

    def ids(self) -> list[int]:
        return list(self._graphs)

    def items(self) -> Iterator[tuple[int, Graph]]:
        return iter(self._graphs.items())

    def graphs(self) -> list[Graph]:
        return list(self._graphs.values())

    # ------------------------------------------------------------------
    # Statistics & accounting
    # ------------------------------------------------------------------

    def stats(self) -> DatabaseStats:
        """Aggregate statistics in the shape of the paper's Table IV."""
        n = len(self._graphs)
        if n == 0:
            return DatabaseStats(0, 0, 0.0, 0.0, 0.0, 0.0)
        all_labels: set[int] = set()
        total_vertices = total_edges = total_label_kinds = 0
        total_degree = 0.0
        for g in self._graphs.values():
            all_labels.update(g.label_set())
            total_vertices += g.num_vertices
            total_edges += g.num_edges
            total_degree += g.average_degree
            total_label_kinds += g.num_labels
        return DatabaseStats(
            num_graphs=n,
            num_labels=len(all_labels),
            avg_vertices=total_vertices / n,
            avg_edges=total_edges / n,
            avg_degree=total_degree / n,
            avg_labels_per_graph=total_label_kinds / n,
        )

    def csr_memory_bytes(self, word_bytes: int = 4) -> int:
        """Combined CSR footprint of all data graphs (Table VII 'Datasets')."""
        return sum(g.csr_memory_bytes(word_bytes) for g in self._graphs.values())

    def profile_memory_bytes(self) -> int:
        """Combined size of the lazily built per-graph bitmap profiles."""
        return sum(g.profile_memory_bytes() for g in self._graphs.values())

    def __repr__(self) -> str:
        tag = f" {self.name!r}" if self.name else ""
        return f"<GraphDatabase{tag} |D|={len(self._graphs)}>"
