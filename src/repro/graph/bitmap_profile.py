"""Word-block bitmap profiles of a data graph (the numpy-backend views).

A :class:`~repro.graph.labeled_graph.Graph` memoizes *int* bitmap profiles
(label partition, adjacency, degree/NLF thresholds) for the pure-python
bitset backend.  :class:`NumpyGraphProfile` is the same family of views in
the numpy ``uint64`` word-block representation, built once per graph and
shared by every query:

``adjacency()``
    The full adjacency matrix — one ``ceil(n/64)``-word row per vertex,
    row ``v`` = bitmap of N(v).  Gathering rows for a whole candidate
    frontier (``adjacency()[ids]``) feeds the batch AND/popcount kernels.

``label_adjacency(label)``
    Per-label adjacency matrices (label × vertex → word-block rows): row
    ``v`` = bitmap of the neighbors of ``v`` carrying ``label``.  These
    extend the GraphMini-style sibling-prefix memo one level further — a
    prefix intersection Φ(u) ∩ N(v) over label-pure candidate sets can
    use the sparser label-restricted row, which empties (and therefore
    prunes) earlier.

``label_row`` / ``degree_row`` / ``nlf_row``
    The seed-filter threshold bitmaps (LDF/NLF), one vectorized
    comparison + packbits each, memoized exactly like their int
    counterparts on the graph.

Everything is derived from the graph's CSR arrays with vectorized numpy
calls — no per-edge Python loops — so building the profile for a
multi-thousand-vertex graph costs milliseconds.
"""

from __future__ import annotations

import numpy as np

__all__ = ["NumpyGraphProfile"]

_ONE = np.uint64(1)
_WORD_BITS = np.uint64(63)


def _pack_indices(idx: np.ndarray, nwords: int) -> np.ndarray:
    """Pack an int64 index array into one word-block bitmap row."""
    row = np.zeros(nwords, dtype=np.uint64)
    if idx.size:
        np.bitwise_or.at(row, idx >> 6, _ONE << (idx.astype(np.uint64) & _WORD_BITS))
    return row


class NumpyGraphProfile:
    """Memoized word-block bitmap views of one immutable graph."""

    __slots__ = (
        "num_vertices",
        "words",
        "_labels",
        "_degrees",
        "_edge_src",
        "_edge_dst",
        "_adjacency",
        "_label_rows",
        "_label_adjacency",
        "_label_counts",
        "_degree_rows",
        "_nlf_rows",
    )

    def __init__(self, graph) -> None:
        n = graph.num_vertices
        self.num_vertices = n
        self.words = (n + 63) >> 6
        self._labels = np.array(graph.labels, dtype=np.int64)
        offsets = np.array(graph.csr_offsets(), dtype=np.int64)
        self._edge_dst = np.array(graph.csr_edges(), dtype=np.int64)
        self._degrees = np.diff(offsets)
        # Row index of each CSR edge slot (the edge's source vertex).
        self._edge_src = np.repeat(np.arange(n, dtype=np.int64), self._degrees)
        # Lazy memos — built on first use, immutable thereafter.
        self._adjacency: np.ndarray | None = None
        self._label_rows: dict[int, np.ndarray] = {}
        self._label_adjacency: dict[int, np.ndarray] = {}
        self._label_counts: dict[int, np.ndarray] = {}
        self._degree_rows: dict[int, np.ndarray] = {}
        self._nlf_rows: dict[tuple[int, int], np.ndarray] = {}

    # ------------------------------------------------------------------
    # Adjacency
    # ------------------------------------------------------------------

    def adjacency(self) -> np.ndarray:
        """The (n × words) adjacency matrix; row ``v`` is the N(v) bitmap."""
        if self._adjacency is None:
            matrix = np.zeros((self.num_vertices, self.words), dtype=np.uint64)
            if self._edge_dst.size:
                np.bitwise_or.at(
                    matrix,
                    (self._edge_src, self._edge_dst >> 6),
                    _ONE << (self._edge_dst.astype(np.uint64) & _WORD_BITS),
                )
            self._adjacency = matrix
        return self._adjacency

    def adjacency_row(self, v: int) -> np.ndarray:
        """The N(v) bitmap row (a view into the adjacency matrix)."""
        return self.adjacency()[v]

    def label_adjacency(self, label: int) -> np.ndarray:
        """The label-restricted adjacency matrix for ``label``.

        Row ``v`` = bitmap of neighbors of ``v`` carrying ``label``; one
        matrix per label actually asked for (queries only probe their own
        label set, so the family stays small).
        """
        matrix = self._label_adjacency.get(label)
        if matrix is None:
            matrix = np.zeros((self.num_vertices, self.words), dtype=np.uint64)
            mask = self._labels[self._edge_dst] == label
            dst = self._edge_dst[mask]
            if dst.size:
                np.bitwise_or.at(
                    matrix,
                    (self._edge_src[mask], dst >> 6),
                    _ONE << (dst.astype(np.uint64) & _WORD_BITS),
                )
            self._label_adjacency[label] = matrix
        return matrix

    # ------------------------------------------------------------------
    # Seed-filter threshold rows (LDF / NLF)
    # ------------------------------------------------------------------

    def label_row(self, label: int) -> np.ndarray:
        """Bitmap of the vertices carrying ``label``."""
        row = self._label_rows.get(label)
        if row is None:
            idx = np.nonzero(self._labels == label)[0]
            row = _pack_indices(idx, self.words)
            self._label_rows[label] = row
        return row

    def degree_row(self, min_degree: int) -> np.ndarray:
        """Bitmap of the vertices with degree >= ``min_degree``."""
        row = self._degree_rows.get(min_degree)
        if row is None:
            idx = np.nonzero(self._degrees >= min_degree)[0]
            row = _pack_indices(idx, self.words)
            self._degree_rows[min_degree] = row
        return row

    def _counts_for_label(self, label: int) -> np.ndarray:
        """Per-vertex count of neighbors carrying ``label`` (memoized)."""
        counts = self._label_counts.get(label)
        if counts is None:
            mask = self._labels[self._edge_dst] == label
            counts = np.bincount(
                self._edge_src[mask], minlength=self.num_vertices
            ).astype(np.int64)
            self._label_counts[label] = counts
        return counts

    def nlf_row(self, label: int, min_count: int) -> np.ndarray:
        """Bitmap of vertices with >= ``min_count`` neighbors of ``label``."""
        key = (label, min_count)
        row = self._nlf_rows.get(key)
        if row is None:
            idx = np.nonzero(self._counts_for_label(label) >= min_count)[0]
            row = _pack_indices(idx, self.words)
            self._nlf_rows[key] = row
        return row

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def memory_bytes(self) -> int:
        """Retained size of every materialized word-block structure."""
        total = self._labels.nbytes + self._degrees.nbytes
        total += self._edge_src.nbytes + self._edge_dst.nbytes
        if self._adjacency is not None:
            total += self._adjacency.nbytes
        for family in (self._label_rows, self._degree_rows, self._nlf_rows):
            total += sum(row.nbytes for row in family.values())
        total += sum(m.nbytes for m in self._label_adjacency.values())
        total += sum(c.nbytes for c in self._label_counts.values())
        return total

    def __repr__(self) -> str:
        return (
            f"<NumpyGraphProfile n={self.num_vertices} words={self.words} "
            f"labels={len(self._label_adjacency)}>"
        )
