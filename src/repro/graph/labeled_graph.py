"""The vertex-labeled undirected graph (Section II-A of the paper).

The paper stores data graphs in CSR format — "a label array, an offset
array and an edge array" (Table VII).  :class:`Graph` mirrors that layout:
it is immutable after construction and keeps exactly those three arrays,
plus a per-vertex neighbor set for O(1) edge tests and two lazily built
label-partitioned views that the matching algorithms rely on:

* ``vertices_with_label`` — the reverse label index, used to seed candidate
  vertex sets;
* ``neighbors_with_label`` — per-vertex adjacency partitioned by neighbor
  label, used by CFL's candidate generation ("intersecting the sets of
  neighbors, with label L(u), of vertices in Φ(u')").

On top of those, the graph memoizes *bitmap profiles* over its dense
vertex ids (see :mod:`repro.utils.bitset`): the label partition, the
per-vertex adjacency, degree-threshold sets and neighbor-label-frequency
thresholds, each as one int bitmap.  The candidate filters of GraphQL,
CFL and CFQL reduce to AND/popcount over these, and because the graph is
immutable the profiles are computed once and shared by every query that
touches the graph.  :meth:`profile_memory_bytes` accounts for them.

Vertices are dense integers ``0..n-1``; labels are arbitrary integers.
Self loops and parallel edges are rejected at build time.
"""

from __future__ import annotations

from array import array
from collections.abc import Iterable, Iterator

from repro.utils.bitset import bitmap_bytes, pack_bits

__all__ = ["Graph"]


class Graph:
    """An immutable vertex-labeled undirected graph in CSR form.

    Instances are normally created through
    :class:`~repro.graph.builder.GraphBuilder` or
    :meth:`Graph.from_edge_list`.
    """

    __slots__ = (
        "name",
        "_labels",
        "_offsets",
        "_edges",
        "_adj_sets",
        "_label_index",
        "_nbr_by_label",
        "_nbr_label_counts",
        "_edge_label_counts",
        "_label_bitmaps",
        "_nbr_bitmaps",
        "_nbr_label_bitmaps",
        "_degree_bitmaps",
        "_nlf_bitmaps",
        "_np_profile",
    )

    def __init__(
        self,
        labels: Iterable[int],
        adjacency: list[list[int]],
        name: str | None = None,
    ) -> None:
        """Build a graph from per-vertex labels and sorted adjacency lists.

        ``adjacency`` must be symmetric (if ``v in adjacency[u]`` then
        ``u in adjacency[v]``), free of self loops, and free of duplicates;
        :class:`~repro.graph.builder.GraphBuilder` guarantees this.  The
        constructor does not re-validate, so prefer the builder for
        untrusted input.
        """
        self.name = name
        self._labels = array("q", labels)
        offsets = array("q", [0] * (len(self._labels) + 1))
        edges = array("q")
        for v, nbrs in enumerate(adjacency):
            edges.extend(sorted(nbrs))
            offsets[v + 1] = len(edges)
        self._offsets = offsets
        self._edges = edges
        self._adj_sets: tuple[frozenset[int], ...] = tuple(
            frozenset(nbrs) for nbrs in adjacency
        )
        # Lazy caches (built on first use; the graph itself never changes).
        self._label_index: dict[int, tuple[int, ...]] | None = None
        self._nbr_by_label: list[dict[int, tuple[int, ...]]] | None = None
        self._nbr_label_counts: list[dict[int, int]] | None = None
        self._edge_label_counts: dict[tuple[int, int], int] | None = None
        # Bitmap profiles (memoized; see "Bitmap profiles" below).
        self._label_bitmaps: dict[int, int] | None = None
        self._nbr_bitmaps: list[int] | None = None
        self._nbr_label_bitmaps: list[dict[int, int]] | None = None
        self._degree_bitmaps: dict[int, int] = {}
        self._nlf_bitmaps: dict[tuple[int, int], int] = {}
        # Word-block profile for the numpy bitset backend (lazy).
        self._np_profile = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_edge_list(
        cls,
        labels: Iterable[int],
        edges: Iterable[tuple[int, int]],
        name: str | None = None,
    ) -> "Graph":
        """Create a graph from vertex labels and an undirected edge list.

        Duplicate edges (in either orientation) and self loops raise
        ``ValueError``; use the builder for more forgiving construction.
        """
        label_list = list(labels)
        adjacency: list[list[int]] = [[] for _ in label_list]
        seen: set[tuple[int, int]] = set()
        for u, v in edges:
            if u == v:
                raise ValueError(f"self loop on vertex {u}")
            if not (0 <= u < len(label_list) and 0 <= v < len(label_list)):
                raise ValueError(f"edge ({u}, {v}) references unknown vertex")
            key = (u, v) if u < v else (v, u)
            if key in seen:
                raise ValueError(f"duplicate edge ({u}, {v})")
            seen.add(key)
            adjacency[u].append(v)
            adjacency[v].append(u)
        return cls(label_list, adjacency, name=name)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        return len(self._edges) // 2

    def vertices(self) -> range:
        return range(len(self._labels))

    def label(self, v: int) -> int:
        return self._labels[v]

    @property
    def labels(self) -> tuple[int, ...]:
        return tuple(self._labels)

    def degree(self, v: int) -> int:
        return self._offsets[v + 1] - self._offsets[v]

    def neighbors(self, v: int) -> array:
        """Sorted neighbor ids of ``v`` (a memoryview-cheap array slice)."""
        return self._edges[self._offsets[v] : self._offsets[v + 1]]

    def csr_offsets(self) -> array:
        """The CSR offset array (length ``n + 1``; read-only by contract)."""
        return self._offsets

    def csr_edges(self) -> array:
        """The CSR edge array (length ``2m``; read-only by contract)."""
        return self._edges

    def neighbor_set(self, v: int) -> frozenset[int]:
        return self._adj_sets[v]

    def has_edge(self, u: int, v: int) -> bool:
        return v in self._adj_sets[u]

    def edges(self) -> Iterator[tuple[int, int]]:
        """Yield each undirected edge once, as ``(u, v)`` with ``u < v``."""
        for u in self.vertices():
            for v in self.neighbors(u):
                if u < v:
                    yield (u, v)

    # ------------------------------------------------------------------
    # Derived statistics
    # ------------------------------------------------------------------

    @property
    def average_degree(self) -> float:
        if not self._labels:
            return 0.0
        return len(self._edges) / len(self._labels)

    @property
    def max_degree(self) -> int:
        if not self._labels:
            return 0
        return max(self.degree(v) for v in self.vertices())

    @property
    def density(self) -> float:
        n = len(self._labels)
        if n < 2:
            return 0.0
        return 2.0 * self.num_edges / (n * (n - 1))

    def label_set(self) -> frozenset[int]:
        return frozenset(self._labels)

    @property
    def num_labels(self) -> int:
        return len(set(self._labels))

    # ------------------------------------------------------------------
    # Label-partitioned views (lazy)
    # ------------------------------------------------------------------

    def vertices_with_label(self, label: int) -> tuple[int, ...]:
        """All vertices carrying ``label`` (the reverse label index)."""
        if self._label_index is None:
            index: dict[int, list[int]] = {}
            for v, lab in enumerate(self._labels):
                index.setdefault(lab, []).append(v)
            self._label_index = {lab: tuple(vs) for lab, vs in index.items()}
        return self._label_index.get(label, ())

    def neighbors_with_label(self, v: int, label: int) -> tuple[int, ...]:
        """Neighbors of ``v`` carrying ``label`` (sorted)."""
        if self._nbr_by_label is None:
            per_vertex: list[dict[int, tuple[int, ...]]] = []
            for u in self.vertices():
                groups: dict[int, list[int]] = {}
                for w in self.neighbors(u):
                    groups.setdefault(self._labels[w], []).append(w)
                per_vertex.append({lab: tuple(ws) for lab, ws in groups.items()})
            self._nbr_by_label = per_vertex
        return self._nbr_by_label[v].get(label, ())

    def neighbor_label_counts(self, v: int) -> dict[int, int]:
        """Multiset of neighbor labels of ``v`` (the "neighborhood profile"
        GraphQL filters on)."""
        if self._nbr_label_counts is None:
            per_vertex = []
            for u in self.vertices():
                counts: dict[int, int] = {}
                for w in self.neighbors(u):
                    lab = self._labels[w]
                    counts[lab] = counts.get(lab, 0) + 1
                per_vertex.append(counts)
            self._nbr_label_counts = per_vertex
        return self._nbr_label_counts[v]

    def edge_label_counts(self) -> dict[tuple[int, int], int]:
        """Occurrences of each unordered label pair over the edges.

        Keys are ``(min(label), max(label))``.  QuickSI's QI-sequence
        ordering weighs query edges by how frequent their label pair is in
        the data graph — rare pairs first.
        """
        if self._edge_label_counts is None:
            counts: dict[tuple[int, int], int] = {}
            for u, v in self.edges():
                lu, lv = self._labels[u], self._labels[v]
                key = (lu, lv) if lu <= lv else (lv, lu)
                counts[key] = counts.get(key, 0) + 1
            self._edge_label_counts = counts
        return self._edge_label_counts

    # ------------------------------------------------------------------
    # Bitmap profiles (lazy; the bitset-kernel views of the graph)
    # ------------------------------------------------------------------

    def label_bitmap(self, label: int) -> int:
        """Bitmap of the vertices carrying ``label``."""
        if self._label_bitmaps is None:
            index: dict[int, int] = {}
            for v, lab in enumerate(self._labels):
                index[lab] = index.get(lab, 0) | (1 << v)
            self._label_bitmaps = index
        return self._label_bitmaps.get(label, 0)

    def neighbor_bitmap(self, v: int) -> int:
        """Bitmap of N(v)."""
        if self._nbr_bitmaps is None:
            self._nbr_bitmaps = [pack_bits(nbrs) for nbrs in self._adj_sets]
        return self._nbr_bitmaps[v]

    def neighbor_label_bitmap(self, v: int, label: int) -> int:
        """Bitmap of the neighbors of ``v`` carrying ``label``."""
        if self._nbr_label_bitmaps is None:
            per_vertex: list[dict[int, int]] = []
            for u in self.vertices():
                groups: dict[int, int] = {}
                for w in self.neighbors(u):
                    lab = self._labels[w]
                    groups[lab] = groups.get(lab, 0) | (1 << w)
                per_vertex.append(groups)
            self._nbr_label_bitmaps = per_vertex
        return self._nbr_label_bitmaps[v].get(label, 0)

    def degree_bitmap(self, min_degree: int) -> int:
        """Bitmap of the vertices with degree ≥ ``min_degree``.

        Memoized per threshold; queries only ever ask for their own
        vertex degrees, so the set of thresholds stays tiny.
        """
        cached = self._degree_bitmaps.get(min_degree)
        if cached is None:
            cached = pack_bits(
                v for v in self.vertices() if self.degree(v) >= min_degree
            )
            self._degree_bitmaps[min_degree] = cached
        return cached

    def nlf_bitmap(self, label: int, min_count: int) -> int:
        """Bitmap of vertices with ≥ ``min_count`` neighbors of ``label``.

        One cached bitmap per (label, threshold) pair turns the NLF filter
        ("for every label l, |N(u) with label l| ≤ |N(v) with label l|")
        into a chain of ANDs shared by all queries on this graph.
        """
        key = (label, min_count)
        cached = self._nlf_bitmaps.get(key)
        if cached is None:
            cached = 0
            for v in self.vertices():
                if self.neighbor_label_counts(v).get(label, 0) >= min_count:
                    cached |= 1 << v
            self._nlf_bitmaps[key] = cached
        return cached

    def bitset_profile(self, kernel):
        """The word-block profile for a numpy bitset kernel (memoized).

        Returns ``None`` for the python backend, whose profiles are the
        int-bitmap memos above.  There is exactly one numpy kernel per
        process, so a single cached profile suffices.
        """
        if kernel is None or kernel.name != "numpy":
            return None
        if self._np_profile is None:
            from repro.graph.bitmap_profile import NumpyGraphProfile

            self._np_profile = NumpyGraphProfile(self)
        return self._np_profile

    # ------------------------------------------------------------------
    # Pickling
    # ------------------------------------------------------------------

    def __getstate__(self) -> dict:
        """Drop the numpy profile: it is a per-process cache of ndarray
        views, cheap to rebuild and potentially unimportable (the
        ``[perf]`` extra) on the receiving side of a pool boundary."""
        state = {
            slot: getattr(self, slot) for slot in self.__slots__ if slot != "_np_profile"
        }
        state["_np_profile"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)

    # ------------------------------------------------------------------
    # Memory accounting
    # ------------------------------------------------------------------

    def profile_memory_bytes(self) -> int:
        """Retained size of the memoized bitmap/NLF profiles.

        Counts the bitmap payloads plus one word (8 bytes) per cached NLF
        profile entry, so the lazily built acceleration structures show up
        in memory reports the same way index structures do.
        """
        total = 0
        if self._label_bitmaps is not None:
            total += sum(bitmap_bytes(b) for b in self._label_bitmaps.values())
        if self._nbr_bitmaps is not None:
            total += sum(bitmap_bytes(b) for b in self._nbr_bitmaps)
        if self._nbr_label_bitmaps is not None:
            total += sum(
                bitmap_bytes(b)
                for groups in self._nbr_label_bitmaps
                for b in groups.values()
            )
        total += sum(bitmap_bytes(b) for b in self._degree_bitmaps.values())
        total += sum(bitmap_bytes(b) for b in self._nlf_bitmaps.values())
        if self._nbr_label_counts is not None:
            total += 8 * sum(len(c) for c in self._nbr_label_counts)
        if self._np_profile is not None:
            # Word-block profile: fixed ceil(n/64)-word rows, counted at
            # their true (backend-accurate) footprint.
            total += self._np_profile.memory_bytes()
        return total

    def csr_memory_bytes(self, word_bytes: int = 4) -> int:
        """Size of the CSR arrays as the paper counts them (Table VII).

        The paper's C++ implementation stores a label array (n words), an
        offset array (n+1 words) and an edge array (2m words).  We report
        that figure rather than the Python object overhead so the
        "Datasets" rows of Tables VII/IX are comparable in spirit.
        """
        n = len(self._labels)
        return word_bytes * (n + (n + 1) + len(self._edges))

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------

    def __repr__(self) -> str:
        tag = f" {self.name!r}" if self.name else ""
        return (
            f"<Graph{tag} |V|={self.num_vertices} |E|={self.num_edges} "
            f"|Σ|={self.num_labels}>"
        )

    def __len__(self) -> int:
        return len(self._labels)
