"""Structural graph algorithms used across the library.

These are the building blocks the paper's systems lean on: CFL builds a BFS
tree of the query and prioritises its 2-core; CT-Index enumerates simple
cycles; the workload generators need connectivity checks; the query-set
statistics (Table V) need tree detection.
"""

from __future__ import annotations

import heapq
from collections import deque
from collections.abc import Iterator
from dataclasses import dataclass

from repro.graph.labeled_graph import Graph

__all__ = [
    "BFSTree",
    "bfs_tree",
    "connected_components",
    "core_numbers",
    "enumerate_simple_cycles",
    "is_connected",
    "is_tree",
    "two_core",
]


@dataclass(frozen=True)
class BFSTree:
    """A rooted BFS spanning tree of a connected graph.

    ``order`` lists vertices in visit order (root first); ``parent[v]`` is
    ``-1`` for the root; ``level[v]`` is the BFS depth; ``children[v]``
    lists tree children in visit order.  CFL's CPI construction walks this
    structure top-down and bottom-up.
    """

    root: int
    order: tuple[int, ...]
    parent: tuple[int, ...]
    level: tuple[int, ...]
    children: tuple[tuple[int, ...], ...]

    @property
    def depth(self) -> int:
        return max(self.level) if self.level else 0

    def vertices_by_level(self) -> list[list[int]]:
        levels: list[list[int]] = [[] for _ in range(self.depth + 1)]
        for v in self.order:
            levels[self.level[v]].append(v)
        return levels


def bfs_tree(graph: Graph, root: int) -> BFSTree:
    """BFS spanning tree of the component containing ``root``.

    Raises ``ValueError`` if the graph is not connected, because every
    caller in this library (CFL on a connected query graph) requires full
    coverage and silently dropping vertices would corrupt candidate sets.
    """
    n = graph.num_vertices
    parent = [-2] * n  # -2 = unvisited, -1 = root
    level = [0] * n
    children: list[list[int]] = [[] for _ in range(n)]
    order: list[int] = []
    parent[root] = -1
    queue: deque[int] = deque([root])
    while queue:
        u = queue.popleft()
        order.append(u)
        for v in graph.neighbors(u):
            if parent[v] == -2:
                parent[v] = u
                level[v] = level[u] + 1
                children[u].append(v)
                queue.append(v)
    if len(order) != n:
        raise ValueError("bfs_tree requires a connected graph")
    return BFSTree(
        root=root,
        order=tuple(order),
        parent=tuple(parent),
        level=tuple(level),
        children=tuple(tuple(c) for c in children),
    )


def connected_components(graph: Graph) -> list[list[int]]:
    """Connected components as sorted vertex lists, largest-id-first order
    not guaranteed — components appear in order of their smallest vertex."""
    n = graph.num_vertices
    seen = [False] * n
    components: list[list[int]] = []
    for start in range(n):
        if seen[start]:
            continue
        seen[start] = True
        component = [start]
        queue: deque[int] = deque([start])
        while queue:
            u = queue.popleft()
            for v in graph.neighbors(u):
                if not seen[v]:
                    seen[v] = True
                    component.append(v)
                    queue.append(v)
        components.append(sorted(component))
    return components


def is_connected(graph: Graph) -> bool:
    if graph.num_vertices == 0:
        return True
    return len(connected_components(graph)) == 1


def is_tree(graph: Graph) -> bool:
    """Whether the graph is connected and acyclic (Table V '% of trees')."""
    return (
        graph.num_vertices > 0
        and graph.num_edges == graph.num_vertices - 1
        and is_connected(graph)
    )


def core_numbers(graph: Graph) -> list[int]:
    """Core number of every vertex via min-degree peeling.

    Uses a lazy-deletion heap: stale entries (whose recorded degree no
    longer matches) are skipped on pop.  O(m log n), plenty for query
    graphs and the data-graph sizes in this study.
    """
    n = graph.num_vertices
    degree = [graph.degree(v) for v in range(n)]
    core = [0] * n
    heap = [(d, v) for v, d in enumerate(degree)]
    heapq.heapify(heap)
    removed = [False] * n
    current_core = 0
    while heap:
        d, v = heapq.heappop(heap)
        if removed[v] or d != degree[v]:
            continue
        removed[v] = True
        current_core = max(current_core, d)
        core[v] = current_core
        for w in graph.neighbors(v):
            if not removed[w]:
                degree[w] -= 1
                heapq.heappush(heap, (degree[w], w))
    return core


def two_core(graph: Graph) -> frozenset[int]:
    """Vertices of the 2-core (the "core structure" CFL prioritises)."""
    return frozenset(v for v, c in enumerate(core_numbers(graph)) if c >= 2)


def enumerate_simple_cycles(
    graph: Graph, max_length: int
) -> Iterator[tuple[int, ...]]:
    """Yield every simple cycle with at most ``max_length`` vertices.

    Each cycle is yielded exactly once, as a vertex tuple that starts at the
    cycle's smallest vertex and whose second element is smaller than its
    last (fixing both rotation and direction).  Used by CT-Index's cycle
    features.
    """
    if max_length < 3:
        return
    path: list[int] = []
    on_path = [False] * graph.num_vertices

    def extend(start: int) -> Iterator[tuple[int, ...]]:
        u = path[-1]
        for v in graph.neighbors(u):
            if v == start and len(path) >= 3 and path[1] < path[-1]:
                yield tuple(path)
            elif v > start and not on_path[v] and len(path) < max_length:
                path.append(v)
                on_path[v] = True
                yield from extend(start)
                on_path[v] = False
                path.pop()

    for start in graph.vertices():
        path.append(start)
        on_path[start] = True
        yield from extend(start)
        on_path[start] = False
        path.pop()
