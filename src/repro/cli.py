"""Command-line interface for the subgraph query engine.

Subcommands
-----------

``repro generate``
    Write a synthetic graph database in the t/v/e exchange format.
``repro dataset``
    Write one of the real-world stand-ins (AIDS/PDBS/PCM/PPI).
``repro stats``
    Print Table IV-style statistics for a database file.
``repro query``
    Answer subgraph queries from a query file against a database file
    with any of the named algorithms.
``repro reproduce``
    Regenerate paper artifacts (tables/figures) by experiment id.
``repro bench-micro``
    Time the hot matching-path kernels (candidate generation, bitset
    intersection, per-matcher query latency, parallel speedup) and write
    ``BENCH_micro.json``.

All commands operate on the text exchange format produced and consumed by
:mod:`repro.graph.io`, so databases round-trip through files.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.bench.harness import BenchConfig
from repro.core import ALGORITHM_NAMES
from repro.graph.generators import generate_database
from repro.graph.io import read_graph_database, write_graph_database
from repro.workloads.datasets import REAL_WORLD_SPECS, make_dataset

__all__ = ["build_parser", "main"]


def _cmd_generate(args: argparse.Namespace) -> int:
    db = generate_database(
        num_graphs=args.graphs,
        num_vertices=args.vertices,
        avg_degree=args.degree,
        num_labels=args.labels,
        seed=args.seed,
        name=Path(args.output).stem,
        attachment=args.attachment,
    )
    write_graph_database(db, args.output)
    print(f"wrote {len(db)} graphs to {args.output}")
    return 0


def _cmd_dataset(args: argparse.Namespace) -> int:
    db = make_dataset(args.name, seed=args.seed, scale=args.scale)
    write_graph_database(db, args.output)
    print(f"wrote {args.name} stand-in ({len(db)} graphs) to {args.output}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    db = read_graph_database(args.database)
    for key, value in db.stats().as_row().items():
        print(f"{key:<22} {value}")
    print(f"{'CSR memory (KiB)':<22} {db.csr_memory_bytes() / 1024:.1f}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.core import CachingPipeline, SubgraphQueryEngine, create_pipeline
    from repro.exec import create_executor

    db = read_graph_database(args.database)
    queries = read_graph_database(args.queries)
    pipeline = create_pipeline(args.algorithm)
    if args.cache:
        pipeline = CachingPipeline(pipeline, capacity=args.cache)
    if args.jobs > 1:
        executor = create_executor(
            "parallel", jobs=args.jobs, memory_limit_mb=args.memory_limit or None
        )
    elif args.executor == "subprocess":
        executor = create_executor(
            "subprocess", memory_limit_mb=args.memory_limit or None
        )
    else:
        executor = create_executor(args.executor)
    status = 0
    with SubgraphQueryEngine(db, pipeline, executor=executor) as engine:
        engine.build_index(time_limit=args.index_limit, fallback=args.fallback)
        if engine.degraded:
            print(f"# index build failed ({engine.degraded_reason}); "
                  f"degraded to the vcFV fallback")
        elif engine.indexing_time:
            print(f"# index built in {engine.indexing_time:.3f} s")
        items = list(queries.items())
        results = engine.query_many(
            [q for _, q in items], time_limit=args.time_limit
        )
        for (qid, query), result in zip(items, results):
            tag = query.name if query.name is not None else qid
            if result.timed_out:
                print(f"query {tag}: TIMEOUT after {result.query_time:.2f} s")
                status = 1
                continue
            if result.failure is not None:
                print(
                    f"query {tag}: FAILED "
                    f"({result.failure.kind}: {result.failure.message})"
                )
                status = 1
                continue
            answers = ",".join(str(a) for a in sorted(result.answers))
            print(
                f"query {tag}: {len(result.answers)} answers [{answers}] "
                f"|C(q)|={len(result.candidates)} "
                f"filter={result.filtering_time * 1000:.2f}ms "
                f"verify={result.verification_time * 1000:.2f}ms"
            )
        if args.cache:
            stats = pipeline.stats
            print(
                f"# cache: {stats.queries_with_hits}/{stats.queries} queries hit, "
                f"{stats.graphs_pruned} graph tests pruned"
            )
    return status


def _cmd_reproduce(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.bench import experiments

    producers = {
        "table4": experiments.table4_dataset_stats,
        "table5": experiments.table5_queryset_stats,
        "table6": experiments.table6_indexing_time,
        "fig2": experiments.fig2_filtering_precision,
        "fig3": experiments.fig3_filtering_time,
        "fig4": experiments.fig4_verification_time,
        "fig5": experiments.fig5_per_si_test_time,
        "fig6": experiments.fig6_candidate_counts,
        "fig7": experiments.fig7_query_time,
        "table7": experiments.table7_memory_cost,
        "table8": experiments.table8_synthetic_indexing_time,
        "fig8": experiments.fig8_synthetic_precision,
        "fig9": experiments.fig9_synthetic_filtering_time,
        "table9": experiments.table9_synthetic_memory_cost,
    }
    requested = args.artifacts or sorted(producers)
    unknown = [a for a in requested if a not in producers]
    if unknown:
        print(f"unknown artifact(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(sorted(producers))}", file=sys.stderr)
        return 2
    config = BenchConfig.from_env()
    overrides = {}
    if args.journal:
        overrides["journal"] = args.journal
    if args.executor:
        overrides["executor"] = args.executor
    if args.jobs:
        overrides["jobs"] = args.jobs
    if args.fallback:
        overrides["index_fallback"] = True
    if overrides:
        config = dataclasses.replace(config, **overrides)
    for artifact in requested:
        tables = producers[artifact](config)
        if hasattr(tables, "format_text"):
            tables = {None: tables}
        as_figure = args.figures and artifact.startswith("fig")
        for table in tables.values():
            if as_figure:
                print(table.format_figure(log_scale=True))
            else:
                print(table.format_text())
            print()
    return 0


def _cmd_bench_micro(args: argparse.Namespace) -> int:
    from repro.bench.micro import run_microbench, write_report

    report = run_microbench(jobs=args.jobs, quick=args.quick)
    write_report(report, args.output)
    print(f"wrote {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Subgraph query processing with efficient subgraph matching",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="write a synthetic database")
    generate.add_argument("--graphs", type=int, default=100)
    generate.add_argument("--vertices", type=int, default=50)
    generate.add_argument("--degree", type=float, default=4.0)
    generate.add_argument("--labels", type=int, default=10)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument(
        "--attachment", choices=("uniform", "preferential"), default="uniform"
    )
    generate.add_argument("--output", "-o", required=True)
    generate.set_defaults(func=_cmd_generate)

    dataset = sub.add_parser("dataset", help="write a real-world stand-in")
    dataset.add_argument("name", choices=sorted(REAL_WORLD_SPECS))
    dataset.add_argument("--scale", type=float, default=1.0)
    dataset.add_argument("--seed", type=int, default=0)
    dataset.add_argument("--output", "-o", required=True)
    dataset.set_defaults(func=_cmd_dataset)

    stats = sub.add_parser("stats", help="print database statistics")
    stats.add_argument("database")
    stats.set_defaults(func=_cmd_stats)

    query = sub.add_parser("query", help="answer subgraph queries")
    query.add_argument("database")
    query.add_argument("queries", help="query graphs in the same format")
    query.add_argument(
        "--algorithm", "-a", choices=sorted(ALGORITHM_NAMES), default="CFQL"
    )
    query.add_argument("--time-limit", type=float, default=600.0)
    query.add_argument("--index-limit", type=float, default=None)
    query.add_argument(
        "--cache", type=int, default=0, metavar="CAPACITY",
        help="wrap the algorithm in a query cache of this capacity",
    )
    query.add_argument(
        "--executor", choices=("inprocess", "subprocess"), default="inprocess",
        help="query containment: cooperative (inprocess) or hard kill "
        "timeouts and memory caps in a worker process (subprocess)",
    )
    query.add_argument(
        "--jobs", "-j", type=int, default=1, metavar="N",
        help="answer the query set across N worker processes "
        "(implies hard kill timeouts; results keep input order)",
    )
    query.add_argument(
        "--memory-limit", type=int, default=0, metavar="MIB",
        help="worker address-space cap in MiB (subprocess executor only)",
    )
    query.add_argument(
        "--fallback", action="store_true",
        help="degrade to the vcFV pipeline when the index build exceeds "
        "its time or memory budget instead of failing",
    )
    query.set_defaults(func=_cmd_query)

    reproduce = sub.add_parser("reproduce", help="regenerate paper artifacts")
    reproduce.add_argument(
        "artifacts", nargs="*",
        help="artifact ids (table4..table9, fig2..fig9); default: all",
    )
    reproduce.add_argument(
        "--figures", action="store_true",
        help="render fig* artifacts as bar charts instead of tables",
    )
    reproduce.add_argument(
        "--journal", default="", metavar="PATH",
        help="checkpoint completed matrix cells to this JSONL file; "
        "rerunning resumes from it instead of recomputing",
    )
    reproduce.add_argument(
        "--executor", choices=("inprocess", "subprocess"), default="",
        help="override the benchmark executor (default: REPRO_BENCH_EXECUTOR "
        "or inprocess)",
    )
    reproduce.add_argument(
        "--jobs", "-j", type=int, default=0, metavar="N",
        help="run each matrix cell's query set across N worker processes "
        "(does not invalidate an existing journal)",
    )
    reproduce.add_argument(
        "--fallback", action="store_true",
        help="degrade engines whose index build fails to their vcFV fallback",
    )
    reproduce.set_defaults(func=_cmd_reproduce)

    micro = sub.add_parser(
        "bench-micro", help="time the hot matching-path kernels"
    )
    micro.add_argument(
        "--output", "-o", default="BENCH_micro.json", metavar="PATH",
        help="where to write the JSON report (default: BENCH_micro.json)",
    )
    micro.add_argument(
        "--jobs", "-j", type=int, default=4, metavar="N",
        help="pool width for the parallel-vs-serial comparison",
    )
    micro.add_argument(
        "--quick", action="store_true",
        help="small workload sized for CI smoke runs",
    )
    micro.set_defaults(func=_cmd_bench_micro)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
