"""Command-line interface for the subgraph query engine.

Subcommands
-----------

``repro generate``
    Write a synthetic graph database in the t/v/e exchange format.
``repro dataset``
    Write one of the real-world stand-ins (AIDS/PDBS/PCM/PPI).
``repro stats``
    Print Table IV-style statistics for a database file.
``repro query``
    Answer subgraph queries from a query file against a database file
    with any of the named algorithms.
``repro reproduce``
    Regenerate paper artifacts (tables/figures) by experiment id.
``repro index build`` / ``repro index verify``
    Manage the persistent index store: build and snapshot the IFV indices
    for a database, and structurally verify existing snapshots (framing,
    checksums, format version, optionally the database fingerprint).
``repro bench-micro``
    Time the hot matching-path kernels (candidate generation, bitset
    intersection, per-matcher query latency, parallel speedup, snapshot
    warm start vs cold rebuild) and write ``BENCH_micro.json``.
``repro serve``
    Run the long-running query service: load a database and warm-start
    its index once, then answer queries over a Unix/TCP socket with
    batching, admission control and result caching.
``repro query --connect ADDR``
    Send a query file to a running service instead of paying process
    startup, index build and database load per invocation.
``repro bench-serve``
    Closed-/open-loop load benchmark against the service; writes
    ``BENCH_serve.json`` (throughput, p50/p95/p99 latency, cache on/off,
    shard-scaling parity sweep).
``repro serve --shards N`` / ``repro query --shards N``
    Partition the database into N shards (deterministic hash placement)
    behind a scatter-gather router; answers stay bit-identical to the
    unsharded engine, and a downed shard degrades queries to flagged
    partial results instead of failing them.
``repro shard rebalance`` / ``repro shard split``
    Administer a running sharded service: migrate graphs onto their
    owning shards with journaled two-phase moves, or grow/shrink the
    shard fleet to a new count first.

All commands operate on the text exchange format produced and consumed by
:mod:`repro.graph.io`, so databases round-trip through files.

Long-running commands (``reproduce``, ``query``, ``bench-serve``) convert
SIGTERM/SIGINT into a clean exit with code ``128 + signum`` (143/130)
after flushing any journal state; ``repro serve`` instead drains in-
flight requests before exiting with the same code.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
from pathlib import Path

from repro.bench.harness import BenchConfig
from repro.core import ALGORITHM_NAMES
from repro.graph.generators import generate_database
from repro.graph.io import read_graph_database, write_graph_database
from repro.utils.bitset import BACKEND_NAMES, set_default_backend
from repro.utils.errors import ReproError
from repro.workloads.datasets import REAL_WORLD_SPECS, make_dataset

__all__ = ["build_parser", "main"]


class _SignalExit(BaseException):
    """Raised by the CLI's signal handlers to unwind to ``main``.

    Derives from ``BaseException`` so no intermediate ``except
    Exception`` swallows the shutdown; ``main`` converts it into the
    conventional ``128 + signum`` exit code.  Journal appends are single-
    write atomic (:func:`repro.utils.fsio.append_line_durable`), so the
    unwind cannot leave a partial JSONL line behind.
    """

    def __init__(self, signum: int) -> None:
        super().__init__(f"terminated by signal {signum}")
        self.signum = signum


def _install_signal_handlers() -> list[tuple[int, object]]:
    """Route SIGTERM/SIGINT through :class:`_SignalExit`; returns the
    previous handlers for restoration (no-op off the main thread)."""

    def handler(signum: int, frame) -> None:
        raise _SignalExit(signum)

    installed: list[tuple[int, object]] = []
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            installed.append((sig, signal.signal(sig, handler)))
        except ValueError:  # not the main thread (e.g. tests)
            break
    return installed


def _positive_int(text: str) -> int:
    """argparse type for worker counts: an integer >= 1."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be at least 1 worker process, got {value}"
        )
    return value


def _shard_count(text: str) -> int:
    """argparse type for shard counts: an integer >= 1."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be at least 1 shard, got {value}"
        )
    return value


def _add_shards_flag(parser: argparse.ArgumentParser) -> None:
    """``--shards`` for every command that can run a sharded engine."""
    parser.add_argument(
        "--shards", type=_shard_count, default=1, metavar="N",
        help="partition the database across N shards, each with its own "
        "index, journal, and worker pool; queries scatter-gather across "
        "the fleet (default: 1 — unsharded)",
    )
    parser.add_argument(
        "--shard-host", choices=("thread", "process"), default="thread",
        help="where shard engines run: 'thread' keeps every shard "
        "in-process; 'process' gives each shard a long-lived worker "
        "process for true CPU parallelism (default: thread)",
    )
    parser.add_argument(
        "--no-shard-pruning", action="store_true",
        help="disable label-summary shard pruning (the router normally "
        "skips shards whose summary proves they hold no answer for a "
        "query; answers are identical either way)",
    )


def _check_sharded_store(index_store: str, shards: int) -> None:
    """Refuse to open a sharded store as if it were unsharded.

    A store that carries a shard manifest journals mutations under
    per-shard subdirectories; opening it with ``--shards 1`` would
    silently serve the base database without them.
    """
    if not index_store or shards > 1:
        return
    import json

    from repro.shard import MANIFEST_NAME
    from repro.utils.errors import ConfigurationError

    manifest_path = Path(index_store) / MANIFEST_NAME
    if manifest_path.exists():
        try:
            count = json.loads(manifest_path.read_text()).get("num_shards")
        except ValueError:
            count = "?"
        raise ConfigurationError(
            f"store {index_store} is sharded {count} ways; "
            f"pass --shards {count}"
        )


def _add_bitset_backend_flag(parser: argparse.ArgumentParser) -> None:
    """`--bitset-backend` for every command with a matching hot path."""
    parser.add_argument(
        "--bitset-backend", choices=BACKEND_NAMES, default="",
        help="candidate-bitmap backend: python big ints, numpy uint64 "
        "word blocks ([perf] extra), or auto — numpy only for large data "
        "graphs (default: REPRO_BITSET_BACKEND, else auto)",
    )


def _apply_bitset_backend(args: argparse.Namespace) -> None:
    """Make the flag the process-wide default *and* export it so pool
    workers (spawned subprocesses) resolve the same backend."""
    name = getattr(args, "bitset_backend", "")
    if name:
        os.environ["REPRO_BITSET_BACKEND"] = name
        set_default_backend(name)


def _cmd_generate(args: argparse.Namespace) -> int:
    db = generate_database(
        num_graphs=args.graphs,
        num_vertices=args.vertices,
        avg_degree=args.degree,
        num_labels=args.labels,
        seed=args.seed,
        name=Path(args.output).stem,
        attachment=args.attachment,
    )
    write_graph_database(db, args.output)
    print(f"wrote {len(db)} graphs to {args.output}")
    return 0


def _cmd_dataset(args: argparse.Namespace) -> int:
    db = make_dataset(args.name, seed=args.seed, scale=args.scale)
    write_graph_database(db, args.output)
    print(f"wrote {args.name} stand-in ({len(db)} graphs) to {args.output}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    db = read_graph_database(args.database)
    for key, value in db.stats().as_row().items():
        print(f"{key:<22} {value}")
    print(f"{'CSR memory (KiB)':<22} {db.csr_memory_bytes() / 1024:.1f}")
    return 0


def _print_query_outcome(tag, result_view) -> int:
    """Print one query's outcome line; returns 1 on failure, 0 otherwise.

    ``result_view`` is a dict with the shared fields of a local
    :class:`~repro.core.metrics.QueryResult` and a service result payload,
    so local and ``--connect`` runs produce identical lines.
    """
    if result_view["timed_out"]:
        print(f"query {tag}: TIMEOUT after {result_view['query_time']:.2f} s")
        return 1
    if result_view["failure"] is not None:
        kind, message = result_view["failure"]
        print(f"query {tag}: FAILED ({kind}: {message})")
        return 1
    answers = ",".join(str(a) for a in sorted(result_view["answers"]))
    suffix = ""
    if result_view.get("cache") is not None:
        suffix = f" cache={result_view['cache']}"
    print(
        f"query {tag}: {len(result_view['answers'])} answers [{answers}] "
        f"|C(q)|={result_view['num_candidates']} "
        f"filter={result_view['filtering_time'] * 1000:.2f}ms "
        f"verify={result_view['verification_time'] * 1000:.2f}ms" + suffix
    )
    return 0


def _cmd_query_remote(args: argparse.Namespace) -> int:
    """``repro query --connect``: route the query file to a service."""
    from repro.service.client import ServiceClient, ServiceError

    if args.queries is not None:
        print(
            "error: with --connect pass only the query file "
            "(the database lives in the service)",
            file=sys.stderr,
        )
        return 2
    queries = read_graph_database(args.database)
    status = 0
    with ServiceClient(args.connect) as client:
        for qid, query in queries.items():
            tag = query.name if query.name is not None else qid
            try:
                result = client.query(query, time_limit=args.time_limit)
            except ServiceError as exc:
                print(f"query {tag}: REJECTED ({exc.code}: {exc})")
                status = 1
                continue
            status |= _print_query_outcome(tag, {
                "timed_out": result["timed_out"],
                "query_time": result["query_time_s"],
                "failure": (
                    None if result["failure"] is None
                    else (result["failure"]["kind"], result["failure"]["message"])
                ),
                "answers": result["answers"],
                "num_candidates": result["num_candidates"],
                "filtering_time": result["filtering_time_s"],
                "verification_time": result["verification_time_s"],
                "cache": result.get("cache"),
            })
    return status


def _make_shard_executor_factory(args: argparse.Namespace):
    """Per-shard executor factory from the shared CLI flags (or None for
    in-process execution on every shard)."""
    from repro.exec import create_executor

    memory_limit = args.memory_limit or None
    if getattr(args, "supervised", False):
        return lambda i: create_executor(
            "supervised", jobs=args.jobs, memory_limit_mb=memory_limit
        )
    if args.jobs > 1:
        return lambda i: create_executor(
            "parallel", jobs=args.jobs, memory_limit_mb=memory_limit
        )
    if getattr(args, "executor", "") == "subprocess":
        return lambda i: create_executor(
            "subprocess", memory_limit_mb=memory_limit
        )
    return None


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.core import SubgraphQueryEngine, create_pipeline
    from repro.exec import create_executor
    from repro.utils.errors import ConfigurationError

    if args.connect:
        if args.shards > 1:
            raise ConfigurationError(
                "--connect and --shards cannot be combined: sharding is a "
                "property of the running service (start it with "
                "`repro serve --shards N`)"
            )
        return _cmd_query_remote(args)
    if args.queries is None:
        print("error: the query file argument is required without --connect",
              file=sys.stderr)
        return 2
    _check_sharded_store(args.index_store, args.shards)
    db = read_graph_database(args.database)
    queries = read_graph_database(args.queries)
    if args.shards > 1:
        from repro.shard import ShardedEngine

        engine_cm = ShardedEngine(
            db,
            args.shards,
            lambda: create_pipeline(args.algorithm),
            executor_factory=_make_shard_executor_factory(args),
            cache=args.cache,
            store_root=args.index_store or None,
            shard_host=args.shard_host,
            pruning=not args.no_shard_pruning,
        )
        store = None
    else:
        pipeline = create_pipeline(args.algorithm)
        if args.jobs > 1:
            executor = create_executor(
                "parallel", jobs=args.jobs,
                memory_limit_mb=args.memory_limit or None,
            )
        elif args.executor == "subprocess":
            executor = create_executor(
                "subprocess", memory_limit_mb=args.memory_limit or None
            )
        else:
            executor = create_executor(args.executor)
        store = None
        if args.index_store:
            from repro.store import IndexStore

            store = IndexStore(args.index_store)
        engine_cm = SubgraphQueryEngine(
            db, pipeline, executor=executor, cache=args.cache
        )
    status = 0
    with engine_cm as engine:
        engine.build_index(
            time_limit=args.index_limit, fallback=args.fallback, store=store
        )
        if engine.store_recovery is not None:
            print(f"# snapshot rejected ({engine.store_recovery}); "
                  f"index rebuilt from the database")
        if engine.degraded:
            print(f"# index build failed ({engine.degraded_reason}); "
                  f"degraded to the vcFV fallback")
        elif engine.index_source == "store":
            print(f"# index warm-started from snapshot "
                  f"in {engine.indexing_time:.3f} s")
        elif engine.indexing_time:
            print(f"# index built in {engine.indexing_time:.3f} s")
        if engine.store_save_error is not None:
            print(f"# warning: snapshot not saved ({engine.store_save_error})",
                  file=sys.stderr)
        if args.shards > 1:
            print(f"# sharded: {args.shards} shards "
                  f"({engine.partitioner.name} placement, "
                  f"{engine.shard_host} host), "
                  f"{len(engine.db)} graphs total")
        items = list(queries.items())
        results = engine.query_many(
            [q for _, q in items], time_limit=args.time_limit
        )
        for (qid, query), result in zip(items, results):
            tag = query.name if query.name is not None else qid
            cache_outcome = None
            if args.cache:
                cache_outcome = (
                    "hit" if result.metadata.get("cache_hit") else "miss"
                )
            status |= _print_query_outcome(tag, {
                "timed_out": result.timed_out,
                "query_time": result.query_time,
                "failure": (
                    None if result.failure is None
                    else (result.failure.kind, result.failure.message)
                ),
                "answers": result.answers,
                "num_candidates": len(result.candidates),
                "filtering_time": result.filtering_time,
                "verification_time": result.verification_time,
                "cache": cache_outcome,
            })
        if engine.cache is not None and args.jobs == 1:
            stats = engine.cache.stats
            print(
                f"# cache: {stats.queries_with_hits}/{stats.queries} queries hit, "
                f"{stats.graphs_pruned} graph tests pruned"
            )
    return status


def _cmd_index_build(args: argparse.Namespace) -> int:
    from repro.core import SubgraphQueryEngine, create_pipeline
    from repro.store import IndexStore

    db = read_graph_database(args.database)
    store = IndexStore(args.store)
    status = 0
    for name in args.algorithm or ["Grapes", "GGSX", "CT-Index"]:
        pipeline = create_pipeline(name)
        if not pipeline.uses_index:
            print(f"{name}: index-free algorithm, nothing to snapshot")
            continue
        with SubgraphQueryEngine(db, pipeline) as engine:
            try:
                engine.build_index(time_limit=args.index_limit, store=store)
            except ReproError as exc:
                print(f"{name}: FAILED ({exc})", file=sys.stderr)
                status = 1
                continue
            path = store.snapshot_path(pipeline.index.name)
            if engine.index_source == "store":
                print(f"{name}: snapshot {path} already current "
                      f"(verified in {engine.indexing_time:.3f} s)")
            elif engine.store_save_error is not None:
                print(f"{name}: built, but snapshot not saved "
                      f"({engine.store_save_error})", file=sys.stderr)
                status = 1
            else:
                print(f"{name}: built in {engine.indexing_time:.3f} s -> {path}")
    return status


def _cmd_index_verify(args: argparse.Namespace) -> int:
    from repro.store import IndexStore, SnapshotError

    store = IndexStore(args.store)
    db = read_graph_database(args.database) if args.database else None
    snapshots = store.snapshots()
    if not snapshots:
        print(f"no snapshots in {store.directory}", file=sys.stderr)
        return 1
    status = 0
    for path in snapshots:
        try:
            header = store.verify_snapshot(path, db=db)
        except SnapshotError as exc:
            print(f"{path.name}: INVALID [{exc.reason}] {exc}")
            status = 1
        else:
            print(
                f"{path.name}: ok family={header.get('family')} "
                f"graphs={header.get('num_graphs')}"
            )
    return status


def _cmd_reproduce(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.bench import experiments

    producers = {
        "table4": experiments.table4_dataset_stats,
        "table5": experiments.table5_queryset_stats,
        "table6": experiments.table6_indexing_time,
        "fig2": experiments.fig2_filtering_precision,
        "fig3": experiments.fig3_filtering_time,
        "fig4": experiments.fig4_verification_time,
        "fig5": experiments.fig5_per_si_test_time,
        "fig6": experiments.fig6_candidate_counts,
        "fig7": experiments.fig7_query_time,
        "table7": experiments.table7_memory_cost,
        "table8": experiments.table8_synthetic_indexing_time,
        "fig8": experiments.fig8_synthetic_precision,
        "fig9": experiments.fig9_synthetic_filtering_time,
        "table9": experiments.table9_synthetic_memory_cost,
    }
    requested = args.artifacts or sorted(producers)
    unknown = [a for a in requested if a not in producers]
    if unknown:
        print(f"unknown artifact(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(sorted(producers))}", file=sys.stderr)
        return 2
    config = BenchConfig.from_env()
    overrides = {}
    if args.journal:
        overrides["journal"] = args.journal
    if args.executor:
        overrides["executor"] = args.executor
    if args.jobs:
        overrides["jobs"] = args.jobs
    if args.index_store:
        overrides["index_store"] = args.index_store
    if args.fallback:
        overrides["index_fallback"] = True
    if args.shard_host != "thread":
        from repro.utils.errors import ConfigurationError

        raise ConfigurationError(
            "reproduce runs its shard-parity sweep on the thread host; "
            "use `repro query`/`repro serve` for --shard-host process"
        )
    if args.shards > 1:
        if args.index_store:
            from repro.utils.errors import ConfigurationError

            raise ConfigurationError(
                "--shards cannot be combined with --index-store here: "
                "reproduce stores snapshots per matrix cell, which has no "
                "sharded layout (drop one of the two flags)"
            )
        overrides["shards"] = args.shards
    if overrides:
        config = dataclasses.replace(config, **overrides)
    for artifact in requested:
        tables = producers[artifact](config)
        if hasattr(tables, "format_text"):
            tables = {None: tables}
        as_figure = args.figures and artifact.startswith("fig")
        for table in tables.values():
            if as_figure:
                print(table.format_figure(log_scale=True))
            else:
                print(table.format_text())
            print()
    return 0


def _cmd_bench_micro(args: argparse.Namespace) -> int:
    from repro.bench.micro import run_microbench, write_report

    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    try:
        report = run_microbench(jobs=args.jobs, quick=args.quick)
    finally:
        if profiler is not None:
            profiler.disable()
            profiler.dump_stats(args.profile)
    write_report(report, args.output)
    print(f"wrote {args.output}")
    if profiler is not None:
        import pstats

        print(f"wrote profile to {args.profile}")
        pstats.Stats(profiler).sort_stats("cumulative").print_stats(15)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.core import SubgraphQueryEngine, create_pipeline
    from repro.exec import create_executor
    from repro.service.server import QueryService, ServiceConfig

    _check_sharded_store(args.index_store, args.shards)
    db = read_graph_database(args.database)
    if args.shards > 1:
        from repro.shard import ShardedEngine

        engine = ShardedEngine(
            db,
            args.shards,
            lambda: create_pipeline(args.algorithm),
            executor_factory=_make_shard_executor_factory(args),
            cache=args.cache,
            store_root=args.index_store or None,
            breaker_threshold=args.breaker_threshold,
            breaker_cooldown=args.breaker_cooldown,
            shard_host=args.shard_host,
            pruning=not args.no_shard_pruning,
        )
        engine.build_index(time_limit=args.index_limit, fallback=args.fallback)
    else:
        pipeline = create_pipeline(args.algorithm)
        executor = None
        if args.supervised:
            executor = create_executor(
                "supervised", jobs=args.jobs,
                memory_limit_mb=args.memory_limit or None,
            )
        elif args.jobs > 1:
            executor = create_executor(
                "parallel", jobs=args.jobs,
                memory_limit_mb=args.memory_limit or None,
            )
        store = None
        if args.index_store:
            from repro.store import IndexStore

            store = IndexStore(args.index_store)
        engine = SubgraphQueryEngine(
            db, pipeline, executor=executor, cache=args.cache
        )
        engine.build_index(
            time_limit=args.index_limit, fallback=args.fallback, store=store
        )
    if engine.store_recovery is not None:
        print(f"# snapshot rejected ({engine.store_recovery}); "
              f"index rebuilt from the database")
    recovery = engine.wal_recovery
    if recovery is not None and (
        recovery["replayed"] or recovery["truncated"] or recovery["reason"]
    ):
        note = (f"# mutation log: replayed {recovery['replayed']} records "
                f"(folded through seq {recovery['folded_seq']})")
        if recovery["reason"]:
            action = "quarantined" if recovery["quarantined"] else "truncated"
            note += (f"; {action} {recovery['truncated']} damaged records "
                     f"({recovery['reason']})")
        print(note)
    if engine.degraded:
        print(f"# index build failed ({engine.degraded_reason}); "
              f"serving the vcFV fallback")
    elif engine.indexing_time:
        source = "warm-started" if engine.index_source == "store" else "built"
        print(f"# index {source} in {engine.indexing_time:.3f} s")
    if args.shards > 1:
        per_shard = ", ".join(
            f"{row['shard']}:{row['graphs']}" for row in engine.shard_stats()
        )
        pruning = "on" if engine.pruning else "off"
        print(f"# sharded: {args.shards} shards "
              f"({engine.partitioner.name} placement, "
              f"{engine.shard_host} host, pruning {pruning}) [{per_shard}]")
    service = QueryService(
        engine,
        ServiceConfig(
            capacity=args.capacity,
            batch_max=args.batch_max,
            cache_capacity=args.result_cache,
            default_time_limit=args.time_limit,
            breaker_threshold=args.breaker_threshold,
            breaker_cooldown=args.breaker_cooldown,
            wal_compact_threshold=args.wal_compact,
        ),
    )
    print(
        f"serving {len(db)} graphs [{engine.name}] on {args.listen} "
        f"(pid {os.getpid()}, queue {args.capacity}, batch {args.batch_max}, "
        f"result cache {args.result_cache})",
        flush=True,
    )
    code = service.serve(args.listen)
    stats = service.stats()
    requests = stats["requests"]
    print(
        f"# drained: {requests.get('answered', 0)} answered, "
        f"{requests.get('rejected_overloaded', 0)} rejected overloaded, "
        f"{stats['cache']['hits']} cache hits; exit {code}",
        flush=True,
    )
    return code


def _cmd_bench_serve(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.service.bench import BenchServeConfig, run_bench_serve, write_report

    config = BenchServeConfig.quick() if args.quick else BenchServeConfig()
    overrides = {}
    if args.concurrency:
        try:
            levels = tuple(
                sorted({int(c) for c in args.concurrency.split(",") if c})
            )
        except ValueError:
            print(f"error: bad --concurrency list {args.concurrency!r}",
                  file=sys.stderr)
            return 2
        if not levels or min(levels) < 1:
            print("error: --concurrency needs positive integers", file=sys.stderr)
            return 2
        overrides["concurrency"] = levels
    if args.requests:
        overrides["requests_per_client"] = args.requests
    if args.jobs:
        overrides["jobs"] = args.jobs
    if args.rate:
        overrides["open_loop_rate"] = args.rate
    if args.shard_counts:
        try:
            counts = tuple(
                sorted({int(c) for c in args.shard_counts.split(",") if c})
            )
        except ValueError:
            print(f"error: bad --shard-counts list {args.shard_counts!r}",
                  file=sys.stderr)
            return 2
        if not counts or min(counts) < 1:
            print("error: --shard-counts needs positive integers",
                  file=sys.stderr)
            return 2
        overrides["shard_counts"] = counts
    if overrides:
        config = dataclasses.replace(config, **overrides)
    report = run_bench_serve(config, chaos=args.chaos)
    for cell in report["closed_loop"]:
        latency = cell["latency_ms"]
        print(
            f"closed cache={cell['cache']:<3} c={cell['concurrency']} "
            f"{cell['throughput_qps']:8.1f} q/s  "
            f"p50={latency['p50']:.2f}ms p95={latency['p95']:.2f}ms "
            f"p99={latency['p99']:.2f}ms"
        )
    for cell in report["open_loop"]:
        latency = cell["latency_ms"]
        print(
            f"open   cache={cell['cache']:<3} rate={cell['rate_qps']:.1f}/s "
            f"{cell['throughput_qps']:8.1f} q/s  "
            f"p50={latency['p50']:.2f}ms p95={latency['p95']:.2f}ms "
            f"p99={latency['p99']:.2f}ms"
        )
    for cell in report["sharding"]["cells"]:
        latency = cell["latency_ms"]
        host = cell.get("shard_host", "thread")
        print(
            f"shard  n={cell['shards']} host={host:<7} "
            f"{cell['throughput_qps']:8.1f} q/s  "
            f"p50={latency['p50']:.2f}ms p99={latency['p99']:.2f}ms "
            f"— answers identical to unsharded"
        )
    pruning = report.get("pruning")
    if pruning:
        for cell in pruning["cells"]:
            latency = cell["latency_ms"]
            state = "on " if cell["pruning"] else "off"
            print(
                f"prune  {state} {cell['throughput_qps']:8.1f} q/s  "
                f"p50={latency['p50']:.2f}ms p99={latency['p99']:.2f}ms "
                f"— {cell['shards_pruned']}/{cell['shard_queries']} "
                f"shard-queries skipped, answers identical"
            )
    resilience = report.get("resilience")
    if resilience:
        for cell in resilience["overhead"]:
            latency = cell["latency_ms"]
            overhead = cell.get("p50_overhead_pct")
            suffix = "" if overhead is None else f"  (+{overhead:.1f}% p50)"
            print(
                f"isolat {cell['executor']:<10} c={cell['concurrency']} "
                f"p50={latency['p50']:.2f}ms p99={latency['p99']:.2f}ms"
                f"{suffix}"
            )
        chaos_cell = resilience["chaos"]
        print(
            f"chaos  crash 1/{chaos_cell['crash_every']}: "
            f"{chaos_cell['attempts']} requests, "
            f"{chaos_cell['terminal_responses']} terminal, "
            f"{chaos_cell['worker_restarts']} restarts, "
            f"p99={chaos_cell['latency_ms']['p99']:.2f}ms, "
            f"errors {chaos_cell['error_rate_pct']:.1f}% — service survived"
        )
        lifecycle = resilience["breaker_lifecycle"]
        print(f"breaker transitions: {lifecycle['transitions']}")
        durability = resilience.get("durability")
        if durability:
            print(
                f"wal    {durability['mutations']} mutations: "
                f"{durability['durable_mut_per_s']:.0f}/s durable vs "
                f"{durability['baseline_mut_per_s']:.0f}/s plain "
                f"(+{durability['overhead_pct']:.1f}%), "
                f"{durability['replayed']} replayed, "
                f"{durability['folded']} folded — recovery bit-identical"
            )
    write_report(report, args.output)
    print(f"wrote {args.output}")
    return 0


def _cmd_shard_rebalance(args: argparse.Namespace) -> int:
    """``repro shard rebalance|split``: migrate graphs onto their owners.

    Talks to a running sharded service over the wire; the service refuses
    with ``bad_request`` when it is not sharded or when a split would drop
    below the store's seed partition.
    """
    from repro.service.client import ServiceClient, ServiceError

    try:
        with ServiceClient(args.connect, retries=2) as client:
            summary = client.rebalance(args.shards)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    graphs = summary.get("graphs", [])
    per_shard = ", ".join(f"{i}:{n}" for i, n in enumerate(graphs))
    print(
        f"rebalanced to {summary.get('num_shards')} shards: "
        f"{summary.get('moved', 0)} moved, {summary.get('healed', 0)} healed, "
        f"{summary.get('grown', 0)} grown, {summary.get('dropped', 0)} dropped "
        f"[{per_shard}]"
    )
    return 0


def _cmd_shard_stats(args: argparse.Namespace) -> int:
    """``repro shard stats``: per-shard health, liveness, and pruning."""
    from repro.service.client import ServiceClient, ServiceError

    try:
        with ServiceClient(args.connect, retries=2) as client:
            stats = client.stats()
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    shards = stats.get("shards")
    if not shards:
        print("error: service is not sharded (started without --shards)",
              file=sys.stderr)
        return 2
    for row in shards:
        host = row.get("host")
        if host:
            liveness = (
                f"pid={host['pid']} alive={host['alive']} "
                f"restarts={host['restarts']}"
            )
        else:
            liveness = "host=thread"
        summary = row.get("summary")
        sketch = (
            f"labels={summary['labels']} pairs={summary['pairs']} "
            f"source={summary['source']}"
            if summary else "summary=none"
        )
        breaker = row.get("breaker", {})
        print(
            f"shard {row['shard']}: {row['graphs']} graphs "
            f"[{row['algorithm']}] {liveness} {sketch} "
            f"breaker={breaker.get('state', '?')}"
        )
    pruning = stats.get("pruning")
    if pruning:
        print(
            f"pruning {'on' if pruning['enabled'] else 'off'} "
            f"({pruning['shard_host']} host): "
            f"{pruning['shards_pruned']}/{pruning['shard_queries']} "
            f"shard-queries pruned "
            f"(rate {pruning['prune_rate']:.2f})"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Subgraph query processing with efficient subgraph matching",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="write a synthetic database")
    generate.add_argument("--graphs", type=int, default=100)
    generate.add_argument("--vertices", type=int, default=50)
    generate.add_argument("--degree", type=float, default=4.0)
    generate.add_argument("--labels", type=int, default=10)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument(
        "--attachment", choices=("uniform", "preferential"), default="uniform"
    )
    generate.add_argument("--output", "-o", required=True)
    generate.set_defaults(func=_cmd_generate)

    dataset = sub.add_parser("dataset", help="write a real-world stand-in")
    dataset.add_argument("name", choices=sorted(REAL_WORLD_SPECS))
    dataset.add_argument("--scale", type=float, default=1.0)
    dataset.add_argument("--seed", type=int, default=0)
    dataset.add_argument("--output", "-o", required=True)
    dataset.set_defaults(func=_cmd_dataset)

    stats = sub.add_parser("stats", help="print database statistics")
    stats.add_argument("database")
    stats.set_defaults(func=_cmd_stats)

    query = sub.add_parser("query", help="answer subgraph queries")
    query.add_argument(
        "database",
        help="database file — or, with --connect, the query file "
        "(the database already lives in the service)",
    )
    query.add_argument(
        "queries", nargs="?", default=None,
        help="query graphs in the same format (omit with --connect)",
    )
    query.add_argument(
        "--connect", default="", metavar="ADDR",
        help="send the queries to a running `repro serve` instance at "
        "ADDR (unix:<path> or <host>:<port>) instead of executing locally",
    )
    query.add_argument(
        "--algorithm", "-a", choices=sorted(ALGORITHM_NAMES), default="CFQL"
    )
    query.add_argument("--time-limit", type=float, default=600.0)
    query.add_argument("--index-limit", type=float, default=None)
    query.add_argument(
        "--cache", type=int, default=0, metavar="CAPACITY",
        help="wrap the algorithm in a query cache of this capacity",
    )
    query.add_argument(
        "--executor", choices=("inprocess", "subprocess"), default="inprocess",
        help="query containment: cooperative (inprocess) or hard kill "
        "timeouts and memory caps in a worker process (subprocess)",
    )
    query.add_argument(
        "--jobs", "-j", type=_positive_int, default=1, metavar="N",
        help="answer the query set across N worker processes "
        "(implies hard kill timeouts; results keep input order)",
    )
    query.add_argument(
        "--index-store", default="", metavar="DIR",
        help="persistent index-snapshot directory: warm-start the index "
        "from a verified snapshot when one exists, save one after a cold "
        "build; invalid snapshots always fall back to a rebuild",
    )
    query.add_argument(
        "--memory-limit", type=int, default=0, metavar="MIB",
        help="worker address-space cap in MiB (subprocess executor only)",
    )
    query.add_argument(
        "--fallback", action="store_true",
        help="degrade to the vcFV pipeline when the index build exceeds "
        "its time or memory budget instead of failing",
    )
    _add_shards_flag(query)
    _add_bitset_backend_flag(query)
    query.set_defaults(func=_cmd_query)

    reproduce = sub.add_parser("reproduce", help="regenerate paper artifacts")
    reproduce.add_argument(
        "artifacts", nargs="*",
        help="artifact ids (table4..table9, fig2..fig9); default: all",
    )
    reproduce.add_argument(
        "--figures", action="store_true",
        help="render fig* artifacts as bar charts instead of tables",
    )
    reproduce.add_argument(
        "--journal", default="", metavar="PATH",
        help="checkpoint completed matrix cells to this JSONL file; "
        "rerunning resumes from it instead of recomputing",
    )
    reproduce.add_argument(
        "--executor", choices=("inprocess", "subprocess"), default="",
        help="override the benchmark executor (default: REPRO_BENCH_EXECUTOR "
        "or inprocess)",
    )
    reproduce.add_argument(
        "--jobs", "-j", type=_positive_int, default=0, metavar="N",
        help="run each matrix cell's query set across N worker processes "
        "(does not invalidate an existing journal)",
    )
    reproduce.add_argument(
        "--index-store", default="", metavar="DIR",
        help="persistent index-snapshot directory; matrix cells warm-start "
        "from verified snapshots (does not invalidate an existing journal)",
    )
    reproduce.add_argument(
        "--fallback", action="store_true",
        help="degrade engines whose index build fails to their vcFV fallback",
    )
    _add_shards_flag(reproduce)
    _add_bitset_backend_flag(reproduce)
    reproduce.set_defaults(func=_cmd_reproduce)

    index = sub.add_parser("index", help="manage the persistent index store")
    index_sub = index.add_subparsers(dest="index_command", required=True)

    ibuild = index_sub.add_parser(
        "build", help="build indices and snapshot them to a store"
    )
    ibuild.add_argument("database")
    ibuild.add_argument(
        "--store", "-s", required=True, metavar="DIR",
        help="snapshot directory (created if missing)",
    )
    ibuild.add_argument(
        "--algorithm", "-a", action="append", choices=sorted(ALGORITHM_NAMES),
        metavar="NAME",
        help="algorithm whose index to build (repeatable; default: "
        "Grapes, GGSX, CT-Index)",
    )
    ibuild.add_argument(
        "--index-limit", type=float, default=None, metavar="SECONDS",
        help="abort any single index build after this many seconds",
    )
    ibuild.set_defaults(func=_cmd_index_build)

    iverify = index_sub.add_parser(
        "verify", help="verify the snapshots in a store"
    )
    iverify.add_argument("store", metavar="DIR")
    iverify.add_argument(
        "--database", "-d", default="", metavar="PATH",
        help="also check each snapshot's database fingerprint against "
        "this database file",
    )
    iverify.set_defaults(func=_cmd_index_verify)

    micro = sub.add_parser(
        "bench-micro", help="time the hot matching-path kernels"
    )
    micro.add_argument(
        "--output", "-o", default="BENCH_micro.json", metavar="PATH",
        help="where to write the JSON report (default: BENCH_micro.json)",
    )
    micro.add_argument(
        "--jobs", "-j", type=_positive_int, default=4, metavar="N",
        help="pool width for the parallel-vs-serial comparison",
    )
    micro.add_argument(
        "--quick", action="store_true",
        help="small workload sized for CI smoke runs",
    )
    micro.add_argument(
        "--profile", metavar="PATH", default=None,
        help="profile the run with cProfile, dump stats to PATH and print "
        "the top cumulative entries",
    )
    _add_bitset_backend_flag(micro)
    micro.set_defaults(func=_cmd_bench_micro)

    serve = sub.add_parser(
        "serve", help="run the long-running query service"
    )
    serve.add_argument("database")
    serve.add_argument(
        "--listen", "-l", required=True, metavar="ADDR",
        help="listen address: unix:<path> or <host>:<port>",
    )
    serve.add_argument(
        "--algorithm", "-a", choices=sorted(ALGORITHM_NAMES), default="CFQL"
    )
    serve.add_argument(
        "--time-limit", type=float, default=600.0,
        help="default per-query budget for requests that set none",
    )
    serve.add_argument("--index-limit", type=float, default=None)
    serve.add_argument(
        "--capacity", type=_positive_int, default=64, metavar="N",
        help="bounded request-queue depth; requests beyond it are "
        "rejected immediately with a structured 'overloaded' error",
    )
    serve.add_argument(
        "--batch-max", type=_positive_int, default=8, metavar="N",
        help="most queries coalesced into one executor dispatch",
    )
    serve.add_argument(
        "--result-cache", type=int, default=128, metavar="CAPACITY",
        help="exact-match LRU result-cache entries (0 disables)",
    )
    serve.add_argument(
        "--cache", type=int, default=0, metavar="CAPACITY",
        help="also wrap the engine in the GraphCache-style containment "
        "cache of this capacity",
    )
    serve.add_argument(
        "--jobs", "-j", type=_positive_int, default=1, metavar="N",
        help="dispatch query batches across N worker processes",
    )
    serve.add_argument(
        "--supervised", action="store_true",
        help="run the worker pool under the supervised executor "
        "(restart backoff + restart-storm fuse); implies crash "
        "isolation even with --jobs 1",
    )
    serve.add_argument(
        "--breaker-threshold", type=int, default=5, metavar="N",
        help="consecutive worker crashes that open the circuit breaker "
        "(0 disables it)",
    )
    serve.add_argument(
        "--breaker-cooldown", type=float, default=1.0, metavar="SECONDS",
        help="open-breaker cooldown before a half-open probe",
    )
    serve.add_argument(
        "--memory-limit", type=int, default=0, metavar="MIB",
        help="worker address-space cap in MiB (with --jobs > 1)",
    )
    serve.add_argument(
        "--index-store", default="", metavar="DIR",
        help="warm-start the index from this snapshot store; also makes "
        "mutations durable via its write-ahead log",
    )
    serve.add_argument(
        "--wal-compact", type=int, default=0, metavar="N",
        help="auto-compact the store's mutation log into snapshots once "
        "it holds N records (0 disables; the 'compact' verb always works)",
    )
    serve.add_argument(
        "--fallback", action="store_true",
        help="degrade to the vcFV pipeline when the index build blows "
        "its budget instead of failing startup",
    )
    _add_shards_flag(serve)
    _add_bitset_backend_flag(serve)
    serve.set_defaults(func=_cmd_serve)

    bench_serve = sub.add_parser(
        "bench-serve",
        help="closed-/open-loop load benchmark against the query service",
    )
    bench_serve.add_argument(
        "--output", "-o", default="BENCH_serve.json", metavar="PATH",
        help="where to write the JSON report (default: BENCH_serve.json)",
    )
    bench_serve.add_argument(
        "--concurrency", default="", metavar="LIST",
        help="comma-separated closed-loop client counts (default: 1,2,4)",
    )
    bench_serve.add_argument(
        "--requests", type=_positive_int, default=0, metavar="N",
        help="requests per closed-loop client",
    )
    bench_serve.add_argument(
        "--jobs", "-j", type=_positive_int, default=0, metavar="N",
        help="serve with a parallel worker pool of this width",
    )
    bench_serve.add_argument(
        "--rate", type=float, default=0.0, metavar="QPS",
        help="open-loop arrival rate (default: 75%% of measured "
        "closed-loop peak throughput)",
    )
    bench_serve.add_argument(
        "--shard-counts", default="", metavar="LIST",
        help="comma-separated shard counts for the parity-checked "
        "sharding sweep (default: 1,2,4)",
    )
    bench_serve.add_argument(
        "--quick", action="store_true",
        help="small matrix sized for CI smoke runs",
    )
    bench_serve.add_argument(
        "--chaos", action="store_true",
        help="also run the self-asserting resilience suite: supervised "
        "overhead cells, breaker lifecycle, and a crash storm that must "
        "not kill the service",
    )
    bench_serve.set_defaults(func=_cmd_bench_serve)

    shard = sub.add_parser(
        "shard", help="administer a running sharded service"
    )
    shard_sub = shard.add_subparsers(dest="shard_command", required=True)

    srebalance = shard_sub.add_parser(
        "rebalance",
        help="migrate graphs onto their owning shards (heals duplicates "
        "left by an interrupted move)",
    )
    srebalance.add_argument(
        "--connect", "-c", required=True, metavar="ADDR",
        help="address of the running service (unix:<path> or <host>:<port>)",
    )
    srebalance.set_defaults(func=_cmd_shard_rebalance, shards=None)

    ssplit = shard_sub.add_parser(
        "split",
        help="grow (or shrink) the shard fleet to N shards, then migrate",
    )
    ssplit.add_argument(
        "--connect", "-c", required=True, metavar="ADDR",
        help="address of the running service (unix:<path> or <host>:<port>)",
    )
    ssplit.add_argument(
        "--shards", type=_shard_count, required=True, metavar="N",
        help="target shard count (cannot drop below the store's seed "
        "partition while an index store is attached)",
    )
    ssplit.set_defaults(func=_cmd_shard_rebalance)

    sstats = shard_sub.add_parser(
        "stats",
        help="print per-shard health, worker liveness, and pruning "
        "counters from a running sharded service",
    )
    sstats.add_argument(
        "--connect", "-c", required=True, metavar="ADDR",
        help="address of the running service (unix:<path> or <host>:<port>)",
    )
    sstats.set_defaults(func=_cmd_shard_stats)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    _apply_bitset_backend(args)
    # `serve` installs its own handlers (graceful drain) inside
    # QueryService.serve; everything else gets the flush-and-exit pair.
    installed = [] if args.command == "serve" else _install_signal_handlers()
    try:
        return args.func(args)
    except ReproError as exc:
        # Operational failures (bad configuration, malformed input files,
        # blown budgets) are reported as one-line errors, not tracebacks.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except _SignalExit as exc:
        # SIGTERM/SIGINT mid-run: any journal is already whole-line
        # durable; report the interruption and exit with the
        # conventional 128 + signum code (143 / 130).
        print(f"interrupted by signal {exc.signum}; journal flushed",
              file=sys.stderr)
        return 128 + exc.signum
    except KeyboardInterrupt:
        return 130
    except BrokenPipeError:
        # Downstream reader went away (e.g. piped into `head`).  Detach
        # stdout so interpreter shutdown does not retry the flush.
        sys.stdout = open(os.devnull, "w")  # noqa: SIM115
        return 0
    finally:
        for sig, previous in installed:
            try:
                signal.signal(sig, previous)
            except (ValueError, TypeError):
                pass


if __name__ == "__main__":
    raise SystemExit(main())
