"""Command-line interface for the subgraph query engine.

Subcommands
-----------

``repro generate``
    Write a synthetic graph database in the t/v/e exchange format.
``repro dataset``
    Write one of the real-world stand-ins (AIDS/PDBS/PCM/PPI).
``repro stats``
    Print Table IV-style statistics for a database file.
``repro query``
    Answer subgraph queries from a query file against a database file
    with any of the named algorithms.
``repro reproduce``
    Regenerate paper artifacts (tables/figures) by experiment id.
``repro index build`` / ``repro index verify``
    Manage the persistent index store: build and snapshot the IFV indices
    for a database, and structurally verify existing snapshots (framing,
    checksums, format version, optionally the database fingerprint).
``repro bench-micro``
    Time the hot matching-path kernels (candidate generation, bitset
    intersection, per-matcher query latency, parallel speedup, snapshot
    warm start vs cold rebuild) and write ``BENCH_micro.json``.

All commands operate on the text exchange format produced and consumed by
:mod:`repro.graph.io`, so databases round-trip through files.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from repro.bench.harness import BenchConfig
from repro.core import ALGORITHM_NAMES
from repro.graph.generators import generate_database
from repro.graph.io import read_graph_database, write_graph_database
from repro.utils.errors import ReproError
from repro.workloads.datasets import REAL_WORLD_SPECS, make_dataset

__all__ = ["build_parser", "main"]


def _positive_int(text: str) -> int:
    """argparse type for worker counts: an integer >= 1."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be at least 1 worker process, got {value}"
        )
    return value


def _cmd_generate(args: argparse.Namespace) -> int:
    db = generate_database(
        num_graphs=args.graphs,
        num_vertices=args.vertices,
        avg_degree=args.degree,
        num_labels=args.labels,
        seed=args.seed,
        name=Path(args.output).stem,
        attachment=args.attachment,
    )
    write_graph_database(db, args.output)
    print(f"wrote {len(db)} graphs to {args.output}")
    return 0


def _cmd_dataset(args: argparse.Namespace) -> int:
    db = make_dataset(args.name, seed=args.seed, scale=args.scale)
    write_graph_database(db, args.output)
    print(f"wrote {args.name} stand-in ({len(db)} graphs) to {args.output}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    db = read_graph_database(args.database)
    for key, value in db.stats().as_row().items():
        print(f"{key:<22} {value}")
    print(f"{'CSR memory (KiB)':<22} {db.csr_memory_bytes() / 1024:.1f}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.core import CachingPipeline, SubgraphQueryEngine, create_pipeline
    from repro.exec import create_executor

    db = read_graph_database(args.database)
    queries = read_graph_database(args.queries)
    pipeline = create_pipeline(args.algorithm)
    if args.cache:
        pipeline = CachingPipeline(pipeline, capacity=args.cache)
    if args.jobs > 1:
        executor = create_executor(
            "parallel", jobs=args.jobs, memory_limit_mb=args.memory_limit or None
        )
    elif args.executor == "subprocess":
        executor = create_executor(
            "subprocess", memory_limit_mb=args.memory_limit or None
        )
    else:
        executor = create_executor(args.executor)
    store = None
    if args.index_store:
        from repro.store import IndexStore

        store = IndexStore(args.index_store)
    status = 0
    with SubgraphQueryEngine(db, pipeline, executor=executor) as engine:
        engine.build_index(
            time_limit=args.index_limit, fallback=args.fallback, store=store
        )
        if engine.store_recovery is not None:
            print(f"# snapshot rejected ({engine.store_recovery}); "
                  f"index rebuilt from the database")
        if engine.degraded:
            print(f"# index build failed ({engine.degraded_reason}); "
                  f"degraded to the vcFV fallback")
        elif engine.index_source == "store":
            print(f"# index warm-started from snapshot "
                  f"in {engine.indexing_time:.3f} s")
        elif engine.indexing_time:
            print(f"# index built in {engine.indexing_time:.3f} s")
        if engine.store_save_error is not None:
            print(f"# warning: snapshot not saved ({engine.store_save_error})",
                  file=sys.stderr)
        items = list(queries.items())
        results = engine.query_many(
            [q for _, q in items], time_limit=args.time_limit
        )
        for (qid, query), result in zip(items, results):
            tag = query.name if query.name is not None else qid
            if result.timed_out:
                print(f"query {tag}: TIMEOUT after {result.query_time:.2f} s")
                status = 1
                continue
            if result.failure is not None:
                print(
                    f"query {tag}: FAILED "
                    f"({result.failure.kind}: {result.failure.message})"
                )
                status = 1
                continue
            answers = ",".join(str(a) for a in sorted(result.answers))
            print(
                f"query {tag}: {len(result.answers)} answers [{answers}] "
                f"|C(q)|={len(result.candidates)} "
                f"filter={result.filtering_time * 1000:.2f}ms "
                f"verify={result.verification_time * 1000:.2f}ms"
            )
        if args.cache:
            stats = pipeline.stats
            print(
                f"# cache: {stats.queries_with_hits}/{stats.queries} queries hit, "
                f"{stats.graphs_pruned} graph tests pruned"
            )
    return status


def _cmd_index_build(args: argparse.Namespace) -> int:
    from repro.core import SubgraphQueryEngine, create_pipeline
    from repro.store import IndexStore

    db = read_graph_database(args.database)
    store = IndexStore(args.store)
    status = 0
    for name in args.algorithm or ["Grapes", "GGSX", "CT-Index"]:
        pipeline = create_pipeline(name)
        if not pipeline.uses_index:
            print(f"{name}: index-free algorithm, nothing to snapshot")
            continue
        with SubgraphQueryEngine(db, pipeline) as engine:
            try:
                engine.build_index(time_limit=args.index_limit, store=store)
            except ReproError as exc:
                print(f"{name}: FAILED ({exc})", file=sys.stderr)
                status = 1
                continue
            path = store.snapshot_path(pipeline.index.name)
            if engine.index_source == "store":
                print(f"{name}: snapshot {path} already current "
                      f"(verified in {engine.indexing_time:.3f} s)")
            elif engine.store_save_error is not None:
                print(f"{name}: built, but snapshot not saved "
                      f"({engine.store_save_error})", file=sys.stderr)
                status = 1
            else:
                print(f"{name}: built in {engine.indexing_time:.3f} s -> {path}")
    return status


def _cmd_index_verify(args: argparse.Namespace) -> int:
    from repro.store import IndexStore, SnapshotError

    store = IndexStore(args.store)
    db = read_graph_database(args.database) if args.database else None
    snapshots = store.snapshots()
    if not snapshots:
        print(f"no snapshots in {store.directory}", file=sys.stderr)
        return 1
    status = 0
    for path in snapshots:
        try:
            header = store.verify_snapshot(path, db=db)
        except SnapshotError as exc:
            print(f"{path.name}: INVALID [{exc.reason}] {exc}")
            status = 1
        else:
            print(
                f"{path.name}: ok family={header.get('family')} "
                f"graphs={header.get('num_graphs')}"
            )
    return status


def _cmd_reproduce(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.bench import experiments

    producers = {
        "table4": experiments.table4_dataset_stats,
        "table5": experiments.table5_queryset_stats,
        "table6": experiments.table6_indexing_time,
        "fig2": experiments.fig2_filtering_precision,
        "fig3": experiments.fig3_filtering_time,
        "fig4": experiments.fig4_verification_time,
        "fig5": experiments.fig5_per_si_test_time,
        "fig6": experiments.fig6_candidate_counts,
        "fig7": experiments.fig7_query_time,
        "table7": experiments.table7_memory_cost,
        "table8": experiments.table8_synthetic_indexing_time,
        "fig8": experiments.fig8_synthetic_precision,
        "fig9": experiments.fig9_synthetic_filtering_time,
        "table9": experiments.table9_synthetic_memory_cost,
    }
    requested = args.artifacts or sorted(producers)
    unknown = [a for a in requested if a not in producers]
    if unknown:
        print(f"unknown artifact(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(sorted(producers))}", file=sys.stderr)
        return 2
    config = BenchConfig.from_env()
    overrides = {}
    if args.journal:
        overrides["journal"] = args.journal
    if args.executor:
        overrides["executor"] = args.executor
    if args.jobs:
        overrides["jobs"] = args.jobs
    if args.index_store:
        overrides["index_store"] = args.index_store
    if args.fallback:
        overrides["index_fallback"] = True
    if overrides:
        config = dataclasses.replace(config, **overrides)
    for artifact in requested:
        tables = producers[artifact](config)
        if hasattr(tables, "format_text"):
            tables = {None: tables}
        as_figure = args.figures and artifact.startswith("fig")
        for table in tables.values():
            if as_figure:
                print(table.format_figure(log_scale=True))
            else:
                print(table.format_text())
            print()
    return 0


def _cmd_bench_micro(args: argparse.Namespace) -> int:
    from repro.bench.micro import run_microbench, write_report

    report = run_microbench(jobs=args.jobs, quick=args.quick)
    write_report(report, args.output)
    print(f"wrote {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Subgraph query processing with efficient subgraph matching",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="write a synthetic database")
    generate.add_argument("--graphs", type=int, default=100)
    generate.add_argument("--vertices", type=int, default=50)
    generate.add_argument("--degree", type=float, default=4.0)
    generate.add_argument("--labels", type=int, default=10)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument(
        "--attachment", choices=("uniform", "preferential"), default="uniform"
    )
    generate.add_argument("--output", "-o", required=True)
    generate.set_defaults(func=_cmd_generate)

    dataset = sub.add_parser("dataset", help="write a real-world stand-in")
    dataset.add_argument("name", choices=sorted(REAL_WORLD_SPECS))
    dataset.add_argument("--scale", type=float, default=1.0)
    dataset.add_argument("--seed", type=int, default=0)
    dataset.add_argument("--output", "-o", required=True)
    dataset.set_defaults(func=_cmd_dataset)

    stats = sub.add_parser("stats", help="print database statistics")
    stats.add_argument("database")
    stats.set_defaults(func=_cmd_stats)

    query = sub.add_parser("query", help="answer subgraph queries")
    query.add_argument("database")
    query.add_argument("queries", help="query graphs in the same format")
    query.add_argument(
        "--algorithm", "-a", choices=sorted(ALGORITHM_NAMES), default="CFQL"
    )
    query.add_argument("--time-limit", type=float, default=600.0)
    query.add_argument("--index-limit", type=float, default=None)
    query.add_argument(
        "--cache", type=int, default=0, metavar="CAPACITY",
        help="wrap the algorithm in a query cache of this capacity",
    )
    query.add_argument(
        "--executor", choices=("inprocess", "subprocess"), default="inprocess",
        help="query containment: cooperative (inprocess) or hard kill "
        "timeouts and memory caps in a worker process (subprocess)",
    )
    query.add_argument(
        "--jobs", "-j", type=_positive_int, default=1, metavar="N",
        help="answer the query set across N worker processes "
        "(implies hard kill timeouts; results keep input order)",
    )
    query.add_argument(
        "--index-store", default="", metavar="DIR",
        help="persistent index-snapshot directory: warm-start the index "
        "from a verified snapshot when one exists, save one after a cold "
        "build; invalid snapshots always fall back to a rebuild",
    )
    query.add_argument(
        "--memory-limit", type=int, default=0, metavar="MIB",
        help="worker address-space cap in MiB (subprocess executor only)",
    )
    query.add_argument(
        "--fallback", action="store_true",
        help="degrade to the vcFV pipeline when the index build exceeds "
        "its time or memory budget instead of failing",
    )
    query.set_defaults(func=_cmd_query)

    reproduce = sub.add_parser("reproduce", help="regenerate paper artifacts")
    reproduce.add_argument(
        "artifacts", nargs="*",
        help="artifact ids (table4..table9, fig2..fig9); default: all",
    )
    reproduce.add_argument(
        "--figures", action="store_true",
        help="render fig* artifacts as bar charts instead of tables",
    )
    reproduce.add_argument(
        "--journal", default="", metavar="PATH",
        help="checkpoint completed matrix cells to this JSONL file; "
        "rerunning resumes from it instead of recomputing",
    )
    reproduce.add_argument(
        "--executor", choices=("inprocess", "subprocess"), default="",
        help="override the benchmark executor (default: REPRO_BENCH_EXECUTOR "
        "or inprocess)",
    )
    reproduce.add_argument(
        "--jobs", "-j", type=_positive_int, default=0, metavar="N",
        help="run each matrix cell's query set across N worker processes "
        "(does not invalidate an existing journal)",
    )
    reproduce.add_argument(
        "--index-store", default="", metavar="DIR",
        help="persistent index-snapshot directory; matrix cells warm-start "
        "from verified snapshots (does not invalidate an existing journal)",
    )
    reproduce.add_argument(
        "--fallback", action="store_true",
        help="degrade engines whose index build fails to their vcFV fallback",
    )
    reproduce.set_defaults(func=_cmd_reproduce)

    index = sub.add_parser("index", help="manage the persistent index store")
    index_sub = index.add_subparsers(dest="index_command", required=True)

    ibuild = index_sub.add_parser(
        "build", help="build indices and snapshot them to a store"
    )
    ibuild.add_argument("database")
    ibuild.add_argument(
        "--store", "-s", required=True, metavar="DIR",
        help="snapshot directory (created if missing)",
    )
    ibuild.add_argument(
        "--algorithm", "-a", action="append", choices=sorted(ALGORITHM_NAMES),
        metavar="NAME",
        help="algorithm whose index to build (repeatable; default: "
        "Grapes, GGSX, CT-Index)",
    )
    ibuild.add_argument(
        "--index-limit", type=float, default=None, metavar="SECONDS",
        help="abort any single index build after this many seconds",
    )
    ibuild.set_defaults(func=_cmd_index_build)

    iverify = index_sub.add_parser(
        "verify", help="verify the snapshots in a store"
    )
    iverify.add_argument("store", metavar="DIR")
    iverify.add_argument(
        "--database", "-d", default="", metavar="PATH",
        help="also check each snapshot's database fingerprint against "
        "this database file",
    )
    iverify.set_defaults(func=_cmd_index_verify)

    micro = sub.add_parser(
        "bench-micro", help="time the hot matching-path kernels"
    )
    micro.add_argument(
        "--output", "-o", default="BENCH_micro.json", metavar="PATH",
        help="where to write the JSON report (default: BENCH_micro.json)",
    )
    micro.add_argument(
        "--jobs", "-j", type=_positive_int, default=4, metavar="N",
        help="pool width for the parallel-vs-serial comparison",
    )
    micro.add_argument(
        "--quick", action="store_true",
        help="small workload sized for CI smoke runs",
    )
    micro.set_defaults(func=_cmd_bench_micro)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        # Operational failures (bad configuration, malformed input files,
        # blown budgets) are reported as one-line errors, not tracebacks.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream reader went away (e.g. piped into `head`).  Detach
        # stdout so interpreter shutdown does not retry the flush.
        sys.stdout = open(os.devnull, "w")  # noqa: SIM115
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
