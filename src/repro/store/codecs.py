"""Per-index-family serialization for the persistent index store.

A codec turns one live index into a JSON-compatible state document and
back.  Encoding is total (every reachable index state round-trips);
decoding is performed into a *freshly constructed* index whose build
parameters the store has already checked against the snapshot header, so
a decoded index is indistinguishable from a cold-built one — same
candidates, same memory accounting, same maintenance behaviour.

The ``family`` tag names the representation, not the algorithm: a
snapshot written for ``Grapes`` is usable by any pipeline carrying a
:class:`~repro.index.grapes.GrapesIndex` with the same parameters
(``vcGrapes`` shares it), and a family mismatch is detected at load.
"""

from __future__ import annotations

from repro.index.base import GraphIndex
from repro.index.ct_index import CTIndex
from repro.index.ggsx import GGSXIndex
from repro.index.graphgrep import GraphGrepIndex
from repro.index.grapes import GrapesIndex
from repro.index.mining import MiningTreeIndex
from repro.index.sing import SINGIndex
from repro.index.suffix_tree import SuffixTrie
from repro.index.trie import PathTrie
from repro.utils.errors import SnapshotError

__all__ = ["IndexCodec", "codec_for"]


class IndexCodec:
    """One index family's (params, encode, decode) triple."""

    #: Stable family tag recorded in snapshot headers.
    family: str = ""
    #: Concrete index class this codec serializes.
    cls: type[GraphIndex] = GraphIndex

    def params(self, index: GraphIndex) -> dict:
        """Build parameters that must match between snapshot and index."""
        raise NotImplementedError

    def encode_state(self, index: GraphIndex) -> dict:
        """The index's complete state as a JSON-compatible document."""
        raise NotImplementedError

    def decode_state(self, index: GraphIndex, state: dict) -> None:
        """Install ``state`` into a freshly constructed ``index``."""
        raise NotImplementedError


class GrapesCodec(IndexCodec):
    family = "grapes-path-trie"
    cls = GrapesIndex

    def params(self, index: GrapesIndex) -> dict:
        return {
            "max_path_edges": index.max_path_edges,
            "with_locations": index.with_locations,
            "max_features_per_graph": index.max_features_per_graph,
            "max_trie_nodes": index.max_trie_nodes,
        }

    def encode_state(self, index: GrapesIndex) -> dict:
        return {"ids": sorted(index._ids), "trie": index._trie.to_state()}

    def decode_state(self, index: GrapesIndex, state: dict) -> None:
        trie = PathTrie.from_state(state["trie"], with_locations=index.with_locations)
        index._trie = trie
        index._ids = set(map(int, state["ids"]))


class GGSXCodec(IndexCodec):
    family = "ggsx-suffix-trie"
    cls = GGSXIndex

    def params(self, index: GGSXIndex) -> dict:
        return {
            "max_path_edges": index.max_path_edges,
            "max_trie_nodes": index.max_trie_nodes,
        }

    def encode_state(self, index: GGSXIndex) -> dict:
        return {"ids": sorted(index._ids), "trie": index._trie.to_state()}

    def decode_state(self, index: GGSXIndex, state: dict) -> None:
        index._trie = SuffixTrie.from_state(state["trie"])
        index._ids = set(map(int, state["ids"]))


class CTIndexCodec(IndexCodec):
    family = "ct-index-fingerprints"
    cls = CTIndex

    def params(self, index: CTIndex) -> dict:
        return {
            "num_bits": index._hasher.num_bits,
            "num_hashes": index._hasher.num_hashes,
            "max_tree_edges": index.max_tree_edges,
            "max_cycle_length": index.max_cycle_length,
            "max_features_per_graph": index.max_features_per_graph,
        }

    def encode_state(self, index: CTIndex) -> dict:
        # Fingerprints are arbitrary-precision bitmask ints; hex keeps
        # them exact and compact in JSON.
        return {
            "fingerprints": {
                str(gid): format(fp, "x") for gid, fp in index._fingerprints.items()
            }
        }

    def decode_state(self, index: CTIndex, state: dict) -> None:
        index._fingerprints = {
            int(gid): int(fp, 16) for gid, fp in state["fingerprints"].items()
        }


class GraphGrepCodec(IndexCodec):
    family = "graphgrep-feature-table"
    cls = GraphGrepIndex

    def params(self, index: GraphGrepIndex) -> dict:
        return {
            "max_path_edges": index.max_path_edges,
            "max_features_per_graph": index.max_features_per_graph,
            "max_total_features": index.max_total_features,
        }

    def encode_state(self, index: GraphGrepIndex) -> dict:
        return {
            "ids": sorted(index._ids),
            "table": [
                [list(feature), {str(gid): c for gid, c in postings.items()}]
                for feature, postings in index._table.items()
            ],
        }

    def decode_state(self, index: GraphGrepIndex, state: dict) -> None:
        index._table = {
            tuple(map(int, feature)): {int(gid): int(c) for gid, c in postings.items()}
            for feature, postings in state["table"]
        }
        index._ids = set(map(int, state["ids"]))


class SINGCodec(IndexCodec):
    family = "sing-rooted-paths"
    cls = SINGIndex

    def params(self, index: SINGIndex) -> dict:
        return {
            "max_path_edges": index.max_path_edges,
            "max_features_per_graph": index.max_features_per_graph,
        }

    def encode_state(self, index: SINGIndex) -> dict:
        return {
            "locations": {
                str(gid): [
                    [list(feature), sorted(starts)]
                    for feature, starts in table.items()
                ]
                for gid, table in index._locations.items()
            }
        }

    def decode_state(self, index: SINGIndex, state: dict) -> None:
        index._locations = {
            int(gid): {
                tuple(map(int, feature)): set(map(int, starts))
                for feature, starts in table
            }
            for gid, table in state["locations"].items()
        }


class MiningTreeCodec(IndexCodec):
    family = "mining-tree-postings"
    cls = MiningTreeIndex

    def params(self, index: MiningTreeIndex) -> dict:
        return {
            "max_tree_edges": index.max_tree_edges,
            "min_support": index.min_support,
            "discriminative_ratio": index.discriminative_ratio,
            "max_features_per_graph": index.max_features_per_graph,
        }

    def encode_state(self, index: MiningTreeIndex) -> dict:
        # The mined postings are stored alongside the raw per-graph
        # features so a load skips the (expensive) mining pass entirely.
        return {
            "graph_features": {
                str(gid): sorted(features)
                for gid, features in index._graph_features.items()
            },
            "postings": {
                feature: sorted(gids) for feature, gids in index._postings.items()
            },
            "feature_size": dict(index._feature_size),
        }

    def decode_state(self, index: MiningTreeIndex, state: dict) -> None:
        index._graph_features = {
            int(gid): set(features)
            for gid, features in state["graph_features"].items()
        }
        index._postings = {
            feature: set(map(int, gids))
            for feature, gids in state["postings"].items()
        }
        index._feature_size = {
            feature: int(size) for feature, size in state["feature_size"].items()
        }


_CODECS: tuple[IndexCodec, ...] = (
    GrapesCodec(),
    GGSXCodec(),
    CTIndexCodec(),
    GraphGrepCodec(),
    SINGCodec(),
    MiningTreeCodec(),
)


def codec_for(index: GraphIndex) -> IndexCodec:
    """The codec serializing ``index``'s exact class.

    Exact-class lookup, not ``isinstance``: a subclass may carry state the
    parent codec would silently drop, which is the kind of wrong-but-
    plausible snapshot this store exists to prevent.
    """
    for codec in _CODECS:
        if type(index) is codec.cls:
            return codec
    raise SnapshotError(
        f"no snapshot codec for index type {type(index).__name__}",
        reason="family",
    )
