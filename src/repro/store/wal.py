"""The write-ahead mutation log: durable ``add_graph``/``remove_graph``.

A static database warm-starts from index snapshots alone; a *mutating*
database needs every acknowledged mutation to survive a crash too.  The
:class:`MutationLog` journals each mutation as one self-verifying text
line — appended durably (``O_APPEND`` + fsync, see
:func:`repro.utils.fsio.append_bytes_durable`) *before* the in-memory
database or index mutates — so warm start becomes snapshot load **plus
idempotent delta replay** of the journaled tail.

Record framing — one line per record::

    REPROWAL1 <seq> <crc32-hex> <payload-json>\n

``seq`` is a strictly increasing sequence number (the acknowledgement
order of mutations); the CRC32 covers the JSON payload exactly.  The
first line of every log file is a ``begin`` record (sequence 0) carrying
the fingerprint of the *base* database the log applies to, so a log can
never be replayed onto the wrong database.  Payloads::

    {"op": "begin", "base": "<sha256 of the base database>"}
    {"op": "add", "gid": 7, "graph": {"labels": [...], "edges": [...]}}
    {"op": "remove", "gid": 3}

``add``/``remove`` payloads may also carry ``"key"`` — the client's
idempotency token — replayed into the service's mutation-dedup window
on recovery.

Recovery (:meth:`MutationLog.recover`) trusts nothing: every line is
re-framed, CRC-checked, and sequence-checked.  Damage is classified with
the torn-tail rule:

* an incomplete or unverifiable **final** line is ``wal-torn`` — the
  expected artifact of a kill mid-append; the valid prefix is kept and
  the file is truncated back to it.  An unterminated final line is torn
  even if it happens to parse: the append never returned, so the
  mutation was never applied or acknowledged.
* an unverifiable line **before** the end is ``wal-corrupt`` — bit rot
  or tampering, which a crash cannot produce.  The log is truncated at
  the first bad record; records after a gap are never replayed, because
  replay order past missing mutations is undefined.
* a ``begin`` record naming a different base database is ``wal-base`` —
  the whole file is quarantined (renamed aside, preserved for
  forensics), never replayed, never silently deleted.

Compaction (:meth:`truncate_through`) drops records once they are folded
into fresh snapshots; the caller commits the snapshots *first*, so a
crash anywhere in the window only leaves already-folded records behind,
which replay skips idempotently by sequence number.

Two fault sites instrument the append path for the chaos suite:
``wal.torn_append`` fires between the two halves of a split record write
(armed ``crash`` faults leave a genuinely torn tail) and
``wal.corrupt_record`` fires after a completed append with the log path
as tag (for ``corrupt``-kind bit flips).
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.exec import faults
from repro.graph.builder import GraphBuilder
from repro.graph.database import GraphDatabase
from repro.graph.labeled_graph import Graph
from repro.utils.errors import SnapshotError
from repro.utils.fsio import append_bytes_durable, atomic_write_bytes, fsync_dir

__all__ = [
    "MutationLog",
    "MutationRecord",
    "WalScan",
    "graph_from_record",
    "graph_to_record",
]

#: Record magic + format version, the first token of every line.
WAL_MAGIC = "REPROWAL1"

#: Suffix given to a quarantined (never-replayable) log, preserved beside
#: the store for forensics instead of silently deleted.
QUARANTINE_SUFFIX = ".quarantined"


# ----------------------------------------------------------------------
# Graph codec (JSON twin of the t/v/e format; no service dependency)
# ----------------------------------------------------------------------

def graph_to_record(graph: Graph) -> dict:
    """JSON-ready form of a labeled graph for journal/snapshot payloads."""
    record = {
        "labels": list(graph.labels),
        "edges": [[u, v] for u, v in graph.edges()],
    }
    if graph.name is not None:
        record["name"] = graph.name
    return record


def graph_from_record(obj: dict) -> Graph:
    """Rebuild a graph from :func:`graph_to_record` output.

    The surrounding record already passed its CRC, so this validates
    shape (via :class:`GraphBuilder`) rather than re-auditing every
    field like the wire-protocol decoder does.
    """
    builder = GraphBuilder(name=obj.get("name"))
    builder.add_vertices(obj["labels"])
    for u, v in obj["edges"]:
        builder.add_edge(u, v)
    return builder.build()


# ----------------------------------------------------------------------
# Records
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class MutationRecord:
    """One journaled mutation, already verified."""

    seq: int
    op: str  # "add" | "remove"
    gid: int
    graph: Graph | None = None
    #: The client's idempotency token, when the mutation carried one;
    #: recovery replays these into the service's dedup window so a retry
    #: across a crash-restart boundary is answered, not double-applied.
    request_key: str | None = None

    def apply(self, db: GraphDatabase) -> bool:
        """Replay this record onto ``db``; False when already applied.

        Idempotence is by graph id: a record whose effect is already
        visible (the id present for ``add``, absent for ``remove``) is
        skipped, so a crash between a snapshot fold and the log truncate
        never double-applies.
        """
        if self.op == "add":
            if self.gid in db:
                return False
            db.add_graph_with_id(self.gid, self.graph)
            return True
        if self.gid not in db:
            return False
        db.remove_graph(self.gid)
        return True


@dataclass
class WalScan:
    """Outcome of one :meth:`MutationLog.recover` pass."""

    #: Verified records, in journal order.
    records: list[MutationRecord] = field(default_factory=list)
    #: None, or the stable damage code: ``wal-torn`` / ``wal-corrupt`` /
    #: ``wal-base``.
    reason: str | None = None
    #: Journal lines discarded (truncated tail or quarantined file).
    dropped: int = 0
    #: True when the whole file was set aside as unreplayable.
    quarantined: bool = False


@dataclass
class _ParsedLine:
    seq: int
    op: str
    payload: dict


class MutationLog:
    """Sequence-numbered, CRC-framed journal of database mutations.

    The log must be anchored to a base-database fingerprint (via
    :meth:`recover` or :meth:`anchor`) before anything can be appended:
    the anchor is written into the file's ``begin`` record and checked
    on every recovery.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._base: str | None = None
        self._next_seq = 1
        self._depth = 0

    def __repr__(self) -> str:
        return f"<MutationLog {str(self.path)!r} depth={self._depth}>"

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------

    @property
    def anchored(self) -> bool:
        return self._base is not None

    @property
    def base(self) -> str | None:
        """Fingerprint of the base database this log applies to."""
        return self._base

    @property
    def last_seq(self) -> int:
        """Highest sequence number ever issued (journaled or folded)."""
        return self._next_seq - 1

    @property
    def depth(self) -> int:
        """Records currently in the file (journaled, not yet compacted)."""
        return self._depth

    def anchor(self, base_fingerprint: str) -> None:
        """Bind the log to its base database (fresh logs only)."""
        self._base = base_fingerprint

    def ensure_floor(self, seq: int) -> None:
        """Never issue a sequence number at or below ``seq``.

        Called with the database snapshot's fold point, so appends after
        a compaction continue the global ordering even though the file
        was emptied.
        """
        self._next_seq = max(self._next_seq, seq + 1)

    # ------------------------------------------------------------------
    # Append (the durable write-ahead path)
    # ------------------------------------------------------------------

    def append_add(
        self, gid: int, graph: Graph, request_key: str | None = None
    ) -> int:
        """Journal an insertion; returns its sequence number.

        Durable (written and fsynced) before it returns — the caller
        mutates the in-memory database only afterwards.  ``request_key``
        (the client's idempotency token) is journaled alongside so
        recovery can rebuild the mutation-dedup window.
        """
        payload = {"op": "add", "gid": gid, "graph": graph_to_record(graph)}
        if request_key is not None:
            payload["key"] = request_key
        return self._append(payload)

    def append_remove(self, gid: int, request_key: str | None = None) -> int:
        """Journal a removal; returns its sequence number."""
        payload: dict = {"op": "remove", "gid": gid}
        if request_key is not None:
            payload["key"] = request_key
        return self._append(payload)

    @staticmethod
    def _frame(seq: int, payload: dict) -> bytes:
        body = json.dumps(payload, separators=(",", ":"), sort_keys=True)
        data = body.encode("utf-8")
        return (
            f"{WAL_MAGIC} {seq} {zlib.crc32(data):08x} ".encode("utf-8")
            + data + b"\n"
        )

    def _append(self, payload: dict) -> int:
        if self._base is None:
            raise SnapshotError(
                f"mutation log {self.path} is not anchored to a base "
                "database; recover() or anchor() must run before appends",
                reason="wal-base",
            )
        fresh = not self.path.exists() or self.path.stat().st_size == 0
        if fresh:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            append_bytes_durable(
                self.path, self._frame(0, {"op": "begin", "base": self._base})
            )
        seq = self._next_seq
        data = self._frame(seq, payload)
        if faults.armed("wal.torn_append"):
            # Split the write so a crash fired at the site leaves a real
            # torn record on disk; a non-fatal fault kind falls through
            # and the second half completes the line.
            cut = max(1, len(data) // 2)
            append_bytes_durable(self.path, data[:cut])
            faults.trip("wal.torn_append", tag=str(self.path))
            append_bytes_durable(self.path, data[cut:])
        else:
            append_bytes_durable(self.path, data)
        faults.trip("wal.corrupt_record", tag=str(self.path))
        self._next_seq = seq + 1
        self._depth += 1
        return seq

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    @staticmethod
    def _parse_line(line: bytes) -> _ParsedLine | None:
        parts = line.split(b" ", 3)
        if len(parts) != 4 or parts[0] != WAL_MAGIC.encode("utf-8"):
            return None
        try:
            seq = int(parts[1])
        except ValueError:
            return None
        if seq < 0:
            return None
        payload_bytes = parts[3]
        if parts[2] != b"%08x" % zlib.crc32(payload_bytes):
            return None
        try:
            payload = json.loads(payload_bytes.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            return None
        if not isinstance(payload, dict):
            return None
        op = payload.get("op")
        if op == "begin":
            if seq != 0 or not isinstance(payload.get("base"), str):
                return None
        elif op in ("add", "remove"):
            gid = payload.get("gid")
            if not isinstance(gid, int) or isinstance(gid, bool) or gid < 0:
                return None
            if op == "add" and not isinstance(payload.get("graph"), dict):
                return None
            if "key" in payload and not isinstance(payload["key"], str):
                return None
        else:
            return None
        return _ParsedLine(seq=seq, op=op, payload=payload)

    def recover(self, base_fingerprint: str) -> WalScan:
        """Scan, verify, and repair the log; returns the verified records.

        Truncates a damaged tail back to the last verified record (see
        the module docstring for the torn/corrupt classification) and
        quarantines a log journaled against a different base database.
        Never replays, keeps, or deletes a record it could not verify.
        """
        self._base = base_fingerprint
        self._depth = 0
        scan = WalScan()
        try:
            raw = self.path.read_bytes()
        except FileNotFoundError:
            return scan
        if not raw:
            return scan
        terminated = raw.endswith(b"\n")
        lines = raw.split(b"\n")
        if terminated:
            lines.pop()  # the empty piece after the final newline
        valid_bytes = 0
        last_seq = 0
        for i, line in enumerate(lines):
            final = i == len(lines) - 1
            unterminated = final and not terminated
            parsed = self._parse_line(line)
            ok = (
                parsed is not None
                and not unterminated
                and (parsed.op == "begin") == (i == 0)
                and (i == 0 or parsed.seq > last_seq)
            )
            if ok and i == 0 and parsed.payload["base"] != base_fingerprint:
                # A verified log for a *different* database: replaying it
                # here would corrupt this one.  Set the whole file aside.
                self._quarantine()
                return WalScan(
                    reason="wal-base", dropped=len(lines), quarantined=True
                )
            if not ok:
                scan.reason = "wal-torn" if final else "wal-corrupt"
                scan.dropped = len(lines) - i
                self._truncate_to(raw, valid_bytes)
                break
            valid_bytes += len(line) + 1
            if parsed.op != "begin":
                last_seq = parsed.seq
                scan.records.append(self._record_of(parsed))
        self._depth = len(scan.records)
        self._next_seq = max(self._next_seq, last_seq + 1)
        return scan

    @staticmethod
    def _record_of(parsed: _ParsedLine) -> MutationRecord:
        graph = None
        if parsed.op == "add":
            graph = graph_from_record(parsed.payload["graph"])
        return MutationRecord(
            seq=parsed.seq,
            op=parsed.op,
            gid=parsed.payload["gid"],
            graph=graph,
            request_key=parsed.payload.get("key"),
        )

    def _truncate_to(self, raw: bytes, valid_bytes: int) -> None:
        if valid_bytes == len(raw):
            return
        if valid_bytes == 0:
            self._unlink()
        else:
            atomic_write_bytes(self.path, raw[:valid_bytes])

    def _quarantine(self) -> None:
        target = self.path.with_name(self.path.name + QUARANTINE_SUFFIX)
        try:
            os.replace(self.path, target)
        except FileNotFoundError:
            pass
        fsync_dir(self.path.parent)

    def _unlink(self) -> None:
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass
        fsync_dir(self.path.parent)

    # ------------------------------------------------------------------
    # Compaction support
    # ------------------------------------------------------------------

    def truncate_through(self, seq: int) -> int:
        """Drop journaled records with sequence number ≤ ``seq``.

        Called *after* the snapshots folding those records have committed
        (temp + fsync + rename), so a crash before this point only costs
        a few idempotently skipped replays, never data.  Returns the
        number of records dropped.
        """
        try:
            raw = self.path.read_bytes()
        except FileNotFoundError:
            return 0
        kept: list[bytes] = []
        dropped = 0
        for line in raw.split(b"\n"):
            if not line:
                continue
            parsed = self._parse_line(line)
            if parsed is None or parsed.op == "begin":
                continue
            if parsed.seq <= seq:
                dropped += 1
            else:
                kept.append(line)
        if not kept:
            self._unlink()
        else:
            begin = self._frame(0, {"op": "begin", "base": self._base})
            atomic_write_bytes(self.path, begin + b"\n".join(kept) + b"\n")
        self._depth = len(kept)
        return dropped
