"""The on-disk snapshot format of the persistent index store.

A snapshot is a single binary file holding named sections, each protected
by its own CRC32, behind a fixed magic and a format version::

    magic   8 bytes   b"REPROSNP"
    version 4 bytes   little-endian uint32 (FORMAT_VERSION)
    count   4 bytes   number of sections
    TOC     per section: name_len(2) | name(utf-8) | length(8) | crc32(4)
    body    section payloads, concatenated in TOC order

Writes are crash-consistent: the whole image is serialized in memory,
written to a same-directory temp file, fsynced, and atomically renamed
over the destination (see :mod:`repro.utils.fsio`) — a reader never
observes a partially written snapshot, and a crash mid-save leaves the
previous snapshot intact.  Reads trust nothing: truncation, a wrong
magic, a future format version, and any checksum mismatch each raise a
:class:`~repro.utils.errors.SnapshotError` with a stable ``reason`` code,
so callers can always fall back to a rebuild instead of crashing or
silently serving answers from a damaged index.

Two fault-injection sites instrument the write path for recovery tests:
``store.torn_write`` fires between the temp-file write and the atomic
rename (a crash here models a kill mid-save), and
``store.corrupt_snapshot`` fires after the rename with the final path as
tag (a ``corrupt`` fault there models post-write bit rot).
"""

from __future__ import annotations

import hashlib
import struct
import zlib
from pathlib import Path

from repro.exec import faults
from repro.graph.database import GraphDatabase
from repro.utils.errors import SnapshotError
from repro.utils.fsio import atomic_write_bytes

__all__ = [
    "FORMAT_VERSION",
    "MAGIC",
    "database_fingerprint",
    "read_snapshot",
    "write_snapshot",
]

MAGIC = b"REPROSNP"
FORMAT_VERSION = 1

_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")


def database_fingerprint(db: GraphDatabase) -> str:
    """Content hash binding a snapshot to the database it indexes.

    Covers graph ids, vertex labels, and edges — everything the indices
    see.  Graph ids are hashed explicitly (not positionally) because ids
    are stable handles that survive removals, and an index maps features
    to exactly these ids.  Database and graph *names* are excluded: they
    do not affect index contents, and a renamed file must still warm-start.
    """
    hasher = hashlib.sha256()
    for gid, graph in db.items():
        hasher.update(b"g%d\n" % gid)
        for v in graph.vertices():
            hasher.update(b"v%d %d\n" % (v, graph.label(v)))
        for u, v in graph.edges():
            hasher.update(b"e%d %d\n" % (u, v))
    return hasher.hexdigest()


def write_snapshot(path: str | Path, sections: dict[str, bytes]) -> None:
    """Serialize ``sections`` and publish them atomically at ``path``."""
    path = Path(path)
    parts = [MAGIC, _U32.pack(FORMAT_VERSION), _U32.pack(len(sections))]
    for name, payload in sections.items():
        encoded = name.encode("utf-8")
        parts.append(_U16.pack(len(encoded)))
        parts.append(encoded)
        parts.append(_U64.pack(len(payload)))
        parts.append(_U32.pack(zlib.crc32(payload)))
    parts.extend(sections.values())
    image = b"".join(parts)
    faults.trip("store.torn_write", tag=str(path))
    atomic_write_bytes(path, image)
    faults.trip("store.corrupt_snapshot", tag=str(path))


class _Reader:
    """Bounds-checked cursor over the snapshot image."""

    def __init__(self, data: bytes, path: Path) -> None:
        self.data = data
        self.pos = 0
        self.path = path

    def take(self, n: int) -> bytes:
        if self.pos + n > len(self.data):
            raise SnapshotError(
                f"snapshot {self.path} is truncated "
                f"({len(self.data)} bytes, needed {self.pos + n})",
                reason="truncated",
            )
        chunk = self.data[self.pos : self.pos + n]
        self.pos += n
        return chunk

    def u16(self) -> int:
        return _U16.unpack(self.take(2))[0]

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]

    def u64(self) -> int:
        return _U64.unpack(self.take(8))[0]


def read_snapshot(path: str | Path) -> dict[str, bytes]:
    """Load and fully verify a snapshot; returns the section map.

    Raises :class:`SnapshotError` with reason ``missing``, ``truncated``,
    ``magic``, ``version``, or ``checksum``; never returns data that
    failed any check.
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        raise SnapshotError(f"no snapshot at {path}", reason="missing") from None
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {path}: {exc}", reason="missing") from exc
    reader = _Reader(data, path)
    magic = reader.take(len(MAGIC))
    if magic != MAGIC:
        raise SnapshotError(
            f"snapshot {path} has wrong magic {magic!r}", reason="magic"
        )
    version = reader.u32()
    if version != FORMAT_VERSION:
        raise SnapshotError(
            f"snapshot {path} has format version {version}, "
            f"this build reads version {FORMAT_VERSION}",
            reason="version",
        )
    toc = []
    for _ in range(reader.u32()):
        name_len = reader.u16()
        try:
            name = reader.take(name_len).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise SnapshotError(
                f"snapshot {path} has a corrupt section name", reason="checksum"
            ) from exc
        toc.append((name, reader.u64(), reader.u32()))
    sections: dict[str, bytes] = {}
    for name, length, crc in toc:
        payload = reader.take(length)
        if zlib.crc32(payload) != crc:
            raise SnapshotError(
                f"snapshot {path} section {name!r} fails its CRC32 check",
                reason="checksum",
            )
        sections[name] = payload
    if reader.pos != len(data):
        raise SnapshotError(
            f"snapshot {path} has {len(data) - reader.pos} trailing bytes",
            reason="truncated",
        )
    return sections
