"""The persistent index store: a directory of validated index snapshots.

One :class:`IndexStore` manages a directory holding at most one snapshot
per index family member, named after the index (``Grapes.snap``,
``GGSX.snap``, ...).  The contract is *never trust, always verify*:

* ``save`` serializes the index plus a header (family tag, build
  parameters, the fingerprint of the database it was built against) into
  a crash-consistent snapshot — temp file, fsync, atomic rename, per-
  section CRC32s (see :mod:`repro.store.snapshot`);
* ``load_into`` re-verifies everything on the way back in: checksums and
  framing, format version, codec family, build parameters, and the
  database fingerprint.  Any mismatch — a truncated file, a flipped bit,
  a snapshot built from an older database, a future format version —
  raises :class:`~repro.utils.errors.SnapshotError` with a stable reason
  code, and the caller (the engine) falls back to a rebuild.

A snapshot is keyed by index name only, deliberately: building against a
*changed* database must be detected as ``db-fingerprint`` at load rather
than silently missed because the filename changed.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from repro.graph.database import GraphDatabase
from repro.index.base import GraphIndex
from repro.store.codecs import codec_for
from repro.store.snapshot import database_fingerprint, read_snapshot, write_snapshot
from repro.utils.errors import SnapshotError

__all__ = ["IndexStore"]

SNAPSHOT_SUFFIX = ".snap"

_SLUG_RE = re.compile(r"[^A-Za-z0-9_.-]+")


def _slug(name: str) -> str:
    return _SLUG_RE.sub("_", name) or "index"


class IndexStore:
    """Directory-backed store of durable, validated index snapshots."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)

    def __repr__(self) -> str:
        return f"<IndexStore {str(self.directory)!r}>"

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------

    def snapshot_path(self, index_name: str) -> Path:
        return self.directory / f"{_slug(index_name)}{SNAPSHOT_SUFFIX}"

    def snapshots(self) -> list[Path]:
        """Every snapshot file currently in the store (sorted)."""
        if not self.directory.is_dir():
            return []
        return sorted(self.directory.glob(f"*{SNAPSHOT_SUFFIX}"))

    def has_snapshot(self, index_name: str) -> bool:
        return self.snapshot_path(index_name).is_file()

    # ------------------------------------------------------------------
    # Save
    # ------------------------------------------------------------------

    def save(
        self,
        index: GraphIndex,
        db: GraphDatabase,
        db_fingerprint: str | None = None,
    ) -> Path:
        """Write a crash-consistent snapshot of ``index``; returns its path.

        ``db_fingerprint`` may be passed when already computed (the engine
        fingerprints once per build) — it *must* be the fingerprint of
        ``db``.
        """
        codec = codec_for(index)
        header = {
            "family": codec.family,
            "index_name": index.name,
            "params": codec.params(index),
            "db_fingerprint": db_fingerprint or database_fingerprint(db),
            "num_graphs": len(index.indexed_ids),
        }
        sections = {
            "header": json.dumps(header, sort_keys=True).encode("utf-8"),
            "index": json.dumps(codec.encode_state(index)).encode("utf-8"),
        }
        path = self.snapshot_path(index.name)
        write_snapshot(path, sections)
        return path

    # ------------------------------------------------------------------
    # Load
    # ------------------------------------------------------------------

    @staticmethod
    def _parse_header(path: Path, sections: dict[str, bytes]) -> dict:
        try:
            header = json.loads(sections["header"])
        except (KeyError, ValueError) as exc:
            raise SnapshotError(
                f"snapshot {path} has no parseable header section",
                reason="payload",
            ) from exc
        if not isinstance(header, dict):
            raise SnapshotError(
                f"snapshot {path} header is not an object", reason="payload"
            )
        return header

    def load_into(
        self,
        index: GraphIndex,
        db: GraphDatabase,
        db_fingerprint: str | None = None,
    ) -> dict:
        """Fill a freshly constructed ``index`` from its snapshot.

        Verifies, in order: file framing and checksums, codec family,
        build parameters, and the database fingerprint.  On success the
        index answers queries exactly as a cold rebuild would; on *any*
        failure a :class:`SnapshotError` is raised and the index is left
        untouched.  Returns the snapshot header.
        """
        path = self.snapshot_path(index.name)
        sections = read_snapshot(path)
        header = self._parse_header(path, sections)
        codec = codec_for(index)
        if header.get("family") != codec.family:
            raise SnapshotError(
                f"snapshot {path} holds family {header.get('family')!r}, "
                f"index {index.name!r} needs {codec.family!r}",
                reason="family",
            )
        if header.get("params") != codec.params(index):
            raise SnapshotError(
                f"snapshot {path} was built with parameters "
                f"{header.get('params')!r}, index is configured with "
                f"{codec.params(index)!r}",
                reason="params",
            )
        expected = db_fingerprint or database_fingerprint(db)
        if header.get("db_fingerprint") != expected:
            raise SnapshotError(
                f"snapshot {path} was built against a different database "
                f"(fingerprint {header.get('db_fingerprint')!r} != {expected!r})",
                reason="db-fingerprint",
            )
        try:
            state = json.loads(sections["index"])
            codec.decode_state(index, state)
        except SnapshotError:
            raise
        except Exception as exc:
            raise SnapshotError(
                f"snapshot {path} payload cannot be decoded: "
                f"{type(exc).__name__}: {exc}",
                reason="payload",
            ) from exc
        return header

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------

    def verify_snapshot(self, path: str | Path, db: GraphDatabase | None = None) -> dict:
        """Structurally verify one snapshot file; returns its header.

        Checks framing, version, and checksums; with ``db`` given, also
        the database fingerprint.  Raises :class:`SnapshotError` on any
        problem — the same defences ``load_into`` applies, minus the
        parameter comparison (which needs a configured index).
        """
        path = Path(path)
        sections = read_snapshot(path)
        header = self._parse_header(path, sections)
        try:
            json.loads(sections["index"])
        except (KeyError, ValueError) as exc:
            raise SnapshotError(
                f"snapshot {path} has no parseable index section",
                reason="payload",
            ) from exc
        if db is not None:
            expected = database_fingerprint(db)
            if header.get("db_fingerprint") != expected:
                raise SnapshotError(
                    f"snapshot {path} was built against a different database "
                    f"(fingerprint {header.get('db_fingerprint')!r} != "
                    f"{expected!r})",
                    reason="db-fingerprint",
                )
        return header
