"""The persistent index store: a directory of validated index snapshots.

One :class:`IndexStore` manages a directory holding at most one snapshot
per index family member, named after the index (``Grapes.snap``,
``GGSX.snap``, ...).  The contract is *never trust, always verify*:

* ``save`` serializes the index plus a header (family tag, build
  parameters, the fingerprint of the database it was built against) into
  a crash-consistent snapshot — temp file, fsync, atomic rename, per-
  section CRC32s (see :mod:`repro.store.snapshot`);
* ``load_into`` re-verifies everything on the way back in: checksums and
  framing, format version, codec family, build parameters, and the
  database fingerprint.  Any mismatch — a truncated file, a flipped bit,
  a snapshot built from an older database, a future format version —
  raises :class:`~repro.utils.errors.SnapshotError` with a stable reason
  code, and the caller (the engine) falls back to a rebuild.

A snapshot is keyed by index name only, deliberately: building against a
*changed* database must be detected as ``db-fingerprint`` at load rather
than silently missed because the filename changed.

Dynamic databases add two more artifacts to the directory (PR 8):

* ``mutations.wal`` — the :class:`~repro.store.wal.MutationLog`, the
  durable journal of acknowledged ``add_graph``/``remove_graph`` calls
  not yet folded into snapshots;
* ``database.dbsnap`` — a snapshot of the *mutated* database itself,
  written by compaction so folded journal records can be dropped.  Its
  header records the base-database fingerprint it is anchored to and the
  journal sequence number it folds through.

:meth:`IndexStore.recover_mutations` ties them together: restore the
database snapshot if one verifies, scan/repair the journal, and hand the
caller the verified records past the fold point.  A database snapshot
that exists but cannot be trusted strands any mutations a previous
compaction already folded away, so the store **quarantines** the whole
dynamic state (snapshot + journal renamed aside, never deleted) and the
engine restarts from the base database — degraded to stale, never wrong.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.graph.database import GraphDatabase
from repro.index.base import GraphIndex
from repro.store.codecs import codec_for
from repro.store.snapshot import database_fingerprint, read_snapshot, write_snapshot
from repro.store.wal import (
    QUARANTINE_SUFFIX,
    MutationLog,
    MutationRecord,
    graph_from_record,
    graph_to_record,
)
from repro.utils.errors import SnapshotError
from repro.utils.fsio import atomic_write_text, fsync_dir

__all__ = ["IndexStore", "MutationRecovery"]

SNAPSHOT_SUFFIX = ".snap"

#: The mutated-database snapshot.  Deliberately *not* ``*.snap`` so the
#: index-snapshot listing (``snapshots()`` / ``repro index verify``) is
#: unaffected.
DATABASE_SNAPSHOT_NAME = "database.dbsnap"

#: The write-ahead mutation log file inside a store directory.
WAL_NAME = "mutations.wal"

#: The advisory per-shard label summary (see ``repro.shard.summary``).
SUMMARY_NAME = "summary.json"

_SLUG_RE = re.compile(r"[^A-Za-z0-9_.-]+")


def _slug(name: str) -> str:
    return _SLUG_RE.sub("_", name) or "index"


@dataclass
class MutationRecovery:
    """What :meth:`IndexStore.recover_mutations` found and repaired."""

    #: Fingerprint of the base database (as loaded from its file).
    base_fingerprint: str
    #: Journal sequence number the database snapshot folds through (0
    #: when there is no snapshot — the database starts at the base).
    folded_seq: int = 0
    #: Verified journal records past the fold point, to be replayed.
    records: list[MutationRecord] = field(default_factory=list)
    #: Journal lines discarded (torn tail, corrupt record, quarantine).
    dropped: int = 0
    #: Stable damage code when anything was repaired or set aside.
    reason: str | None = None
    #: True when the dynamic state was quarantined wholesale.
    quarantined: bool = False


class IndexStore:
    """Directory-backed store of durable, validated index snapshots."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self._wal: MutationLog | None = None
        self._recovered = False

    def __repr__(self) -> str:
        return f"<IndexStore {str(self.directory)!r}>"

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------

    def snapshot_path(self, index_name: str) -> Path:
        return self.directory / f"{_slug(index_name)}{SNAPSHOT_SUFFIX}"

    @property
    def database_snapshot_path(self) -> Path:
        return self.directory / DATABASE_SNAPSHOT_NAME

    @property
    def wal(self) -> MutationLog:
        """The store's write-ahead mutation log (lazily constructed)."""
        if self._wal is None:
            self._wal = MutationLog(self.directory / WAL_NAME)
        return self._wal

    def snapshots(self) -> list[Path]:
        """Every snapshot file currently in the store (sorted)."""
        if not self.directory.is_dir():
            return []
        return sorted(self.directory.glob(f"*{SNAPSHOT_SUFFIX}"))

    def has_snapshot(self, index_name: str) -> bool:
        return self.snapshot_path(index_name).is_file()

    # ------------------------------------------------------------------
    # Save
    # ------------------------------------------------------------------

    def save(
        self,
        index: GraphIndex,
        db: GraphDatabase,
        db_fingerprint: str | None = None,
        wal_seq: int = 0,
    ) -> Path:
        """Write a crash-consistent snapshot of ``index``; returns its path.

        ``db_fingerprint`` may be passed when already computed (the engine
        fingerprints once per build) — it *must* be the fingerprint of
        ``db``.  ``wal_seq`` records the mutation-log sequence number this
        snapshot is current through, so recovery knows which journaled
        records the snapshot already contains.
        """
        codec = codec_for(index)
        header = {
            "family": codec.family,
            "index_name": index.name,
            "params": codec.params(index),
            "db_fingerprint": db_fingerprint or database_fingerprint(db),
            "num_graphs": len(index.indexed_ids),
            "wal_seq": wal_seq,
        }
        sections = {
            "header": json.dumps(header, sort_keys=True).encode("utf-8"),
            "index": json.dumps(codec.encode_state(index)).encode("utf-8"),
        }
        path = self.snapshot_path(index.name)
        write_snapshot(path, sections)
        return path

    # ------------------------------------------------------------------
    # Load
    # ------------------------------------------------------------------

    @staticmethod
    def _parse_header(path: Path, sections: dict[str, bytes]) -> dict:
        try:
            header = json.loads(sections["header"])
        except (KeyError, ValueError) as exc:
            raise SnapshotError(
                f"snapshot {path} has no parseable header section",
                reason="payload",
            ) from exc
        if not isinstance(header, dict):
            raise SnapshotError(
                f"snapshot {path} header is not an object", reason="payload"
            )
        return header

    def load_into(
        self,
        index: GraphIndex,
        db: GraphDatabase,
        db_fingerprint: str | None = None,
    ) -> dict:
        """Fill a freshly constructed ``index`` from its snapshot.

        Verifies, in order: file framing and checksums, codec family,
        build parameters, and the database fingerprint.  On success the
        index answers queries exactly as a cold rebuild would; on *any*
        failure a :class:`SnapshotError` is raised and the index is left
        untouched.  Returns the snapshot header.
        """
        path = self.snapshot_path(index.name)
        sections = read_snapshot(path)
        header = self._parse_header(path, sections)
        codec = codec_for(index)
        if header.get("family") != codec.family:
            raise SnapshotError(
                f"snapshot {path} holds family {header.get('family')!r}, "
                f"index {index.name!r} needs {codec.family!r}",
                reason="family",
            )
        if header.get("params") != codec.params(index):
            raise SnapshotError(
                f"snapshot {path} was built with parameters "
                f"{header.get('params')!r}, index is configured with "
                f"{codec.params(index)!r}",
                reason="params",
            )
        expected = db_fingerprint or database_fingerprint(db)
        if header.get("db_fingerprint") != expected:
            raise SnapshotError(
                f"snapshot {path} was built against a different database "
                f"(fingerprint {header.get('db_fingerprint')!r} != {expected!r})",
                reason="db-fingerprint",
            )
        try:
            state = json.loads(sections["index"])
            codec.decode_state(index, state)
        except SnapshotError:
            raise
        except Exception as exc:
            raise SnapshotError(
                f"snapshot {path} payload cannot be decoded: "
                f"{type(exc).__name__}: {exc}",
                reason="payload",
            ) from exc
        return header

    def snapshot_header(self, index_name: str) -> dict:
        """Read and verify one snapshot's header without decoding state.

        Recovery needs the snapshot's ``wal_seq`` *before* it can decide
        which journaled mutations to replay into the database ahead of
        the fingerprint check; raises :class:`SnapshotError` exactly like
        :meth:`load_into` would for an unreadable snapshot.
        """
        path = self.snapshot_path(index_name)
        return self._parse_header(path, read_snapshot(path))

    # ------------------------------------------------------------------
    # The mutated database: snapshot + write-ahead log
    # ------------------------------------------------------------------

    def save_database(self, db: GraphDatabase, wal_seq: int) -> Path:
        """Snapshot the mutated database, folded through ``wal_seq``.

        Written by compaction *before* the journal is truncated: the
        snapshot commits atomically (temp + fsync + rename), so the
        folded records exist durably in either the journal or the
        snapshot at every instant.
        """
        if not self.wal.anchored:
            raise SnapshotError(
                "cannot snapshot the database before the mutation log is "
                "anchored (recover_mutations must run first)",
                reason="wal-base",
            )
        header = {
            "kind": "database",
            "base_fingerprint": self.wal.base,
            "wal_seq": wal_seq,
            "next_id": db.next_id,
            "num_graphs": len(db),
        }
        payload = {
            "graphs": [[gid, graph_to_record(g)] for gid, g in db.items()],
        }
        sections = {
            "header": json.dumps(header, sort_keys=True).encode("utf-8"),
            "database": json.dumps(payload).encode("utf-8"),
        }
        path = self.database_snapshot_path
        write_snapshot(path, sections)
        return path

    def load_database(self, db: GraphDatabase, base_fingerprint: str) -> int:
        """Restore ``db`` from the database snapshot; returns its fold seq.

        ``base_fingerprint`` must be the fingerprint of ``db`` as loaded
        from its file: a snapshot anchored to a different base would
        replace the operator's database with another one's mutated state,
        so it is rejected with reason ``db-fingerprint``.  Raises
        ``missing`` when there is no snapshot (the common, healthy case).
        """
        path = self.database_snapshot_path
        sections = read_snapshot(path)
        header = self._parse_header(path, sections)
        if header.get("kind") != "database":
            raise SnapshotError(
                f"snapshot {path} is not a database snapshot", reason="payload"
            )
        if header.get("base_fingerprint") != base_fingerprint:
            raise SnapshotError(
                f"database snapshot {path} is anchored to a different base "
                f"database (fingerprint {header.get('base_fingerprint')!r} "
                f"!= {base_fingerprint!r})",
                reason="db-fingerprint",
            )
        wal_seq = header.get("wal_seq")
        if not isinstance(wal_seq, int) or wal_seq < 0:
            raise SnapshotError(
                f"database snapshot {path} has an invalid wal_seq "
                f"{wal_seq!r}",
                reason="payload",
            )
        try:
            payload = json.loads(sections["database"])
            graphs = [
                (int(gid), graph_from_record(record))
                for gid, record in payload["graphs"]
            ]
            db.restore(graphs, int(header.get("next_id", 0)))
        except SnapshotError:
            raise
        except Exception as exc:
            raise SnapshotError(
                f"database snapshot {path} payload cannot be decoded: "
                f"{type(exc).__name__}: {exc}",
                reason="payload",
            ) from exc
        return wal_seq

    def _quarantine_dynamic_state(self) -> None:
        """Set the database snapshot and journal aside, preserved on disk.

        Used when the database snapshot exists but cannot be trusted:
        mutations folded by an earlier compaction may only exist inside
        it, so the journal tail alone cannot rebuild the mutated state —
        replaying it onto the base would produce a database that never
        existed.  The files are renamed, never deleted, so an operator
        can still inspect or hand-repair them.
        """
        for path in (self.database_snapshot_path, self.wal.path):
            try:
                os.replace(path, path.with_name(path.name + QUARANTINE_SUFFIX))
            except FileNotFoundError:
                pass
        fsync_dir(self.directory)

    def recover_mutations(self, db: GraphDatabase) -> MutationRecovery:
        """Restore the mutated database state around ``db`` (in place).

        Loads the database snapshot when one verifies, scans and repairs
        the journal, and returns the verified records *past* the fold
        point for the caller to replay.  ``db`` must hold the base
        database as loaded from its file; after this call it holds the
        snapshot state (when one was restored) and the caller applies the
        returned records on top.
        """
        base = database_fingerprint(db)
        recovery = MutationRecovery(base_fingerprint=base)
        try:
            recovery.folded_seq = self.load_database(db, base)
        except SnapshotError as exc:
            if exc.reason != "missing":
                self._quarantine_dynamic_state()
                self._wal = None  # drop any stale in-memory journal view
                self.wal.anchor(base)
                self._recovered = True
                return MutationRecovery(
                    base_fingerprint=base, reason=exc.reason, quarantined=True
                )
        scan = self.wal.recover(base)
        self.wal.ensure_floor(recovery.folded_seq)
        recovery.records = [
            r for r in scan.records if r.seq > recovery.folded_seq
        ]
        recovery.dropped = scan.dropped
        recovery.reason = scan.reason
        recovery.quarantined = scan.quarantined
        self._recovered = True
        return recovery

    def ensure_recovered(self, db: GraphDatabase) -> None:
        """Make ad-hoc journaling safe when recovery never ran.

        The engine normally recovers during ``build_index(store=...)``;
        a caller that journals straight away (mutations before any build)
        still must not append to an unscanned file, so recovery runs here
        and any surviving records are replayed into ``db`` database-side
        (no index exists to maintain yet on this path).
        """
        if self._recovered:
            return
        for record in self.recover_mutations(db).records:
            record.apply(db)

    def journal_add(
        self,
        db: GraphDatabase,
        graph,
        gid: int | None = None,
        request_key: str | None = None,
    ) -> int:
        """Durably journal the insertion ``db`` will apply next.

        Returns the graph id the insertion will receive — computed as
        ``db.next_id`` *after* the journal is ready, because lazy
        recovery may replay records that advance the id counter.  Pass
        an explicit ``gid`` to journal an insertion under a caller-chosen
        id (the shard rebalancer's two-phase move); ``request_key`` rides
        along in the record for dedup-window recovery.
        """
        self.ensure_recovered(db)
        if gid is None:
            gid = db.next_id
        elif gid in db:
            raise ValueError(f"graph id {gid} already exists")
        self.wal.append_add(gid, graph, request_key=request_key)
        return gid

    def journal_remove(
        self, db: GraphDatabase, gid: int, request_key: str | None = None
    ) -> int:
        """Durably journal a removal; returns its sequence number.

        Validates ``gid`` against ``db`` (after the journal is ready) so
        a removal of an unknown graph is rejected *before* anything is
        written — a journaled record must always describe a mutation
        that was really applied.
        """
        self.ensure_recovered(db)
        if gid not in db:
            raise KeyError(f"no graph with id {gid}")
        return self.wal.append_remove(gid, request_key=request_key)

    # ------------------------------------------------------------------
    # Shard label summary (advisory)
    # ------------------------------------------------------------------

    @property
    def summary_path(self) -> Path:
        return self.directory / SUMMARY_NAME

    def save_summary(self, data: dict, wal_seq: int) -> Path:
        """Persist a shard label summary beside the snapshots, atomically.

        ``wal_seq`` stamps the journal position the summary reflects, so
        the next process can tell whether the file is current.  The
        summary is *advisory*: routing always rebuilds it from the
        recovered database when the stamp does not match the journal
        (see :meth:`load_summary`), so a torn or stale file can never
        make a prune unsound.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.summary_path
        atomic_write_text(
            path,
            json.dumps(
                {"wal_seq": wal_seq, "summary": data},
                indent=2,
                sort_keys=True,
            ) + "\n",
        )
        return path

    def load_summary(self) -> tuple[dict, int] | None:
        """The persisted summary and its ``wal_seq`` stamp, or ``None``.

        Any unreadability — missing file, torn JSON, wrong shape — is
        treated as "no summary" (the caller rebuilds from the database),
        never an error: the file is a warm-start optimisation, not a
        source of truth.
        """
        try:
            payload = json.loads(self.summary_path.read_text())
            data = payload["summary"]
            wal_seq = payload["wal_seq"]
        except (OSError, ValueError, KeyError, TypeError):
            return None
        if not isinstance(data, dict) or not isinstance(wal_seq, int):
            return None
        return data, wal_seq

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------

    def verify_snapshot(self, path: str | Path, db: GraphDatabase | None = None) -> dict:
        """Structurally verify one snapshot file; returns its header.

        Checks framing, version, and checksums; with ``db`` given, also
        the database fingerprint.  Raises :class:`SnapshotError` on any
        problem — the same defences ``load_into`` applies, minus the
        parameter comparison (which needs a configured index).
        """
        path = Path(path)
        sections = read_snapshot(path)
        header = self._parse_header(path, sections)
        try:
            json.loads(sections["index"])
        except (KeyError, ValueError) as exc:
            raise SnapshotError(
                f"snapshot {path} has no parseable index section",
                reason="payload",
            ) from exc
        if db is not None:
            expected = database_fingerprint(db)
            if header.get("db_fingerprint") != expected:
                raise SnapshotError(
                    f"snapshot {path} was built against a different database "
                    f"(fingerprint {header.get('db_fingerprint')!r} != "
                    f"{expected!r})",
                    reason="db-fingerprint",
                )
        return header
