"""Crash-safe persistent storage for the IFV index families.

The paper's indices (Tables VII/IX) cost orders of magnitude more to
build than to query; this package makes them durable artifacts instead of
per-process throwaways.  :class:`IndexStore` saves any index family to a
versioned, checksummed snapshot with an atomic-rename write path, and
loads it back only after verifying framing, CRCs, format version, build
parameters, and the fingerprint of the database it was built against —
anything less falls back to a rebuild, never to a crash or a silently
wrong answer set.

Dynamic databases are durable too: :class:`~repro.store.wal.MutationLog`
journals every acknowledged ``add_graph``/``remove_graph`` ahead of the
in-memory mutation (write-ahead logging with per-record CRC32 framing),
warm starts replay the journal idempotently on top of the snapshots, and
compaction folds the journal into fresh snapshots so it never grows
without bound.  Torn or corrupt journal tails are detected and truncated;
a journal or database snapshot that cannot be trusted is quarantined
(renamed aside), never silently replayed.

Entry points::

    store = IndexStore("indices/")
    engine.build_index(store=store)      # load + replay journal, or rebuild
    engine.add_graph(g)                  # journaled durably before applying
    engine.compact_store()               # fold the journal into snapshots
    repro index build db.txt -a Grapes --store indices/
    repro query db.txt q.txt -a Grapes --index-store indices/
    repro serve db.txt -a Grapes --index-store indices/ --wal-compact 256
"""

from repro.store.manager import (
    DATABASE_SNAPSHOT_NAME,
    SNAPSHOT_SUFFIX,
    WAL_NAME,
    IndexStore,
    MutationRecovery,
)
from repro.store.snapshot import (
    FORMAT_VERSION,
    MAGIC,
    database_fingerprint,
    read_snapshot,
    write_snapshot,
)
from repro.store.wal import (
    QUARANTINE_SUFFIX,
    WAL_MAGIC,
    MutationLog,
    MutationRecord,
)
from repro.utils.errors import SnapshotError

__all__ = [
    "DATABASE_SNAPSHOT_NAME",
    "FORMAT_VERSION",
    "MAGIC",
    "QUARANTINE_SUFFIX",
    "SNAPSHOT_SUFFIX",
    "WAL_MAGIC",
    "WAL_NAME",
    "IndexStore",
    "MutationLog",
    "MutationRecord",
    "MutationRecovery",
    "SnapshotError",
    "database_fingerprint",
    "read_snapshot",
    "write_snapshot",
]
