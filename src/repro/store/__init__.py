"""Crash-safe persistent storage for the IFV index families.

The paper's indices (Tables VII/IX) cost orders of magnitude more to
build than to query; this package makes them durable artifacts instead of
per-process throwaways.  :class:`IndexStore` saves any index family to a
versioned, checksummed snapshot with an atomic-rename write path, and
loads it back only after verifying framing, CRCs, format version, build
parameters, and the fingerprint of the database it was built against —
anything less falls back to a rebuild, never to a crash or a silently
wrong answer set.

Entry points::

    store = IndexStore("indices/")
    engine.build_index(store=store)      # load-or-rebuild + save
    repro index build db.txt -a Grapes --store indices/
    repro query db.txt q.txt -a Grapes --index-store indices/
"""

from repro.store.manager import SNAPSHOT_SUFFIX, IndexStore
from repro.store.snapshot import (
    FORMAT_VERSION,
    MAGIC,
    database_fingerprint,
    read_snapshot,
    write_snapshot,
)
from repro.utils.errors import SnapshotError

__all__ = [
    "FORMAT_VERSION",
    "MAGIC",
    "SNAPSHOT_SUFFIX",
    "IndexStore",
    "SnapshotError",
    "database_fingerprint",
    "read_snapshot",
    "write_snapshot",
]
