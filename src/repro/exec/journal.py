"""Append-only JSONL journal for resumable benchmark runs.

The experiment matrices are hours of work at paper scale; a crash or kill
near the end used to lose everything held in ``lru_cache``.  A
:class:`RunJournal` makes each completed cell durable: every record is one
JSON line ``{"key": [...], "value": ...}`` appended and flushed as soon as
the cell finishes, so a rerun pointed at the same file replays finished
cells instead of recomputing them.

Keys are lists of JSON scalars (e.g. ``["report", "AIDS", "CFQL", "Q4S"]``)
and values must be JSON-serialisable.  A torn final line — the signature
of being killed mid-write — is ignored on load, and later records for the
same key win, so re-running after any interruption is safe.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.utils.fsio import append_line_durable

__all__ = ["RunJournal"]

#: Sentinel distinguishing "absent" from a journaled ``None`` value.
_MISSING = object()


class RunJournal:
    """Durable key → value store backed by one append-only JSONL file."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self._cells: dict[str, object] = {}
        self._load()

    @staticmethod
    def _key(parts: tuple) -> str:
        return json.dumps(list(parts))

    def _load(self) -> None:
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn write from a killed run
                self._cells[json.dumps(record["key"])] = record["value"]

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._cells)

    def has(self, *parts) -> bool:
        return self._key(parts) in self._cells

    def get(self, *parts, default=None):
        value = self._cells.get(self._key(parts), _MISSING)
        return default if value is _MISSING else value

    def put(self, parts: tuple, value) -> None:
        """Record a completed cell durably (single-write append + fsync).

        The whole line lands in one ``O_APPEND`` write so a SIGTERM/SIGINT
        handler firing mid-``put`` cannot leave a partial line (see
        :func:`repro.utils.fsio.append_line_durable`).
        """
        self._cells[self._key(parts)] = value
        self.path.parent.mkdir(parents=True, exist_ok=True)
        append_line_durable(
            self.path, json.dumps({"key": list(parts), "value": value})
        )
