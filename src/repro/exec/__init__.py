"""Fault-contained query execution.

This package is the hardened execution layer between the engine/benchmark
harness and the query pipelines:

* :mod:`repro.exec.base` — the :class:`QueryExecutor` protocol and the
  default cooperative :class:`InProcessExecutor`;
* :mod:`repro.exec.pool` — :class:`SubprocessExecutor`, which runs each
  query in a killable worker with hard wall-clock and memory limits;
* :mod:`repro.exec.parallel` — :class:`ParallelExecutor`, which fans
  query batches across a pool of such workers;
* :mod:`repro.exec.supervise` — :class:`SupervisedExecutor`, the
  service-grade pool with restart backoff and a restart-storm fuse;
* :mod:`repro.exec.journal` — the append-only JSONL journal that makes
  benchmark matrices resumable;
* :mod:`repro.exec.faults` — deterministic fault injection used by tests
  and benchmarks to provoke OOT/OOM/crash/error paths.
"""

from repro.exec import faults
from repro.exec.base import (
    EXECUTOR_NAMES,
    InProcessExecutor,
    QueryExecutor,
    classify_exception,
    create_executor,
    failure_result,
)
from repro.exec.journal import RunJournal
from repro.exec.parallel import ParallelExecutor
from repro.exec.pool import SubprocessExecutor
from repro.exec.supervise import SupervisedExecutor

__all__ = [
    "EXECUTOR_NAMES",
    "InProcessExecutor",
    "ParallelExecutor",
    "QueryExecutor",
    "RunJournal",
    "SubprocessExecutor",
    "SupervisedExecutor",
    "classify_exception",
    "create_executor",
    "failure_result",
    "faults",
]
