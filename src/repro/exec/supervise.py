"""Supervised worker pool: watchdog, restart backoff, storm fuse.

:class:`SupervisedExecutor` is the service's execution substrate.  It is
a :class:`~repro.exec.parallel.ParallelExecutor` whose respawn policy is
hardened for a *long-lived* process:

* **exponential restart backoff** — consecutive worker failures (crashes,
  hard-timeout kills, hung acks) delay the next respawn by
  ``respawn_backoff * 2**(n-1)`` seconds, capped at
  ``respawn_backoff_max``, so a poison workload cannot turn the pool
  into a fork bomb;
* **restart-storm fuse** — ``storm_threshold`` failures inside a sliding
  ``storm_window`` trip the fuse: respawns stop for ``storm_cooldown``
  seconds and pending queries fail fast as ``crash`` instead of queueing
  behind a pool that cannot hold workers.  The service's circuit breaker
  sees those crash results and opens, which is the intended escalation
  path: storm at the pool level, degraded mode at the service level;
* **self-healing** — one successful result resets the consecutive-failure
  counter and the backoff, so an isolated crash costs one backoff step,
  not a permanently slowed pool.

The base executor already contains the crash/hang *detection* (the event
loop classifies deaths, SIGKILLs hard-timeout and hung-ack workers); this
class only overrides the small bookkeeping and respawn hooks, so the two
executors cannot drift apart behaviourally.
"""

from __future__ import annotations

import time
from collections import deque
from typing import TYPE_CHECKING

from repro.exec.parallel import ParallelExecutor, _Worker

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.core.pipeline import QueryPipeline
    from repro.graph.database import GraphDatabase

__all__ = ["SupervisedExecutor"]


class SupervisedExecutor(ParallelExecutor):
    """A :class:`ParallelExecutor` with restart backoff and a storm fuse."""

    def __init__(
        self,
        *args,
        respawn_backoff: float = 0.05,
        respawn_backoff_max: float = 2.0,
        storm_threshold: int = 8,
        storm_window: float = 10.0,
        storm_cooldown: float = 5.0,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        if storm_threshold < 1:
            raise ValueError("storm_threshold must be at least 1")
        self.respawn_backoff = respawn_backoff
        self.respawn_backoff_max = respawn_backoff_max
        self.storm_threshold = storm_threshold
        self.storm_window = storm_window
        self.storm_cooldown = storm_cooldown
        #: Failures since the last successful result (drives backoff).
        self._consecutive_failures = 0
        #: perf_counter timestamps of recent failures (drives the fuse).
        self._failure_times: deque[float] = deque()
        #: Earliest perf_counter time the next respawn may happen.
        self._next_spawn_at = 0.0
        #: While now < this, the storm fuse is tripped: no respawns, and
        #: ``_fuse_blown`` fails pending work fast.
        self._storm_until = 0.0
        self.storm_trips = 0

    # ------------------------------------------------------------------
    # Supervision hooks
    # ------------------------------------------------------------------

    def _record_failure_reap(self, worker: _Worker, deliberate: bool) -> None:
        super()._record_failure_reap(worker, deliberate)
        now = time.perf_counter()
        self._consecutive_failures += 1
        backoff = min(
            self.respawn_backoff * 2 ** min(self._consecutive_failures - 1, 6),
            self.respawn_backoff_max,
        )
        self._next_spawn_at = max(self._next_spawn_at, now + backoff)
        self._failure_times.append(now)
        while self._failure_times and self._failure_times[0] < now - self.storm_window:
            self._failure_times.popleft()
        if len(self._failure_times) >= self.storm_threshold:
            self._storm_until = now + self.storm_cooldown
            self._failure_times.clear()
            self.storm_trips += 1

    def _note_result(self, worker, job, now: float) -> None:
        super()._note_result(worker, job, now)
        # A healthy answer proves the pool can hold workers again.
        self._consecutive_failures = 0
        self._next_spawn_at = 0.0

    def _fuse_blown(self) -> bool:
        # During a storm the pool refuses to respawn; once no workers are
        # left, pending queries must fail fast as crashes rather than wait
        # out the cooldown — the breaker upstairs handles the rest.
        return super()._fuse_blown() or time.perf_counter() < self._storm_until

    def _maintain_pool(
        self, pipeline: "QueryPipeline", db: "GraphDatabase", want: int
    ) -> None:
        now = time.perf_counter()
        if now < self._next_spawn_at:
            if not self._workers:
                # Nothing live and nothing spawnable yet: sleep a slice of
                # the backoff so the event loop does not busy-spin.
                time.sleep(min(self._next_spawn_at - now, 0.05))
            return
        if len(self._workers) < want:
            # One worker per pass: each spawn must survive long enough to
            # produce a result (resetting the backoff) before the pool
            # returns to full strength — the probe pattern.
            self._spawn_worker(pipeline, db)

    # ------------------------------------------------------------------
    # Liveness
    # ------------------------------------------------------------------

    def worker_stats(self) -> dict:
        now = time.perf_counter()
        stats = super().worker_stats()
        stats.update(
            supervised=True,
            consecutive_failures=self._consecutive_failures,
            storm_trips=self.storm_trips,
            storm_active=now < self._storm_until,
            next_spawn_backoff_s=max(0.0, self._next_spawn_at - now),
        )
        return stats
