"""Deterministic fault injection for tests and benchmarks.

Robustness claims are only testable if failures can be provoked on
demand.  This module keeps a process-global registry of
:class:`FaultSpec` entries; instrumented code calls :func:`trip` at named
sites (``query:start``, ``filter``, ``verify``, ``index.build``,
``worker:start``, ``worker.query``, ``serve.connection``,
``store.torn_write``, ``store.corrupt_snapshot``, ``wal.torn_append``,
``wal.corrupt_record``, ``wal.crash_before_ack``,
``wal.crash_after_ack``) and
every matching spec fires its effect — a delay, a
busy spin that never polls the :class:`~repro.utils.timing.Deadline`, an
allocation spike, a raised OOT/OOM/error, a dropped connection, or a
hard process crash.

The service chaos suite drives its fault matrix through two sites:
``worker.query`` fires inside a pool worker right before it executes a
query (``crash`` models a segfault mid-batch, ``spin`` a hang that never
polls the deadline, ``delay`` a slow response), and ``serve.connection``
fires in the server's per-connection loop as a request arrives (``drop``
models the transport dying mid-exchange).

The durable-mutation chaos suite adds four sites along the write-ahead
log path: ``wal.torn_append`` fires *between* the two halves of a
deliberately split record append (a ``crash`` there leaves a genuinely
torn final record — the appender checks :func:`armed` and only splits
the write when the site is hot); ``wal.corrupt_record`` fires right
after a record is durably appended, with the log path as tag (for the
``corrupt`` kind's bit flip); ``wal.crash_before_ack`` and
``wal.crash_after_ack`` fire in the service's mutation handler
immediately before and after the response is written, so a ``kill -9``
can land on either side of the acknowledgement boundary.

Cross-process semantics: the subprocess executor ships ``active_specs()``
to each worker it spawns, so faults installed in the parent fire inside
workers too.  A respawned worker would re-fire a "crash once" fault
(its decremented ``times`` counter died with the previous worker), so
one-shot faults across process boundaries use a ``latch`` file instead:
the first process to atomically create the file fires, everyone else
skips.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, replace

from repro.utils.errors import (
    InjectedFaultError,
    MemoryLimitExceeded,
    TimeLimitExceeded,
)

__all__ = [
    "CRASH_EXIT_CODE",
    "FAULT_KINDS",
    "FaultSpec",
    "active_specs",
    "armed",
    "clear",
    "inject",
    "install",
    "trip",
]

FAULT_KINDS = (
    "delay", "spin", "alloc", "oot", "oom", "error", "crash", "corrupt", "drop",
)

#: Exit status used by the ``crash`` kind so tests can recognise it.
CRASH_EXIT_CODE = 86


@dataclass
class FaultSpec:
    """One armed fault.

    ``site``
        Instrumentation point the fault is bound to.
    ``kind``
        One of :data:`FAULT_KINDS`:

        * ``delay`` — ``time.sleep(arg)`` seconds (cooperative: deadline
          polling around it still works);
        * ``spin`` — busy-loop for ``arg`` seconds *without* ever polling
          a deadline (models a hot loop that skips ``Deadline.check``);
        * ``alloc`` — allocate and hold ``arg`` MiB (trips a real RSS cap);
        * ``oot`` / ``oom`` — raise :class:`TimeLimitExceeded` /
          :class:`MemoryLimitExceeded`;
        * ``error`` — raise ``RuntimeError``;
        * ``crash`` — ``os._exit(86)``: the process dies without cleanup,
          modelling a segfault;
        * ``corrupt`` — flip one bit of the file named by the trip's
          context tag, at byte offset ``arg`` (clamped to the file size) —
          models silent on-disk corruption of a just-written artifact.
          The store trips ``store.corrupt_snapshot`` with the snapshot
          path as tag right after each save for exactly this hook;
        * ``drop`` — raise ``ConnectionResetError``: the transport died
          mid-exchange.  The server's connection loop turns it into a
          closed connection, which is what a retrying client must survive.
    ``arg``
        Seconds for delay/spin, MiB for alloc, byte offset for corrupt;
        ignored otherwise.
    ``match``
        Substring the trip's context tag must contain (e.g. a query name);
        empty matches every tag.
    ``times``
        Fire at most this many times in this process (-1 = unlimited).
    ``every``
        Fire only on every N-th matching trip (1 = every trip).  This is
        the chaos suite's deterministic rate control: ``every=10`` is a
        10 % fault rate with no RNG in the loop.  Each process counts its
        own trips (the counter resets when a spec is shipped to a fresh
        worker), so the aggregate rate holds without cross-process state.
    ``latch``
        Optional path to a latch file making the fault one-shot across
        *all* processes sharing it.
    """

    site: str
    kind: str
    arg: float = 0.0
    match: str = ""
    times: int = -1
    every: int = 1
    latch: str = ""

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if self.every < 1:
            raise ValueError(f"every must be at least 1, got {self.every!r}")
        self._seen = 0


_active: list[FaultSpec] = []
#: Keeps ``alloc`` spikes alive so the memory stays resident.
_ballast: list[bytearray] = []


def install(*specs: FaultSpec) -> None:
    """Arm the given faults (additive)."""
    _active.extend(specs)


def inject(site: str, kind: str, **kwargs) -> FaultSpec:
    """Convenience: build, arm, and return one :class:`FaultSpec`."""
    spec = FaultSpec(site=site, kind=kind, **kwargs)
    install(spec)
    return spec


def clear() -> None:
    """Disarm every fault and drop any held allocation ballast."""
    _active.clear()
    _ballast.clear()


def active_specs() -> list[FaultSpec]:
    """Copies of the armed faults, for shipping to worker processes."""
    return [replace(spec) for spec in _active]


def _acquire_latch(path: str) -> bool:
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


def _corrupt_file(path: str, offset: float) -> None:
    """Flip one bit at ``offset`` (clamped) in the file at ``path``."""
    if not path or not os.path.isfile(path):
        return
    size = os.path.getsize(path)
    if size == 0:
        return
    pos = min(int(offset), size - 1)
    with open(path, "r+b") as fh:
        fh.seek(pos)
        byte = fh.read(1)
        fh.seek(pos)
        fh.write(bytes([byte[0] ^ 0x01]))


def _fire(spec: FaultSpec, tag: str = "") -> None:
    if spec.kind == "delay":
        time.sleep(spec.arg)
    elif spec.kind == "spin":
        end = time.perf_counter() + spec.arg
        while time.perf_counter() < end:
            pass
    elif spec.kind == "alloc":
        _ballast.append(bytearray(int(spec.arg * 1024 * 1024)))
    elif spec.kind == "oot":
        raise TimeLimitExceeded(f"injected OOT at {spec.site!r}")
    elif spec.kind == "oom":
        raise MemoryLimitExceeded(f"injected OOM at {spec.site!r}")
    elif spec.kind == "error":
        raise InjectedFaultError(f"injected error at {spec.site!r}")
    elif spec.kind == "crash":
        os._exit(CRASH_EXIT_CODE)
    elif spec.kind == "corrupt":
        _corrupt_file(tag, spec.arg)
    elif spec.kind == "drop":
        raise ConnectionResetError(f"injected connection drop at {spec.site!r}")


def armed(site: str) -> bool:
    """True when at least one installed spec could still fire at ``site``.

    Lets instrumented code take a *preparatory* action that only makes
    sense when the site is hot — e.g. the mutation log splits a record
    append into two writes (so a ``crash`` fired between them leaves a
    real torn tail) only when ``wal.torn_append`` is armed, keeping the
    normal path a single atomic append.
    """
    return any(spec.site == site and spec.times != 0 for spec in _active)


def trip(site: str, tag: str = "") -> None:
    """Fire every armed fault bound to ``site`` whose filters match.

    A no-op (one list check) when nothing is armed, so instrumentation
    points are safe in hot-ish paths.
    """
    if not _active:
        return
    for spec in _active:
        if spec.site != site:
            continue
        if spec.match and spec.match not in tag:
            continue
        if spec.times == 0:
            continue
        spec._seen += 1
        if spec._seen % spec.every:
            continue
        if spec.latch and not _acquire_latch(spec.latch):
            continue
        if spec.times > 0:
            spec.times -= 1
        _fire(spec, tag)
