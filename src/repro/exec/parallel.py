"""Parallel query execution across a pool of persistent workers.

:class:`ParallelExecutor` generalises the single-worker
:class:`~repro.exec.pool.SubprocessExecutor` to ``jobs`` persistent
worker processes, sharing the same worker loop, hard-limit machinery and
failure taxonomy:

* the (pipeline, database) pair is serialized to each worker **once** per
  binding — on Linux the ``fork`` start method shares the parent's copy
  copy-on-write, so queries never re-pickle the data graphs;
* every query result lands at its input position, so a parallel run
  returns the exact sequence a serial run would (timings aside);
* containment is per worker: a query that blows its hard wall-clock
  budget gets its worker SIGKILLed and recorded as OOT while the other
  workers keep draining the queue — one pathological query never stalls
  the pool;
* a worker that dies *before acknowledging* a query (it never started the
  work) triggers a bounded, backed-off re-dispatch, exactly like the
  serial executor's transient-retry path; consecutive startup failures
  cap out at ``max_retries`` pool-wide and fail the remaining queries as
  crashes rather than spinning forever.

The pool is an event loop over :func:`multiprocessing.connection.wait`:
dispatch is eager (a query is written to a spawning worker's pipe before
the ``ready`` handshake arrives — the pipe buffers it), and all timeout
accounting (startup, ack, hard wall-clock) is driven from the loop.
"""

from __future__ import annotations

import multiprocessing
import time
from collections import deque
from multiprocessing.connection import wait as _conn_wait
from typing import TYPE_CHECKING

from repro.core.metrics import QueryFailure, QueryResult
from repro.exec import faults
from repro.exec.base import QueryExecutor, failure_result
from repro.exec.pool import _preferred_context, _worker_main

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.core.pipeline import QueryPipeline
    from repro.graph.database import GraphDatabase
    from repro.graph.labeled_graph import Graph
    from repro.matching.plan import QueryPlan

__all__ = ["ParallelExecutor"]


class _Job:
    """One query dispatched to one worker."""

    __slots__ = ("index", "retries", "sent_at", "acked_at")

    def __init__(self, index: int, retries: int, sent_at: float) -> None:
        self.index = index
        self.retries = retries
        self.sent_at = sent_at
        self.acked_at: float | None = None


class _Worker:
    """A persistent worker process and its dispatch state."""

    __slots__ = (
        "proc", "conn", "ready", "ready_at", "spawned_at", "job", "exitcode",
        "pid", "queries", "last_latency",
    )

    def __init__(self, proc, conn, spawned_at: float) -> None:
        self.proc = proc
        self.conn = conn
        self.ready = False
        self.ready_at: float | None = None
        self.spawned_at = spawned_at
        self.job: _Job | None = None
        self.exitcode: int | None = None
        #: Liveness bookkeeping surfaced by ``worker_stats`` (the pid
        #: outlives ``proc``, which is dropped on scrap).
        self.pid: int | None = proc.pid
        self.queries = 0
        self.last_latency: float | None = None

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.is_alive()

    def scrap(self, kill: bool = False) -> None:
        proc, conn = self.proc, self.conn
        self.proc = self.conn = None
        if proc is not None:
            self.exitcode = proc.exitcode
            if kill and proc.is_alive():
                proc.kill()
            proc.join(timeout=5.0)
            self.exitcode = proc.exitcode
            if hasattr(proc, "close"):
                proc.close()
        if conn is not None:
            conn.close()


class ParallelExecutor(QueryExecutor):
    """Fans query batches across ``jobs`` persistent worker processes.

    ``run`` degenerates to a batch of one; use
    :class:`~repro.exec.pool.SubprocessExecutor` when single-query latency
    matters more than batch throughput.
    """

    def __init__(
        self,
        jobs: int = 4,
        memory_limit_mb: int | None = None,
        hard_timeout_factor: float = 1.5,
        hard_timeout_grace: float = 0.25,
        max_retries: int = 2,
        retry_backoff: float = 0.05,
        startup_timeout: float = 60.0,
        ack_timeout: float = 30.0,
        start_method: str | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        self.jobs = jobs
        self.memory_limit_mb = memory_limit_mb
        self.hard_timeout_factor = hard_timeout_factor
        self.hard_timeout_grace = hard_timeout_grace
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.startup_timeout = startup_timeout
        self.ack_timeout = ack_timeout
        self._ctx = (
            multiprocessing.get_context(start_method)
            if start_method
            else _preferred_context()
        )
        self._workers: list[_Worker] = []
        #: Identity of the (pipeline, db) the live pool was built from.
        self._bound: tuple[object, object] | None = None
        #: Consecutive worker deaths before ``ready`` — a pool-wide fuse.
        self._spawn_failures = 0
        self._last_exit: int | None = None
        #: Lifetime supervision counters (never reset by rebinds), the
        #: raw material for the service's per-worker liveness stats.
        self.spawn_total = 0
        self.worker_deaths = 0  # died on their own (crash, OOM-killer, ...)
        self.worker_kills = 0  # deliberately SIGKILLed (hard/ack timeout)

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------

    def _spawn_worker(self, pipeline: "QueryPipeline", db: "GraphDatabase") -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        limit_bytes = (
            self.memory_limit_mb * 1024 * 1024 if self.memory_limit_mb else None
        )
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, pipeline, db, limit_bytes, faults.active_specs()),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        worker = _Worker(proc, parent_conn, time.perf_counter())
        self._workers.append(worker)
        self.spawn_total += 1
        return worker

    def _reap(self, worker: _Worker, kill: bool) -> None:
        worker.scrap(kill=kill)
        if worker.exitcode is not None:
            self._last_exit = worker.exitcode
        if worker in self._workers:
            self._workers.remove(worker)

    def _record_failure_reap(self, worker: _Worker, deliberate: bool) -> None:
        """Bookkeeping for a worker lost to a failure, called right before
        the failing worker is reaped.  ``deliberate`` distinguishes a
        containment SIGKILL (hard/ack timeout) from a death of the
        worker's own doing.  :class:`~repro.exec.supervise.
        SupervisedExecutor` hooks this for backoff and storm accounting.
        """
        if deliberate:
            self.worker_kills += 1
        else:
            self.worker_deaths += 1

    def _note_result(self, worker: _Worker, job: _Job, now: float) -> None:
        """Bookkeeping for one completed query (the healthy path)."""
        worker.queries += 1
        worker.last_latency = now - (job.acked_at or job.sent_at)

    def _fuse_blown(self) -> bool:
        """Whether the pool must stop respawning and fail pending work."""
        return self._spawn_failures > self.max_retries

    def _maintain_pool(self, pipeline: "QueryPipeline", db: "GraphDatabase",
                       want: int) -> None:
        """Bring the pool back to strength (subclasses add backoff here)."""
        while len(self._workers) < want:
            self._spawn_worker(pipeline, db)

    def _scrap_all(self) -> None:
        for w in list(self._workers):
            self._reap(w, kill=True)
        self._bound = None

    def _rebind(self, pipeline: "QueryPipeline", db: "GraphDatabase") -> None:
        if self._bound is not None and (
            self._bound[0] is pipeline and self._bound[1] is db
        ):
            # Keep live, idle workers from the previous batch.
            for w in list(self._workers):
                if not (w.alive and w.job is None):
                    if not w.alive:
                        # Died idle between batches; the watchdog counts it
                        # like any other unexpected death.
                        self._record_failure_reap(w, deliberate=False)
                    self._reap(w, kill=True)
        else:
            self._scrap_all()
        self._bound = (pipeline, db)
        self._spawn_failures = 0

    # ------------------------------------------------------------------
    # Liveness
    # ------------------------------------------------------------------

    def worker_stats(self) -> dict:
        """Supervision snapshot: lifetime counters plus per-worker rows.

        ``restarts`` counts every worker lost to a failure over the
        executor's lifetime — each one forced a respawn to keep the pool
        at strength.  Safe to call between batches from any thread that
        owns the executor (the service calls it from its stats path).
        """
        now = time.perf_counter()
        return {
            "executor": type(self).__name__,
            "jobs": self.jobs,
            "spawns": self.spawn_total,
            "deaths": self.worker_deaths,
            "kills": self.worker_kills,
            "restarts": self.worker_deaths + self.worker_kills,
            "last_exit_code": self._last_exit,
            "live": [
                {
                    "pid": w.pid,
                    "alive": w.alive,
                    "ready": w.ready,
                    "age_s": now - w.spawned_at,
                    "queries": w.queries,
                    "last_batch_latency_s": w.last_latency,
                }
                for w in self._workers
            ],
        }

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def run(
        self,
        pipeline: "QueryPipeline",
        query: "Graph",
        db: "GraphDatabase",
        time_limit: float | None = None,
        plan: "QueryPlan | None" = None,
    ) -> QueryResult:
        return self.run_many(pipeline, [query], db, time_limit, plans=[plan])[0]

    def run_many(
        self,
        pipeline: "QueryPipeline",
        queries: list["Graph"],
        db: "GraphDatabase",
        time_limit: float | None = None,
        plans: "list[QueryPlan | None] | None" = None,
    ) -> list[QueryResult]:
        if not queries:
            return []
        # Plans are serialized with their query: each dispatch carries the
        # engine-compiled plan so workers never recompile per attempt.
        if plans is None:
            plans = [None] * len(queries)
        self._rebind(pipeline, db)
        results: list[QueryResult | None] = [None] * len(queries)
        #: (query index, retries so far, earliest re-dispatch time)
        pending: deque[tuple[int, int, float]] = deque(
            (i, 0, 0.0) for i in range(len(queries))
        )
        outstanding = len(queries)
        hard = (
            None
            if time_limit is None
            else time_limit * self.hard_timeout_factor + self.hard_timeout_grace
        )

        def fail(index, retries, kind, message, query_time=0.0):
            nonlocal outstanding
            failure = QueryFailure(kind=kind, message=message, retries=retries)
            results[index] = failure_result(
                pipeline.name, queries[index].name, failure, query_time=query_time
            )
            outstanding -= 1

        def finish(job: _Job, result: QueryResult) -> None:
            nonlocal outstanding
            if result.failure is not None:
                result.failure.retries = job.retries
            results[job.index] = result
            outstanding -= 1

        def requeue(job: _Job) -> None:
            """Transient worker death: back off and re-dispatch, bounded."""
            if job.retries < self.max_retries:
                not_before = time.perf_counter() + self.retry_backoff * (
                    2**job.retries
                )
                pending.append((job.index, job.retries + 1, not_before))
            else:
                fail(
                    job.index,
                    job.retries,
                    "crash",
                    "worker died before starting the query "
                    f"(exit code {self._last_exit})",
                )

        def next_pending(now: float):
            """Earliest queued query whose backoff has elapsed, if any."""
            for _ in range(len(pending)):
                item = pending.popleft()
                if item[2] <= now:
                    return item
                pending.append(item)
            return None

        def handle_message(worker: _Worker, msg, now: float) -> None:
            kind = msg[0]
            if kind == "ready":
                worker.ready = True
                worker.ready_at = now
                self._spawn_failures = 0
            elif kind == "ack":
                if worker.job is not None:
                    worker.job.acked_at = now
            elif kind == "result":
                job, worker.job = worker.job, None
                if job is not None:
                    self._note_result(worker, job, now)
                    finish(job, msg[1])

        def on_death(worker: _Worker, now: float) -> None:
            """Classify a dead worker per the serial executor's rules."""
            # Drain messages written before death (e.g. a result sent just
            # as the process exited).
            try:
                while worker.conn is not None and worker.conn.poll(0):
                    handle_message(worker, worker.conn.recv(), now)
            except (EOFError, OSError):
                pass
            job, worker.job = worker.job, None
            if not worker.ready:
                self._spawn_failures += 1
            self._record_failure_reap(worker, deliberate=False)
            self._reap(worker, kill=False)
            if job is None:
                return
            if job.acked_at is not None:
                fail(
                    job.index,
                    job.retries,
                    "crash",
                    f"worker died mid-query (exit code {self._last_exit})",
                    query_time=now - job.acked_at,
                )
            else:
                requeue(job)

        def check_timeouts(worker: _Worker, now: float) -> None:
            job = worker.job
            if job is not None and job.acked_at is not None:
                if hard is not None and now - job.acked_at >= hard:
                    worker.job = None
                    self._record_failure_reap(worker, deliberate=True)
                    self._reap(worker, kill=True)
                    elapsed = now - job.sent_at
                    fail(
                        job.index,
                        job.retries,
                        "oot",
                        f"hard timeout: worker SIGKILLed after {elapsed:.2f}s "
                        f"(limit {time_limit}s)",
                        query_time=time_limit,
                    )
                return
            if not worker.ready:
                if now - worker.spawned_at >= self.startup_timeout:
                    self._spawn_failures += 1
                    worker.job = None
                    self._record_failure_reap(worker, deliberate=False)
                    self._reap(worker, kill=True)
                    if job is not None:
                        requeue(job)
                return
            if job is not None:
                # The ack clock starts when the worker can first see the
                # request: the later of send time and the ready handshake.
                since = max(job.sent_at, worker.ready_at or job.sent_at)
                if now - since >= self.ack_timeout:
                    worker.job = None
                    self._record_failure_reap(worker, deliberate=True)
                    self._reap(worker, kill=True)
                    requeue(job)

        while outstanding > 0:
            now = time.perf_counter()

            # Keep the pool at strength while there is queued work.  The
            # fuse and the respawn policy are both overridable hooks: the
            # supervised executor adds backoff, a restart-storm fuse, and
            # an idle sleep so a storming pool never busy-spins here.
            fuse_blown = self._fuse_blown()
            want = min(self.jobs, outstanding)
            if not fuse_blown:
                self._maintain_pool(pipeline, db, want)

            # Eager dispatch: one job per idle worker; the pipe buffers the
            # request even before the worker's ready handshake arrives.
            for w in self._workers:
                if w.job is not None:
                    continue
                item = next_pending(now)
                if item is None:
                    break
                index, retries, _ = item
                try:
                    w.conn.send(("query", queries[index], time_limit, plans[index]))
                    w.job = _Job(index, retries, now)
                except (BrokenPipeError, OSError):
                    if not w.ready:
                        self._spawn_failures += 1
                    self._record_failure_reap(w, deliberate=False)
                    self._reap(w, kill=True)
                    pending.appendleft((index, retries, now))
                    break

            if not self._workers:
                if fuse_blown:
                    # Nothing in flight, nothing spawnable: fail the rest.
                    while pending:
                        index, retries, _ = pending.popleft()
                        fail(
                            index,
                            retries,
                            "crash",
                            "worker pool could not start "
                            f"(exit code {self._last_exit})",
                        )
                continue

            readable = set(_conn_wait([w.conn for w in self._workers], timeout=0.05))
            now = time.perf_counter()
            for w in list(self._workers):
                if w.conn in readable:
                    try:
                        msg = w.conn.recv()
                    except (EOFError, OSError):
                        on_death(w, now)
                        continue
                    handle_message(w, msg, now)
                elif not w.alive:
                    on_death(w, now)
                else:
                    check_timeouts(w, now)

        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def invalidate(self) -> None:
        """Drop all workers; the next batch sees fresh (pipeline, db) state."""
        self._scrap_all()

    def close(self) -> None:
        for w in self._workers:
            if w.conn is not None:
                try:
                    w.conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
        # Grace period: let workers read the stop message and exit on
        # their own (exit code 0) before the scrap falls back to kill.
        deadline = time.perf_counter() + 5.0
        for w in self._workers:
            if w.proc is not None:
                w.proc.join(timeout=max(0.0, deadline - time.perf_counter()))
        self._scrap_all()
