"""Executor protocol and the in-process reference implementation.

A :class:`QueryExecutor` is the seam between "what to compute" (a
:class:`~repro.core.pipeline.QueryPipeline` plus a query) and "how to
survive computing it".  The engine routes every query through one, so the
containment policy — cooperative in-process for tests and small runs,
process-isolated with hard limits for benchmarks and services — is a
configuration choice, not a code path.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

from repro.core.metrics import QueryFailure, QueryResult
from repro.utils.errors import ConfigurationError, MemoryLimitExceeded, TimeLimitExceeded
from repro.utils.timing import Deadline

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.core.pipeline import QueryPipeline
    from repro.graph.database import GraphDatabase
    from repro.graph.labeled_graph import Graph
    from repro.matching.plan import QueryPlan

__all__ = [
    "EXECUTOR_NAMES",
    "InProcessExecutor",
    "QueryExecutor",
    "classify_exception",
    "create_executor",
    "failure_result",
]


def classify_exception(exc: BaseException) -> QueryFailure:
    """Map an exception escaping query execution onto a failure record."""
    if isinstance(exc, TimeLimitExceeded):
        return QueryFailure(kind="oot", message=str(exc) or "deadline expired")
    if isinstance(exc, (MemoryLimitExceeded, MemoryError)):
        return QueryFailure(kind="oom", message=str(exc) or "memory limit exceeded")
    return QueryFailure(kind="error", message=f"{type(exc).__name__}: {exc}")


def failure_result(
    algorithm: str,
    query_name: str | None,
    failure: QueryFailure,
    query_time: float = 0.0,
) -> QueryResult:
    """A result shell recording a failure the pipeline never got to flag."""
    return QueryResult(
        algorithm=algorithm,
        query_name=query_name,
        failure=failure,
        timed_out=failure.kind == "oot",
        query_time=query_time,
    )


class QueryExecutor(ABC):
    """Runs one pipeline invocation under a containment policy.

    Implementations never raise for per-query problems: every outcome,
    including crashes and budget violations, comes back as a
    :class:`~repro.core.metrics.QueryResult` (possibly carrying a
    :class:`~repro.core.metrics.QueryFailure`).
    """

    @abstractmethod
    def run(
        self,
        pipeline: "QueryPipeline",
        query: "Graph",
        db: "GraphDatabase",
        time_limit: float | None = None,
        plan: "QueryPlan | None" = None,
    ) -> QueryResult:
        """Execute ``query`` through ``pipeline`` against ``db``.

        ``plan`` is the query's compiled plan, if the caller (the engine)
        already has one; executors ship it alongside the query — pool
        workers receive it with the message rather than recompiling.
        """

    def run_many(
        self,
        pipeline: "QueryPipeline",
        queries: list["Graph"],
        db: "GraphDatabase",
        time_limit: float | None = None,
        plans: "list[QueryPlan | None] | None" = None,
    ) -> list[QueryResult]:
        """Execute a batch of queries; results in input order.

        The default runs them one by one; pool executors override this to
        fan the batch across workers while preserving the ordering.
        ``plans``, when given, is parallel to ``queries``.
        """
        if plans is None:
            plans = [None] * len(queries)
        return [
            self.run(pipeline, q, db, time_limit, plan=p)
            for q, p in zip(queries, plans)
        ]

    def invalidate(self) -> None:
        """Forget any worker state bound to a (pipeline, db) pair.

        Called by the engine after database mutations; in-process
        execution holds no such state.
        """

    def worker_stats(self) -> dict | None:
        """Supervision snapshot (spawns, restarts, per-worker liveness).

        ``None`` for executors with no worker processes; pool executors
        override this.  The service surfaces it through its ``stats``
        verb so operators can see a wedged or storming pool.
        """
        return None

    def close(self) -> None:
        """Release workers and other resources (idempotent)."""

    def __enter__(self) -> "QueryExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class InProcessExecutor(QueryExecutor):
    """Cooperative execution in the calling process (the default).

    Containment is exception-level only: deadline expiry, memory-budget
    violations and unexpected exceptions become failure records, but a
    non-cooperative loop or real memory exhaustion is *not* stopped —
    that is what :class:`~repro.exec.pool.SubprocessExecutor` is for.
    """

    def run(
        self,
        pipeline: "QueryPipeline",
        query: "Graph",
        db: "GraphDatabase",
        time_limit: float | None = None,
        plan: "QueryPlan | None" = None,
    ) -> QueryResult:
        try:
            return pipeline.execute(query, db, deadline=Deadline(time_limit), plan=plan)
        except Exception as exc:  # escaped the pipeline's own containment
            return failure_result(pipeline.name, query.name, classify_exception(exc))


EXECUTOR_NAMES = ("inprocess", "subprocess", "parallel", "supervised")


def create_executor(name: str = "inprocess", **kwargs) -> QueryExecutor:
    """Instantiate an executor by configuration name.

    ``kwargs`` reach the executor constructor (e.g.
    ``memory_limit_mb=512`` for the subprocess pool, ``jobs=4`` for the
    parallel pool).
    """
    if name == "inprocess":
        return InProcessExecutor()
    if name == "subprocess":
        from repro.exec.pool import SubprocessExecutor

        return SubprocessExecutor(**kwargs)
    if name == "parallel":
        from repro.exec.parallel import ParallelExecutor

        return ParallelExecutor(**kwargs)
    if name == "supervised":
        from repro.exec.supervise import SupervisedExecutor

        return SupervisedExecutor(**kwargs)
    raise ConfigurationError(
        f"unknown executor {name!r}; expected one of {EXECUTOR_NAMES}"
    )
