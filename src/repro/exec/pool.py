"""Process-isolated query execution with hard limits.

The cooperative :class:`~repro.utils.timing.Deadline` only stops code that
polls it, and Python cannot pre-empt a hot loop in the same process.  The
:class:`SubprocessExecutor` therefore runs each query in a dedicated
worker process:

* **hard wall-clock timeout** — the parent waits at most
  ``time_limit * hard_timeout_factor + hard_timeout_grace`` seconds for a
  result, then SIGKILLs the worker and records the query as OOT;
* **memory cap** — workers apply ``resource.setrlimit(RLIMIT_AS)`` at
  startup, so a runaway allocation raises ``MemoryError`` inside the
  worker (recorded as OOM) instead of taking down the run;
* **crash containment** — a worker that dies (segfault-equivalent,
  injected ``os._exit``, OOM-killer) yields a ``crash`` failure for that
  one query; the executor respawns a worker and the run continues;
* **bounded retry** — a worker that dies *before acknowledging* a query
  (it never started the work) is treated as transient: the query is
  re-dispatched with exponential backoff up to ``max_retries`` times.

One worker is kept alive and bound to a (pipeline, database) pair, so a
query set amortises the spawn cost; on Linux the ``fork`` start method
additionally shares the already-built index copy-on-write.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import TYPE_CHECKING

from repro.core.metrics import QueryFailure, QueryResult
from repro.exec import faults
from repro.exec.base import QueryExecutor, classify_exception, failure_result
from repro.utils.timing import Deadline

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.core.pipeline import QueryPipeline
    from repro.graph.database import GraphDatabase
    from repro.graph.labeled_graph import Graph
    from repro.matching.plan import QueryPlan

__all__ = ["SubprocessExecutor"]

_TRANSIENT = object()
_DEAD = object()
_TIMEOUT = object()


def _preferred_context() -> multiprocessing.context.BaseContext:
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _apply_memory_limit(limit_bytes: int) -> None:
    """Cap the worker's address space; best effort on exotic platforms."""
    try:
        import resource

        resource.setrlimit(resource.RLIMIT_AS, (limit_bytes, limit_bytes))
    except (ImportError, ValueError, OSError):
        pass


def _shed_memory() -> None:
    """Free what we can after a MemoryError so reporting it can succeed."""
    import gc

    faults._ballast.clear()
    gc.collect()


def _worker_main(conn, pipeline, db, memory_limit_bytes, fault_specs) -> None:
    faults.clear()
    faults.install(*fault_specs)
    if memory_limit_bytes:
        _apply_memory_limit(memory_limit_bytes)
    try:
        faults.trip("worker:start", tag=pipeline.name)
        conn.send(("ready", None))
    except BaseException:
        os._exit(1)
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if msg[0] == "stop":
            break
        # The compiled plan travels with the query: workers never
        # recompile what the engine's plan cache already produced.
        _, query, time_limit, plan = msg
        try:
            conn.send(("ack", None))
        except (BrokenPipeError, OSError):
            break
        try:
            # Chaos hook: a fault here models the worker failing while it
            # owns a dispatched query — crash mid-batch, hang, slow reply.
            faults.trip("worker.query", tag=query.name or "")
            result = pipeline.execute(
                query, db, deadline=Deadline(time_limit), plan=plan
            )
        except MemoryError:
            _shed_memory()
            result = failure_result(
                pipeline.name,
                query.name,
                QueryFailure(kind="oom", message="MemoryError under worker RSS cap"),
            )
        except Exception as exc:
            result = failure_result(pipeline.name, query.name, classify_exception(exc))
        # Which process answered: consumed by the service's per-request
        # metrics; harmless provenance everywhere else.
        result.metadata["worker_pid"] = os.getpid()
        try:
            conn.send(("result", result))
        except (BrokenPipeError, OSError):
            break
    conn.close()


class SubprocessExecutor(QueryExecutor):
    """Runs each query in a killable worker subprocess (see module docs)."""

    def __init__(
        self,
        memory_limit_mb: int | None = None,
        hard_timeout_factor: float = 1.5,
        hard_timeout_grace: float = 0.25,
        max_retries: int = 2,
        retry_backoff: float = 0.05,
        startup_timeout: float = 60.0,
        ack_timeout: float = 30.0,
        start_method: str | None = None,
    ) -> None:
        self.memory_limit_mb = memory_limit_mb
        self.hard_timeout_factor = hard_timeout_factor
        self.hard_timeout_grace = hard_timeout_grace
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.startup_timeout = startup_timeout
        self.ack_timeout = ack_timeout
        self._ctx = (
            multiprocessing.get_context(start_method)
            if start_method
            else _preferred_context()
        )
        self._proc: multiprocessing.process.BaseProcess | None = None
        self._conn = None
        #: Strong refs to the (pipeline, db) the live worker was built
        #: from, compared by identity so a stale worker is never reused.
        self._bound: tuple[object, object] | None = None
        self._last_exitcode: int | None = None

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------

    def _spawn(self, pipeline: "QueryPipeline", db: "GraphDatabase") -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        limit_bytes = (
            self.memory_limit_mb * 1024 * 1024 if self.memory_limit_mb else None
        )
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, pipeline, db, limit_bytes, faults.active_specs()),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        self._proc, self._conn = proc, parent_conn
        self._bound = (pipeline, db)

    def _scrap_worker(self, kill: bool = False) -> None:
        proc, conn = self._proc, self._conn
        self._proc = self._conn = self._bound = None
        if proc is not None:
            self._last_exitcode = proc.exitcode
            if kill and proc.is_alive():
                proc.kill()
            proc.join(timeout=5.0)
            self._last_exitcode = proc.exitcode
            if hasattr(proc, "close"):
                proc.close()
        if conn is not None:
            conn.close()

    def _ensure_worker(self, pipeline: "QueryPipeline", db: "GraphDatabase") -> bool:
        """Bind a live worker to (pipeline, db); False on startup failure."""
        if (
            self._proc is not None
            and self._proc.is_alive()
            and self._bound is not None
            and self._bound[0] is pipeline
            and self._bound[1] is db
        ):
            return True
        self._scrap_worker(kill=True)
        self._spawn(pipeline, db)
        msg = self._recv(self.startup_timeout)
        if msg is _DEAD or msg is _TIMEOUT or msg[0] != "ready":
            self._scrap_worker(kill=True)
            return False
        return True

    def _recv(self, timeout: float | None):
        """One message, or ``_DEAD`` / ``_TIMEOUT``; polls in 50ms steps."""
        deadline = None if timeout is None else time.perf_counter() + timeout
        while True:
            try:
                if self._conn.poll(0.05):
                    return self._conn.recv()
            except (EOFError, OSError):
                return _DEAD
            if self._proc is None or not self._proc.is_alive():
                # Drain anything written before death (e.g. a result sent
                # just as the process exited).
                try:
                    if self._conn.poll(0):
                        return self._conn.recv()
                except (EOFError, OSError):
                    pass
                return _DEAD
            if deadline is not None and time.perf_counter() >= deadline:
                return _TIMEOUT

    # ------------------------------------------------------------------
    # Query dispatch
    # ------------------------------------------------------------------

    def run(
        self,
        pipeline: "QueryPipeline",
        query: "Graph",
        db: "GraphDatabase",
        time_limit: float | None = None,
        plan: "QueryPlan | None" = None,
    ) -> QueryResult:
        retries = 0
        while True:
            outcome = self._attempt(pipeline, query, db, time_limit, plan)
            if outcome is _TRANSIENT:
                if retries < self.max_retries:
                    retries += 1
                    time.sleep(self.retry_backoff * (2 ** (retries - 1)))
                    continue
                failure = QueryFailure(
                    kind="crash",
                    message=(
                        "worker died before starting the query "
                        f"(exit code {self._last_exitcode})"
                    ),
                    retries=retries,
                )
                return failure_result(pipeline.name, query.name, failure)
            if outcome.failure is not None:
                outcome.failure.retries = retries
            return outcome

    def _attempt(self, pipeline, query, db, time_limit, plan=None):
        """One dispatch; a QueryResult, or ``_TRANSIENT`` when the worker
        died without ever acknowledging the query."""
        if not self._ensure_worker(pipeline, db):
            return _TRANSIENT
        started = time.perf_counter()
        try:
            self._conn.send(("query", query, time_limit, plan))
        except (BrokenPipeError, OSError):
            self._scrap_worker(kill=True)
            return _TRANSIENT
        ack = self._recv(self.ack_timeout)
        if ack is _DEAD or ack is _TIMEOUT:
            self._scrap_worker(kill=True)
            return _TRANSIENT
        hard = (
            None
            if time_limit is None
            else time_limit * self.hard_timeout_factor + self.hard_timeout_grace
        )
        msg = self._recv(hard)
        elapsed = time.perf_counter() - started
        if msg is _TIMEOUT:
            self._scrap_worker(kill=True)
            failure = QueryFailure(
                kind="oot",
                message=(
                    f"hard timeout: worker SIGKILLed after {elapsed:.2f}s "
                    f"(limit {time_limit}s)"
                ),
            )
            return failure_result(
                pipeline.name, query.name, failure, query_time=time_limit
            )
        if msg is _DEAD:
            self._scrap_worker()
            failure = QueryFailure(
                kind="crash",
                message=f"worker died mid-query (exit code {self._last_exitcode})",
            )
            return failure_result(
                pipeline.name, query.name, failure, query_time=elapsed
            )
        return msg[1]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def invalidate(self) -> None:
        """Drop the worker; the next query sees fresh (pipeline, db) state."""
        self._scrap_worker(kill=True)

    def close(self) -> None:
        if self._conn is not None:
            try:
                self._conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        self._scrap_worker(kill=True)
