"""One function per paper artifact: each returns ready-to-print Tables.

The mapping to the paper's Section IV (see DESIGN.md's per-experiment
index):

========  ====================================  =========================
Function  Paper artifact                        Shape
========  ====================================  =========================
table4    Table IV — dataset statistics         stats × datasets (ours/paper)
table5    Table V — query set statistics        per dataset: stats × sets
table6    Table VI — real-world indexing time   indices × datasets
fig2      Figure 2 — filtering precision        per dataset: algos × sets
fig3      Figure 3 — filtering time             per dataset: algos × sets
fig4      Figure 4 — verification time          per dataset: algos × sets
fig5      Figure 5 — per-SI-test time           per dataset: algos × sets
fig6      Figure 6 — candidate graph counts     per dataset: algos × sets
fig7      Figure 7 — query time                 per dataset: algos × sets
table7    Table VII — real-world memory cost    structures × datasets
table8    Table VIII — synthetic indexing time  per axis: indices × values
fig8      Figure 8 — synthetic precision        per axis: algos × values
fig9      Figure 9 — synthetic filtering time   per axis: algos × values
table9    Table IX — synthetic memory cost      per axis: structures × values
========  ====================================  =========================

Cells use the paper's markers: ``OOT`` (time limit), ``OOM`` (memory
budget), ``N/A`` (algorithm unavailable or metric undefined), ``omitted``
(more than 40% of the query set failed — the paper's omission rule).  A
trailing ``*`` flags a value measured on a *degraded* engine: the index
build failed and the engine fell back to its vcFV pipeline (enabled by
``BenchConfig.index_fallback``), so the number is not comparable to an
indexed run.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.bench.harness import (
    BenchConfig,
    IFV_ALGORITHMS,
    REAL_WORLD_ALGORITHMS,
    REAL_WORLD_DATASETS,
    SYNTHETIC_ALGORITHMS,
    get_query_sets,
    get_real_dataset,
    real_world_matrix,
    synthetic_matrix,
)
from repro.bench.reporting import Table, format_cell
from repro.core.metrics import QuerySetReport
from repro.workloads.datasets import REAL_WORLD_SPECS
from repro.workloads.querysets import query_set_statistics

__all__ = [
    "fig2_filtering_precision",
    "fig3_filtering_time",
    "fig4_verification_time",
    "fig5_per_si_test_time",
    "fig6_candidate_counts",
    "fig7_query_time",
    "real_world_metric_tables",
    "synthetic_metric_tables",
    "table4_dataset_stats",
    "table5_queryset_stats",
    "table6_indexing_time",
    "table7_memory_cost",
    "table8_synthetic_indexing_time",
    "table9_synthetic_memory_cost",
]

_MB = 1024.0 * 1024.0


def _metric_cell(
    report: QuerySetReport, metric: Callable[[QuerySetReport], float | None]
) -> float | str | None:
    """A metric value, star-flagged when measured on a degraded engine."""
    value = metric(report)
    if report.degraded:
        return f"{format_cell(value)}*"
    return value


# ----------------------------------------------------------------------
# Dataset / query set statistics (Tables IV, V)
# ----------------------------------------------------------------------


def table4_dataset_stats(config: BenchConfig) -> Table:
    """Table IV: statistics of the stand-in datasets next to the paper's."""
    table = Table(
        "Table IV — dataset statistics (stand-ins vs. paper)",
        list(REAL_WORLD_DATASETS),
    )
    stat_names = list(REAL_WORLD_SPECS["AIDS"].paper_row)
    rows: dict[str, dict[str, float]] = {}
    for dataset in REAL_WORLD_DATASETS:
        measured = get_real_dataset(dataset, config).stats().as_row()
        paper = REAL_WORLD_SPECS[dataset].paper_row
        for stat in stat_names:
            rows.setdefault(f"{stat} (ours)", {})[dataset] = measured[stat]
            rows.setdefault(f"{stat} (paper)", {})[dataset] = paper[stat]
    for label, values in rows.items():
        table.add_row(label, values)
    return table


def table5_queryset_stats(config: BenchConfig) -> dict[str, Table]:
    """Table V: per-dataset query set statistics."""
    tables: dict[str, Table] = {}
    for dataset in REAL_WORLD_DATASETS:
        query_sets = get_query_sets(dataset, config)
        columns = list(query_sets)
        table = Table(f"Table V — query set statistics on {dataset}", columns)
        stats = {name: query_set_statistics(qs) for name, qs in query_sets.items()}
        for stat in ("|V| per q", "|Σ| per q", "d per q", "% of trees"):
            table.add_row(stat, {name: stats[name][stat] for name in columns})
        tables[dataset] = table
    return tables


# ----------------------------------------------------------------------
# Real-world experiments (Table VI, Figures 2-7, Table VII)
# ----------------------------------------------------------------------


def table6_indexing_time(config: BenchConfig) -> Table:
    """Table VI: index construction time on the real-world stand-ins."""
    matrix = real_world_matrix(config)
    table = Table(
        "Table VI — indexing time on real-world stand-ins (seconds)",
        list(REAL_WORLD_DATASETS),
    )
    for algorithm in IFV_ALGORITHMS:
        row = {}
        for dataset in REAL_WORLD_DATASETS:
            row[dataset] = matrix.index_build.get((dataset, algorithm), "N/A")
        table.add_row(algorithm, row)
    return table


def real_world_metric_tables(
    config: BenchConfig,
    metric: Callable[[QuerySetReport], float | None],
    title: str,
    unavailable: str = "N/A",
    omitted: str = "omitted",
) -> dict[str, Table]:
    """One algorithms × query-sets table per dataset for any report metric."""
    matrix = real_world_matrix(config)
    columns = matrix.query_set_names()
    tables: dict[str, Table] = {}
    for dataset in REAL_WORLD_DATASETS:
        table = Table(f"{title} — {dataset}", columns)
        for algorithm in REAL_WORLD_ALGORITHMS:
            row: dict[str, float | str | None] = {}
            for qs_name in columns:
                key = (dataset, algorithm, qs_name)
                report = matrix.reports.get(key)
                if report is None:
                    build = matrix.index_build.get((dataset, algorithm))
                    row[qs_name] = (
                        unavailable if isinstance(build, str) else omitted
                    )
                else:
                    row[qs_name] = _metric_cell(report, metric)
            table.add_row(algorithm, row)
        tables[dataset] = table
    return tables


def fig2_filtering_precision(config: BenchConfig) -> dict[str, Table]:
    """Figure 2: filtering precision (Eq. 1) on the real-world stand-ins."""
    return real_world_metric_tables(
        config,
        lambda r: r.filtering_precision,
        "Figure 2 — filtering precision",
    )


def fig3_filtering_time(config: BenchConfig) -> dict[str, Table]:
    """Figure 3: filtering time (ms) on the real-world stand-ins."""
    return real_world_metric_tables(
        config,
        lambda r: r.avg_filtering_time * 1000.0,
        "Figure 3 — filtering time (ms)",
    )


def fig4_verification_time(config: BenchConfig) -> dict[str, Table]:
    """Figure 4: verification time (ms) on the real-world stand-ins."""
    return real_world_metric_tables(
        config,
        lambda r: r.avg_verification_time * 1000.0,
        "Figure 4 — verification time (ms)",
    )


def fig5_per_si_test_time(config: BenchConfig) -> dict[str, Table]:
    """Figure 5: per-SI-test time (Eq. 3, ms)."""
    return real_world_metric_tables(
        config,
        lambda r: None if r.per_si_test_time is None else r.per_si_test_time * 1000.0,
        "Figure 5 — per SI test time (ms)",
    )


def fig6_candidate_counts(config: BenchConfig) -> dict[str, Table]:
    """Figure 6: average number of candidate graphs |C(q)|."""
    return real_world_metric_tables(
        config,
        lambda r: r.avg_candidates,
        "Figure 6 — candidate graphs |C(q)|",
    )


def fig7_query_time(config: BenchConfig) -> dict[str, Table]:
    """Figure 7: total query time (ms)."""
    return real_world_metric_tables(
        config,
        lambda r: r.avg_query_time * 1000.0,
        "Figure 7 — query time (ms)",
    )


def table7_memory_cost(config: BenchConfig) -> Table:
    """Table VII: memory cost on the real-world stand-ins (MB)."""
    matrix = real_world_matrix(config)
    table = Table(
        "Table VII — memory cost on real-world stand-ins (MB)",
        list(REAL_WORLD_DATASETS),
    )
    table.add_row(
        "Datasets",
        {d: matrix.dataset_memory[d] / _MB for d in REAL_WORLD_DATASETS},
    )
    table.add_row(
        "CFQL",
        {
            d: matrix.auxiliary_memory.get((d, "CFQL"), 0) / _MB
            for d in REAL_WORLD_DATASETS
        },
    )
    for algorithm in ("CT-Index", "GGSX", "Grapes"):
        row: dict[str, float | str] = {}
        for dataset in REAL_WORLD_DATASETS:
            if (dataset, algorithm) in matrix.index_memory:
                row[dataset] = matrix.index_memory[(dataset, algorithm)] / _MB
            else:
                row[dataset] = "N/A"
        table.add_row(algorithm, row)
    return table


# ----------------------------------------------------------------------
# Synthetic experiments (Table VIII, Figures 8-9, Table IX)
# ----------------------------------------------------------------------

_AXIS_TITLES = {
    "num_graphs": "|D|",
    "num_labels": "|Σ|",
    "num_vertices": "|V(G)|",
    "avg_degree": "d(G)",
}


def table8_synthetic_indexing_time(config: BenchConfig) -> dict[str, Table]:
    """Table VIII: indexing time over the synthetic sweeps (seconds)."""
    matrix = synthetic_matrix(config)
    tables: dict[str, Table] = {}
    for parameter, values in config.synthetic_sweeps:
        axis = _AXIS_TITLES[parameter]
        table = Table(
            f"Table VIII — synthetic indexing time, vary {axis} (seconds)",
            [str(v) for v in values],
        )
        for algorithm in IFV_ALGORITHMS:
            row = {
                str(v): matrix.index_build.get((parameter, v, algorithm), "N/A")
                for v in values
            }
            table.add_row(algorithm, row)
        tables[parameter] = table
    return tables


def synthetic_metric_tables(
    config: BenchConfig,
    metric: Callable[[QuerySetReport], float | None],
    title: str,
) -> dict[str, Table]:
    """One algorithms × sweep-values table per axis for any metric."""
    matrix = synthetic_matrix(config)
    tables: dict[str, Table] = {}
    for parameter, values in config.synthetic_sweeps:
        axis = _AXIS_TITLES[parameter]
        table = Table(f"{title} — vary {axis}", [str(v) for v in values])
        for algorithm in SYNTHETIC_ALGORITHMS:
            row: dict[str, float | str | None] = {}
            for value in values:
                report = matrix.reports.get((parameter, value, algorithm))
                if report is None:
                    build = matrix.index_build.get((parameter, value, algorithm))
                    row[str(value)] = build if isinstance(build, str) else "omitted"
                else:
                    row[str(value)] = _metric_cell(report, metric)
            table.add_row(algorithm, row)
        tables[parameter] = table
    return tables


def fig8_synthetic_precision(config: BenchConfig) -> dict[str, Table]:
    """Figure 8: filtering precision over the synthetic sweeps (Q8S)."""
    return synthetic_metric_tables(
        config,
        lambda r: r.filtering_precision,
        "Figure 8 — filtering precision (Q8S)",
    )


def fig9_synthetic_filtering_time(config: BenchConfig) -> dict[str, Table]:
    """Figure 9: filtering time over the synthetic sweeps (Q8S, ms)."""
    return synthetic_metric_tables(
        config,
        lambda r: r.avg_filtering_time * 1000.0,
        "Figure 9 — filtering time (Q8S, ms)",
    )


def table9_synthetic_memory_cost(config: BenchConfig) -> dict[str, Table]:
    """Table IX: memory cost over the synthetic sweeps (MB)."""
    matrix = synthetic_matrix(config)
    tables: dict[str, Table] = {}
    for parameter, values in config.synthetic_sweeps:
        axis = _AXIS_TITLES[parameter]
        table = Table(
            f"Table IX — synthetic memory cost, vary {axis} (MB)",
            [str(v) for v in values],
        )
        table.add_row(
            "Datasets",
            {str(v): matrix.dataset_memory[(parameter, v)] / _MB for v in values},
        )
        table.add_row(
            "CFQL",
            {
                str(v): matrix.auxiliary_memory.get((parameter, v, "CFQL"), 0) / _MB
                for v in values
            },
        )
        for algorithm in ("GGSX", "Grapes"):
            row: dict[str, float | str] = {}
            for value in values:
                key = (parameter, value, algorithm)
                if key in matrix.index_memory:
                    row[str(value)] = matrix.index_memory[key] / _MB
                else:
                    build = matrix.index_build.get(key)
                    row[str(value)] = build if isinstance(build, str) else "N/A"
            table.add_row(algorithm, row)
        tables[parameter] = table
    return tables
