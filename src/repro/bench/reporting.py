"""Plain-text table rendering for the experiment harness.

Every table and figure in the paper's Section IV reduces to a labeled grid
of numbers (figures are grouped bar charts: algorithm × query set per
dataset).  :class:`Table` is that grid, with the paper's special cell
values (OOT, OOM, N/A) passed through verbatim and floats formatted to a
sensible precision.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

__all__ = ["Table", "format_cell"]

Cell = float | int | str | None


def format_cell(value: Cell) -> str:
    """Render one cell the way the paper's tables do."""
    if value is None:
        return "N/A"
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1000:
        return f"{value:,.0f}"
    if magnitude >= 1:
        return f"{value:.2f}"
    if magnitude >= 0.001:
        return f"{value:.4f}"
    return f"{value:.3e}"


class Table:
    """A titled grid: named rows × named columns of cells."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: list[tuple[str, dict[str, Cell]]] = []

    def add_row(self, label: str, values: Mapping[str, Cell]) -> None:
        """Append a row; missing columns render as empty cells."""
        unknown = set(values) - set(self.columns)
        if unknown:
            raise ValueError(f"row {label!r} has unknown columns {sorted(unknown)}")
        self.rows.append((label, dict(values)))

    def cell(self, row_label: str, column: str) -> Cell:
        for label, values in self.rows:
            if label == row_label:
                return values.get(column)
        raise KeyError(f"no row labeled {row_label!r}")

    def column_values(self, column: str) -> list[Cell]:
        return [values.get(column) for _, values in self.rows]

    def row_labels(self) -> list[str]:
        return [label for label, _ in self.rows]

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def format_text(self) -> str:
        """Aligned monospace rendering with the title on top."""
        header = [""] + self.columns
        body = [
            [label] + [format_cell(values.get(col)) for col in self.columns]
            for label, values in self.rows
        ]
        widths = [
            max(len(line[i]) for line in [header] + body)
            for i in range(len(header))
        ]
        lines = [self.title]
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for line in body:
            lines.append("  ".join(c.ljust(w) for c, w in zip(line, widths)))
        return "\n".join(lines)

    def format_markdown(self) -> str:
        """GitHub-flavored markdown rendering."""
        lines = [f"**{self.title}**", ""]
        lines.append("| | " + " | ".join(self.columns) + " |")
        lines.append("|" + "---|" * (len(self.columns) + 1))
        for label, values in self.rows:
            cells = " | ".join(format_cell(values.get(col)) for col in self.columns)
            lines.append(f"| {label} | {cells} |")
        return "\n".join(lines)

    def format_figure(self, width: int = 40, log_scale: bool = False) -> str:
        """Grouped horizontal bar chart, one group per column.

        The paper's figures are grouped bar charts (algorithm × query
        set); this renders the same data as text.  ``log_scale`` suits
        time-like metrics spanning orders of magnitude.  Non-numeric cells
        (OOT/OOM/N/A/omitted) are shown as annotations without a bar.
        """
        import math

        numeric = [
            value
            for _, values in self.rows
            for value in values.values()
            if isinstance(value, (int, float)) and value > 0
        ]
        if not numeric:
            return self.format_text()
        peak = max(numeric)
        floor = min(numeric)
        label_width = max(len(label) for label, _ in self.rows)

        def bar_length(value: float) -> int:
            if value <= 0:
                return 0
            if log_scale and peak > floor:
                span = math.log10(peak) - math.log10(floor) or 1.0
                fraction = (math.log10(value) - math.log10(floor)) / span
                return max(1, round(fraction * width))
            return max(1, round(value / peak * width))

        lines = [self.title, ""]
        for column in self.columns:
            lines.append(f"{column}:")
            for label, values in self.rows:
                cell = values.get(column)
                if isinstance(cell, (int, float)):
                    bar = "█" * bar_length(float(cell))
                    lines.append(
                        f"  {label.ljust(label_width)} {bar} {format_cell(cell)}"
                    )
                else:
                    lines.append(
                        f"  {label.ljust(label_width)} [{format_cell(cell)}]"
                    )
            lines.append("")
        return "\n".join(lines).rstrip()

    def __str__(self) -> str:
        return self.format_text()
