"""Experiment runner shared by all benchmarks.

The paper's Section IV derives every table and figure from two big runs:
the *real-world matrix* (8 algorithms × 4 datasets × 8 query sets) and the
*synthetic matrix* (a subset of algorithms over 4 parameter sweeps).  This
module executes each matrix exactly once per configuration and caches the
outcome, so the per-table benchmark files are cheap formatters over shared
results.

Scaling knobs live in :class:`BenchConfig` (env-overridable, see
``from_env``) with defaults sized for pure Python: smaller databases, a
few queries per set, and tighter OOT/OOM budgets.  The budget mechanics —
not the absolute limits — are what reproduce the paper's OOT/OOM entries.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from functools import lru_cache

from repro.core.algorithms import create_engine
from repro.core.engine import SubgraphQueryEngine
from repro.core.metrics import QuerySetReport, aggregate_results
from repro.graph.database import GraphDatabase
from repro.utils.errors import MemoryLimitExceeded, TimeLimitExceeded
from repro.workloads.datasets import make_dataset
from repro.workloads.querysets import QuerySet, standard_query_sets
from repro.workloads.synthetic import SyntheticConfig, synthetic_sweep

__all__ = [
    "BenchConfig",
    "IFV_ALGORITHMS",
    "REAL_WORLD_ALGORITHMS",
    "REAL_WORLD_DATASETS",
    "SYNTHETIC_ALGORITHMS",
    "build_engine",
    "get_query_sets",
    "get_real_dataset",
    "get_synthetic_sweep",
    "real_world_matrix",
    "run_query_set",
    "synthetic_matrix",
]

REAL_WORLD_DATASETS = ("AIDS", "PDBS", "PCM", "PPI")
IFV_ALGORITHMS = ("CT-Index", "GGSX", "Grapes")
REAL_WORLD_ALGORITHMS = (
    "CT-Index", "Grapes", "GGSX", "CFL", "GraphQL", "CFQL", "vcGrapes", "vcGGSX",
)
#: Algorithms the paper carries into the synthetic study (Sec. IV-C uses
#: CFQL as the vcFV representative).
SYNTHETIC_ALGORITHMS = ("CFQL", "Grapes", "GGSX", "vcGrapes")

#: Fraction of failed queries beyond which the paper omits a query set.
OMIT_THRESHOLD = 0.4


@dataclass(frozen=True)
class BenchConfig:
    """All scaling knobs of the experiment suite.

    Frozen (hashable) so it can key the matrix caches.  Paper analogues in
    brackets.
    """

    dataset_scale: float = 0.15          # graph-count multiplier for stand-ins
    queries_per_set: int = 5             # [100]
    edge_counts: tuple[int, ...] = (4, 8, 16, 32)
    query_time_limit: float = 1.0        # seconds [600]
    index_time_limit: float = 15.0       # seconds per dataset [86,400]
    max_path_edges: int = 3              # Grapes/GGSX path length [4]
    max_tree_edges: int = 3              # CT-Index tree size [4]
    max_cycle_length: int = 4            # CT-Index cycle length [4]
    index_feature_budget: int = 500_000  # per-graph feature cap → OOM
    seed: int = 0
    synthetic_num_graphs: int = 50       # [1000]
    synthetic_num_vertices: int = 50     # [200]
    synthetic_sweeps: tuple[tuple[str, tuple[int, ...]], ...] = (
        ("num_graphs", (10, 25, 50, 100, 200)),       # [1e2 .. 1e6]
        ("num_labels", (1, 10, 20, 40, 80)),          # [same]
        ("num_vertices", (15, 25, 50, 100, 200)),     # [50 .. 12800]
        ("avg_degree", (2, 4, 8, 12, 16)),            # [4 .. 64]
    )

    @classmethod
    def from_env(cls) -> "BenchConfig":
        """Build a config from ``REPRO_BENCH_*`` environment variables.

        ``REPRO_BENCH_SCALE`` multiplies the dataset scale,
        ``REPRO_BENCH_QUERIES`` sets queries per set,
        ``REPRO_BENCH_QUERY_LIMIT`` / ``REPRO_BENCH_INDEX_LIMIT`` set the
        time budgets in seconds.
        """
        base = cls()
        return cls(
            dataset_scale=base.dataset_scale
            * float(os.environ.get("REPRO_BENCH_SCALE", "1.0")),
            queries_per_set=int(
                os.environ.get("REPRO_BENCH_QUERIES", base.queries_per_set)
            ),
            query_time_limit=float(
                os.environ.get("REPRO_BENCH_QUERY_LIMIT", base.query_time_limit)
            ),
            index_time_limit=float(
                os.environ.get("REPRO_BENCH_INDEX_LIMIT", base.index_time_limit)
            ),
        )


# ----------------------------------------------------------------------
# Cached workload construction
# ----------------------------------------------------------------------


@lru_cache(maxsize=None)
def get_real_dataset(name: str, config: BenchConfig) -> GraphDatabase:
    """The stand-in dataset for ``name`` at the config's scale (cached)."""
    return make_dataset(name, seed=config.seed, scale=config.dataset_scale)


@lru_cache(maxsize=None)
def get_query_sets(name: str, config: BenchConfig) -> dict[str, QuerySet]:
    """The 8 standard query sets over one real-world stand-in (cached)."""
    db = get_real_dataset(name, config)
    return standard_query_sets(
        db,
        edge_counts=config.edge_counts,
        size=config.queries_per_set,
        seed=config.seed + 1,
    )


@lru_cache(maxsize=None)
def get_synthetic_sweep(
    parameter: str, config: BenchConfig
) -> dict[int, GraphDatabase]:
    """Databases for one synthetic sweep axis (cached)."""
    values = dict(config.synthetic_sweeps)[parameter]
    base = SyntheticConfig(
        num_graphs=config.synthetic_num_graphs,
        num_vertices=config.synthetic_num_vertices,
    )
    return synthetic_sweep(parameter, values=values, base=base, seed=config.seed + 2)


# ----------------------------------------------------------------------
# Engine construction with OOT/OOM accounting
# ----------------------------------------------------------------------


def build_engine(
    db: GraphDatabase, algorithm: str, config: BenchConfig
) -> tuple[SubgraphQueryEngine | None, float | str]:
    """Create and index an engine; returns ``(engine, status)``.

    ``status`` is the indexing time in seconds on success, or the paper's
    failure markers ``"OOT"`` / ``"OOM"`` — in which case the engine is
    ``None`` (an algorithm whose index failed cannot answer queries).
    """
    engine = create_engine(
        db,
        algorithm,
        index_max_path_edges=config.max_path_edges,
        index_max_tree_edges=config.max_tree_edges,
        index_max_cycle_length=config.max_cycle_length,
        index_max_features_per_graph=config.index_feature_budget,
        index_max_trie_nodes=config.index_feature_budget * 10,
    )
    try:
        seconds = engine.build_index(time_limit=config.index_time_limit)
    except TimeLimitExceeded:
        return None, "OOT"
    except MemoryLimitExceeded:
        return None, "OOM"
    return engine, seconds


def run_query_set(
    engine: SubgraphQueryEngine, query_set: QuerySet, config: BenchConfig
) -> QuerySetReport:
    """Run one query set under the per-query time limit and aggregate."""
    results = engine.query_many(
        list(query_set.queries), time_limit=config.query_time_limit
    )
    return aggregate_results(results)


# ----------------------------------------------------------------------
# The two experiment matrices
# ----------------------------------------------------------------------


@dataclass
class RealWorldMatrix:
    """Everything Section IV-B derives its tables and figures from."""

    config: BenchConfig
    #: (dataset, algorithm) → indexing seconds or "OOT"/"OOM".
    index_build: dict[tuple[str, str], float | str] = field(default_factory=dict)
    #: (dataset, algorithm, query set) → aggregated report, or None when
    #: the algorithm was unavailable (index failure) or the paper's 40%
    #: omission rule applies.
    reports: dict[tuple[str, str, str], QuerySetReport | None] = field(
        default_factory=dict
    )
    #: dataset → CSR bytes of the stored graphs.
    dataset_memory: dict[str, int] = field(default_factory=dict)
    #: (dataset, algorithm) → index bytes (IFV) for available engines.
    index_memory: dict[tuple[str, str], int] = field(default_factory=dict)
    #: (dataset, algorithm) → peak candidate-set bytes (vcFV algorithms).
    auxiliary_memory: dict[tuple[str, str], int] = field(default_factory=dict)

    def query_set_names(self) -> list[str]:
        dense_flag = ("S", "D")
        return [
            f"Q{edges}{flag}"
            for flag in dense_flag
            for edges in self.config.edge_counts
        ]


@lru_cache(maxsize=None)
def real_world_matrix(
    config: BenchConfig,
    datasets: tuple[str, ...] = REAL_WORLD_DATASETS,
    algorithms: tuple[str, ...] = REAL_WORLD_ALGORITHMS,
) -> RealWorldMatrix:
    """Run (once, cached) the full real-world experiment matrix."""
    matrix = RealWorldMatrix(config=config)
    for dataset in datasets:
        db = get_real_dataset(dataset, config)
        matrix.dataset_memory[dataset] = db.csr_memory_bytes()
        query_sets = get_query_sets(dataset, config)
        for algorithm in algorithms:
            engine, status = build_engine(db, algorithm, config)
            if engine is not None and engine.pipeline.uses_index:
                matrix.index_build[(dataset, algorithm)] = status
                matrix.index_memory[(dataset, algorithm)] = (
                    engine.index_memory_bytes()
                )
            elif engine is None:
                matrix.index_build[(dataset, algorithm)] = status
            for qs_name, query_set in query_sets.items():
                key = (dataset, algorithm, qs_name)
                if engine is None:
                    matrix.reports[key] = None
                    continue
                report = run_query_set(engine, query_set, config)
                if report.failed_fraction() > OMIT_THRESHOLD:
                    # The paper omits a query set an algorithm mostly
                    # fails on; keep the report retrievable via a marker.
                    matrix.reports[key] = None
                else:
                    matrix.reports[key] = report
                if report.max_auxiliary_memory_bytes:
                    prev = matrix.auxiliary_memory.get((dataset, algorithm), 0)
                    matrix.auxiliary_memory[(dataset, algorithm)] = max(
                        prev, report.max_auxiliary_memory_bytes
                    )
    return matrix


@dataclass
class SyntheticMatrix:
    """Everything Section IV-C derives its tables and figures from."""

    config: BenchConfig
    #: (parameter, value, algorithm) → indexing seconds or "OOT"/"OOM".
    index_build: dict[tuple[str, int, str], float | str] = field(default_factory=dict)
    #: (parameter, value, algorithm) → Q8S report or None (unavailable).
    reports: dict[tuple[str, int, str], QuerySetReport | None] = field(
        default_factory=dict
    )
    dataset_memory: dict[tuple[str, int], int] = field(default_factory=dict)
    index_memory: dict[tuple[str, int, str], int] = field(default_factory=dict)
    auxiliary_memory: dict[tuple[str, int, str], int] = field(default_factory=dict)


@lru_cache(maxsize=None)
def synthetic_matrix(
    config: BenchConfig,
    algorithms: tuple[str, ...] = SYNTHETIC_ALGORITHMS,
    index_algorithms: tuple[str, ...] = IFV_ALGORITHMS,
    query_edges: int = 8,
    dense: bool = False,
) -> SyntheticMatrix:
    """Run (once, cached) the synthetic sweep matrix on Q8S queries."""
    from repro.workloads.querysets import generate_query_set

    matrix = SyntheticMatrix(config=config)
    run_algorithms = tuple(dict.fromkeys(algorithms + index_algorithms))
    for parameter, values in config.synthetic_sweeps:
        sweep = get_synthetic_sweep(parameter, config)
        for value in values:
            db = sweep[value]
            matrix.dataset_memory[(parameter, value)] = db.csr_memory_bytes()
            query_set = generate_query_set(
                db,
                query_edges,
                dense,
                size=config.queries_per_set,
                seed=config.seed + 3,
            )
            for algorithm in run_algorithms:
                key = (parameter, value, algorithm)
                engine, status = build_engine(db, algorithm, config)
                if engine is not None and engine.pipeline.uses_index:
                    matrix.index_build[key] = status
                    matrix.index_memory[key] = engine.index_memory_bytes()
                elif engine is None:
                    matrix.index_build[key] = status
                    matrix.reports[key] = None
                    continue
                if algorithm not in algorithms:
                    continue  # indexing-only algorithm (e.g. CT-Index)
                report = run_query_set(engine, query_set, config)
                matrix.reports[key] = (
                    None if report.failed_fraction() > OMIT_THRESHOLD else report
                )
                if report.max_auxiliary_memory_bytes:
                    matrix.auxiliary_memory[key] = report.max_auxiliary_memory_bytes
    return matrix
