"""Experiment runner shared by all benchmarks.

The paper's Section IV derives every table and figure from two big runs:
the *real-world matrix* (8 algorithms × 4 datasets × 8 query sets) and the
*synthetic matrix* (a subset of algorithms over 4 parameter sweeps).  This
module executes each matrix exactly once per configuration and caches the
outcome, so the per-table benchmark files are cheap formatters over shared
results.

Scaling knobs live in :class:`BenchConfig` (env-overridable, see
``from_env``) with defaults sized for pure Python: smaller databases, a
few queries per set, and tighter OOT/OOM budgets.  The budget mechanics —
not the absolute limits — are what reproduce the paper's OOT/OOM entries.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import TYPE_CHECKING

from repro.core.algorithms import create_engine
from repro.core.engine import SubgraphQueryEngine
from repro.core.metrics import QuerySetReport, aggregate_results
from repro.exec.base import QueryExecutor, create_executor
from repro.exec.journal import RunJournal
from repro.graph.database import GraphDatabase
from repro.utils.errors import (
    ConfigurationError,
    MemoryLimitExceeded,
    TimeLimitExceeded,
)
from repro.workloads.datasets import make_dataset
from repro.workloads.querysets import QuerySet, standard_query_sets
from repro.workloads.synthetic import SyntheticConfig, synthetic_sweep

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.store.manager import IndexStore

__all__ = [
    "BenchConfig",
    "IFV_ALGORITHMS",
    "REAL_WORLD_ALGORITHMS",
    "REAL_WORLD_DATASETS",
    "SYNTHETIC_ALGORITHMS",
    "build_engine",
    "get_query_sets",
    "get_real_dataset",
    "get_synthetic_sweep",
    "real_world_matrix",
    "run_query_set",
    "synthetic_matrix",
]

REAL_WORLD_DATASETS = ("AIDS", "PDBS", "PCM", "PPI")
IFV_ALGORITHMS = ("CT-Index", "GGSX", "Grapes")
REAL_WORLD_ALGORITHMS = (
    "CT-Index", "Grapes", "GGSX", "CFL", "GraphQL", "CFQL", "vcGrapes", "vcGGSX",
)
#: Algorithms the paper carries into the synthetic study (Sec. IV-C uses
#: CFQL as the vcFV representative).
SYNTHETIC_ALGORITHMS = ("CFQL", "Grapes", "GGSX", "vcGrapes")

#: Fraction of failed queries beyond which the paper omits a query set.
OMIT_THRESHOLD = 0.4


@dataclass(frozen=True)
class BenchConfig:
    """All scaling knobs of the experiment suite.

    Frozen (hashable) so it can key the matrix caches.  Paper analogues in
    brackets.
    """

    dataset_scale: float = 0.15          # graph-count multiplier for stand-ins
    queries_per_set: int = 5             # [100]
    edge_counts: tuple[int, ...] = (4, 8, 16, 32)
    query_time_limit: float = 1.0        # seconds [600]
    index_time_limit: float = 15.0       # seconds per dataset [86,400]
    max_path_edges: int = 3              # Grapes/GGSX path length [4]
    max_tree_edges: int = 3              # CT-Index tree size [4]
    max_cycle_length: int = 4            # CT-Index cycle length [4]
    index_feature_budget: int = 500_000  # per-graph feature cap → OOM
    #: Containment policy for query execution: "inprocess" (cooperative)
    #: or "subprocess" (hard SIGKILL timeouts + RSS cap per worker).
    executor: str = "inprocess"
    #: Worker processes per query batch.  > 1 selects the parallel pool
    #: executor (hard limits included) regardless of ``executor``; 1 keeps
    #: the configured serial policy.  Results are identical either way, so
    #: ``jobs`` is excluded from the journal fingerprint.
    jobs: int = 1
    #: Worker address-space cap in MiB (subprocess executor only; 0 = none).
    memory_limit_mb: int = 0
    #: Shard count for scatter-gather execution.  > 1 partitions each
    #: cell's database across N shard engines behind a router; answers
    #: are bit-identical to the unsharded run (set-union merge over a
    #: disjoint placement), so ``shards`` is excluded from the journal
    #: fingerprint just like ``jobs``.
    shards: int = 1
    #: When True, an index that fails to build (OOT/OOM) degrades the
    #: engine to its vcFV fallback instead of dropping the configuration.
    index_fallback: bool = False
    #: JSONL journal path making matrix runs resumable ("" = disabled).
    journal: str = ""
    #: Directory for persistent index snapshots ("" = disabled).  Each
    #: matrix cell warm-starts its index from the store when a valid
    #: snapshot exists and saves one after a cold build.  Excluded from
    #: the journal fingerprint: snapshot identity is enforced at load by
    #: the store's own database-fingerprint check, so a store cannot
    #: change answers — only skip rebuild time.
    index_store: str = ""
    seed: int = 0
    synthetic_num_graphs: int = 50       # [1000]
    synthetic_num_vertices: int = 50     # [200]
    synthetic_sweeps: tuple[tuple[str, tuple[int, ...]], ...] = (
        ("num_graphs", (10, 25, 50, 100, 200)),       # [1e2 .. 1e6]
        ("num_labels", (1, 10, 20, 40, 80)),          # [same]
        ("num_vertices", (15, 25, 50, 100, 200)),     # [50 .. 12800]
        ("avg_degree", (2, 4, 8, 12, 16)),            # [4 .. 64]
    )

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ConfigurationError(
                f"benchmark jobs must be >= 1 worker process, got {self.jobs} "
                "(check --jobs / REPRO_BENCH_JOBS)"
            )
        if self.shards < 1:
            raise ConfigurationError(
                f"benchmark shards must be >= 1, got {self.shards} "
                "(check --shards / REPRO_BENCH_SHARDS)"
            )

    @classmethod
    def from_env(cls) -> "BenchConfig":
        """Build a config from ``REPRO_BENCH_*`` environment variables.

        ``REPRO_BENCH_SCALE`` multiplies the dataset scale,
        ``REPRO_BENCH_QUERIES`` sets queries per set,
        ``REPRO_BENCH_QUERY_LIMIT`` / ``REPRO_BENCH_INDEX_LIMIT`` set the
        time budgets in seconds.  Execution robustness knobs:
        ``REPRO_BENCH_EXECUTOR`` (inprocess/subprocess),
        ``REPRO_BENCH_JOBS`` (worker processes per query batch),
        ``REPRO_BENCH_MEMORY_MB`` (worker RSS cap),
        ``REPRO_BENCH_FALLBACK`` (1 enables index fallback),
        ``REPRO_BENCH_JOURNAL`` (resumable-run journal path),
        ``REPRO_BENCH_INDEX_STORE`` (persistent index-snapshot directory),
        and ``REPRO_BENCH_SHARDS`` (scatter-gather shard count).

        Raises :class:`~repro.utils.errors.ConfigurationError` on invalid
        values (e.g. ``REPRO_BENCH_JOBS`` below 1).
        """
        base = cls()
        return cls(
            dataset_scale=base.dataset_scale
            * float(os.environ.get("REPRO_BENCH_SCALE", "1.0")),
            queries_per_set=int(
                os.environ.get("REPRO_BENCH_QUERIES", base.queries_per_set)
            ),
            query_time_limit=float(
                os.environ.get("REPRO_BENCH_QUERY_LIMIT", base.query_time_limit)
            ),
            index_time_limit=float(
                os.environ.get("REPRO_BENCH_INDEX_LIMIT", base.index_time_limit)
            ),
            executor=os.environ.get("REPRO_BENCH_EXECUTOR", base.executor),
            jobs=int(os.environ.get("REPRO_BENCH_JOBS", base.jobs)),
            memory_limit_mb=int(
                os.environ.get("REPRO_BENCH_MEMORY_MB", base.memory_limit_mb)
            ),
            index_fallback=os.environ.get("REPRO_BENCH_FALLBACK", "").lower()
            in ("1", "true", "yes"),
            journal=os.environ.get("REPRO_BENCH_JOURNAL", base.journal),
            index_store=os.environ.get("REPRO_BENCH_INDEX_STORE", base.index_store),
            shards=int(os.environ.get("REPRO_BENCH_SHARDS", base.shards)),
        )


# ----------------------------------------------------------------------
# Cached workload construction
# ----------------------------------------------------------------------


@lru_cache(maxsize=None)
def get_real_dataset(name: str, config: BenchConfig) -> GraphDatabase:
    """The stand-in dataset for ``name`` at the config's scale (cached)."""
    return make_dataset(name, seed=config.seed, scale=config.dataset_scale)


@lru_cache(maxsize=None)
def get_query_sets(name: str, config: BenchConfig) -> dict[str, QuerySet]:
    """The 8 standard query sets over one real-world stand-in (cached)."""
    db = get_real_dataset(name, config)
    return standard_query_sets(
        db,
        edge_counts=config.edge_counts,
        size=config.queries_per_set,
        seed=config.seed + 1,
    )


@lru_cache(maxsize=None)
def get_synthetic_sweep(
    parameter: str, config: BenchConfig
) -> dict[int, GraphDatabase]:
    """Databases for one synthetic sweep axis (cached)."""
    values = dict(config.synthetic_sweeps)[parameter]
    base = SyntheticConfig(
        num_graphs=config.synthetic_num_graphs,
        num_vertices=config.synthetic_num_vertices,
    )
    return synthetic_sweep(parameter, values=values, base=base, seed=config.seed + 2)


# ----------------------------------------------------------------------
# Engine construction with OOT/OOM accounting
# ----------------------------------------------------------------------


def _make_executor(config: BenchConfig) -> QueryExecutor:
    """The containment policy an engine runs its queries under."""
    if config.jobs > 1:
        return create_executor(
            "parallel",
            jobs=config.jobs,
            memory_limit_mb=config.memory_limit_mb or None,
        )
    if config.executor == "subprocess":
        return create_executor(
            "subprocess", memory_limit_mb=config.memory_limit_mb or None
        )
    return create_executor(config.executor)


def build_engine(
    db: GraphDatabase,
    algorithm: str,
    config: BenchConfig,
    store: "IndexStore | None" = None,
) -> tuple[SubgraphQueryEngine | None, float | str]:
    """Create and index an engine; returns ``(engine, status)``.

    ``status`` is the indexing time in seconds on success, or the paper's
    failure markers ``"OOT"`` / ``"OOM"`` — in which case the engine is
    ``None`` (an algorithm whose index failed cannot answer queries).
    With ``config.index_fallback`` the engine survives an index failure by
    degrading to its vcFV fallback; the status then reads e.g.
    ``"OOM→vcFV"`` and the engine is flagged ``degraded``.  With a
    ``store`` the index warm-starts from a verified snapshot when one
    exists and is saved back after a cold build.  With ``config.shards``
    > 1 the database is partitioned across that many shard engines behind
    a scatter-gather router (no store: snapshot layouts are unsharded
    here) — answers stay bit-identical to the unsharded run.
    """
    pipeline_overrides = dict(
        index_max_path_edges=config.max_path_edges,
        index_max_tree_edges=config.max_tree_edges,
        index_max_cycle_length=config.max_cycle_length,
        index_max_features_per_graph=config.index_feature_budget,
        index_max_trie_nodes=config.index_feature_budget * 10,
        index_max_total_features=config.index_feature_budget * 10,
    )
    if config.shards > 1:
        if store is not None:
            raise ConfigurationError(
                "sharded benchmark runs cannot use a per-cell index store: "
                "snapshot directories are laid out unsharded (drop "
                "--index-store or --shards)"
            )
        from repro.core.algorithms import create_pipeline
        from repro.shard import ShardedEngine

        engine = ShardedEngine(
            db,
            config.shards,
            lambda: create_pipeline(algorithm, **pipeline_overrides),
            executor_factory=(
                (lambda index: _make_executor(config))
                if (config.jobs > 1 or config.executor == "subprocess")
                else None
            ),
        )
    else:
        engine = create_engine(
            db,
            algorithm,
            executor=_make_executor(config),
            **pipeline_overrides,
        )
    try:
        seconds = engine.build_index(
            time_limit=config.index_time_limit,
            fallback=config.index_fallback,
            store=store,
        )
    except TimeLimitExceeded:
        engine.close()
        return None, "OOT"
    except MemoryLimitExceeded:
        engine.close()
        return None, "OOM"
    if engine.degraded:
        return engine, f"{engine.degraded_reason}→vcFV"
    return engine, seconds


def run_query_set(
    engine: SubgraphQueryEngine, query_set: QuerySet, config: BenchConfig
) -> QuerySetReport:
    """Run one query set under the per-query time limit and aggregate."""
    results = engine.query_many(
        list(query_set.queries), time_limit=config.query_time_limit
    )
    return aggregate_results(results, degraded=engine.degraded)


# ----------------------------------------------------------------------
# The two experiment matrices
# ----------------------------------------------------------------------


def _cell_store(config: BenchConfig, scope: tuple) -> "IndexStore | None":
    """The snapshot store for one matrix scope, or None when disabled.

    Each scope (dataset / sweep point) gets its own subdirectory under
    ``config.index_store``: snapshots are keyed by index name, so a shared
    directory would make every cell overwrite the previous database's
    snapshots instead of warm-starting.
    """
    if not config.index_store:
        return None
    from repro.store import IndexStore

    sub = "_".join(str(part) for part in scope)
    return IndexStore(Path(config.index_store) / sub)


def _open_journal(config: BenchConfig) -> RunJournal | None:
    """Open the run journal, guarding against cross-config reuse.

    Journaled cells are only valid under the configuration that produced
    them, so the first run stamps the config into the journal and any
    later run under a different config is rejected instead of silently
    replaying stale cells.  The ``journal`` field itself is excluded from
    the fingerprint so a renamed journal file still matches; ``jobs`` is
    normalised out because parallel and serial runs produce identical
    results — a journal begun serially resumes fine under ``--jobs N`` —
    and ``index_store`` likewise, because snapshot identity is enforced
    independently at load time (database fingerprint, parameters,
    checksums), so a warm start can only change timings, never answers.
    """
    if not config.journal:
        return None
    journal = RunJournal(config.journal)
    fingerprint = repr(
        dataclasses.replace(config, journal="", jobs=1, index_store="", shards=1)
    )
    recorded = journal.get("meta", "config")
    if not journal.has("meta", "config"):
        journal.put(("meta", "config"), fingerprint)
    elif recorded != fingerprint:
        raise ConfigurationError(
            f"journal {config.journal!r} was written under a different "
            "benchmark configuration; resuming would mix incompatible "
            "cells — use a fresh journal path or the original config.\n"
            f"  journal: {recorded}\n  current: {fingerprint}"
        )
    return journal


def _execute_matrix_cell(
    *,
    db: GraphDatabase,
    algorithm: str,
    query_sets: dict[str, QuerySet],
    config: BenchConfig,
    journal: RunJournal | None,
    scope: tuple,
    index_key,
    report_key,
    aux_key,
    index_build: dict,
    index_memory: dict,
    reports: dict,
    auxiliary_memory: dict,
    run_reports: bool = True,
) -> None:
    """Run one (dataset/sweep-point, algorithm) cell of a matrix.

    When a journal is given, every finished sub-cell (the index build and
    each query-set report) is recorded durably, and journaled sub-cells
    are replayed instead of recomputed — so a killed run resumes where it
    stopped.  ``scope`` namespaces the journal keys; ``index_key`` /
    ``report_key(qs_name)`` / ``aux_key`` address the matrix dicts.
    ``shards`` (like ``jobs``) never invalidates a journal: sharded and
    unsharded runs produce identical answers, so their cells mix freely.
    """
    qs_names = list(query_sets)
    needed = qs_names if run_reports else []

    def restore_report(name: str, payload: dict) -> None:
        if payload["omitted"] or payload["report"] is None:
            reports[report_key(name)] = None
        else:
            reports[report_key(name)] = QuerySetReport.from_dict(payload["report"])
        if payload["aux"]:
            auxiliary_memory[aux_key] = max(
                auxiliary_memory.get(aux_key, 0), payload["aux"]
            )

    if journal is not None and journal.has("index", *scope, algorithm):
        index_cell = journal.get("index", *scope, algorithm)
        if not index_cell["available"]:
            index_build[index_key] = index_cell["build"]
            for name in qs_names:
                reports[report_key(name)] = None
            return
        if all(journal.has("report", *scope, algorithm, n) for n in needed):
            if index_cell["build"] is not None:
                index_build[index_key] = index_cell["build"]
            if index_cell["memory"] is not None:
                index_memory[index_key] = index_cell["memory"]
            for name in needed:
                restore_report(name, journal.get("report", *scope, algorithm, name))
            return
        # Partially journaled: the engine must be rebuilt, but finished
        # query-set reports below are still replayed, not recomputed.

    engine, status = build_engine(
        db, algorithm, config, store=_cell_store(config, scope)
    )
    try:
        if engine is None:
            index_build[index_key] = status
            for name in qs_names:
                reports[report_key(name)] = None
            if journal is not None:
                journal.put(
                    ("index", *scope, algorithm),
                    {"available": False, "build": status, "memory": None,
                     "degraded": False},
                )
            return
        build_entry = (
            status if (engine.pipeline.uses_index or engine.degraded) else None
        )
        memory_entry = (
            engine.index_memory_bytes() if engine.pipeline.uses_index else None
        )
        if build_entry is not None:
            index_build[index_key] = build_entry
        if memory_entry is not None:
            index_memory[index_key] = memory_entry
        if journal is not None:
            journal.put(
                ("index", *scope, algorithm),
                {"available": True, "build": build_entry, "memory": memory_entry,
                 "degraded": engine.degraded},
            )
        for name in needed:
            if journal is not None and journal.has("report", *scope, algorithm, name):
                payload = journal.get("report", *scope, algorithm, name)
            else:
                report = run_query_set(engine, query_sets[name], config)
                payload = {
                    "report": report.to_dict(),
                    "omitted": report.failed_fraction() > OMIT_THRESHOLD,
                    "aux": report.max_auxiliary_memory_bytes,
                }
                if journal is not None:
                    journal.put(("report", *scope, algorithm, name), payload)
            restore_report(name, payload)
    finally:
        if engine is not None:
            engine.close()


@dataclass
class RealWorldMatrix:
    """Everything Section IV-B derives its tables and figures from."""

    config: BenchConfig
    #: (dataset, algorithm) → indexing seconds or "OOT"/"OOM".
    index_build: dict[tuple[str, str], float | str] = field(default_factory=dict)
    #: (dataset, algorithm, query set) → aggregated report, or None when
    #: the algorithm was unavailable (index failure) or the paper's 40%
    #: omission rule applies.
    reports: dict[tuple[str, str, str], QuerySetReport | None] = field(
        default_factory=dict
    )
    #: dataset → CSR bytes of the stored graphs.
    dataset_memory: dict[str, int] = field(default_factory=dict)
    #: (dataset, algorithm) → index bytes (IFV) for available engines.
    index_memory: dict[tuple[str, str], int] = field(default_factory=dict)
    #: (dataset, algorithm) → peak candidate-set bytes (vcFV algorithms).
    auxiliary_memory: dict[tuple[str, str], int] = field(default_factory=dict)

    def query_set_names(self) -> list[str]:
        dense_flag = ("S", "D")
        return [
            f"Q{edges}{flag}"
            for flag in dense_flag
            for edges in self.config.edge_counts
        ]


@lru_cache(maxsize=None)
def real_world_matrix(
    config: BenchConfig,
    datasets: tuple[str, ...] = REAL_WORLD_DATASETS,
    algorithms: tuple[str, ...] = REAL_WORLD_ALGORITHMS,
) -> RealWorldMatrix:
    """Run (once, cached) the full real-world experiment matrix.

    With ``config.journal`` set, every completed cell is checkpointed to a
    JSONL file; a rerun after a crash or kill replays the journaled cells
    and only computes what is missing.
    """
    matrix = RealWorldMatrix(config=config)
    journal = _open_journal(config)
    for dataset in datasets:
        db = get_real_dataset(dataset, config)
        matrix.dataset_memory[dataset] = db.csr_memory_bytes()
        query_sets = get_query_sets(dataset, config)
        for algorithm in algorithms:
            _execute_matrix_cell(
                db=db,
                algorithm=algorithm,
                query_sets=query_sets,
                config=config,
                journal=journal,
                scope=("real", dataset),
                index_key=(dataset, algorithm),
                report_key=lambda name, d=dataset, a=algorithm: (d, a, name),
                aux_key=(dataset, algorithm),
                index_build=matrix.index_build,
                index_memory=matrix.index_memory,
                reports=matrix.reports,
                auxiliary_memory=matrix.auxiliary_memory,
            )
    return matrix


@dataclass
class SyntheticMatrix:
    """Everything Section IV-C derives its tables and figures from."""

    config: BenchConfig
    #: (parameter, value, algorithm) → indexing seconds or "OOT"/"OOM".
    index_build: dict[tuple[str, int, str], float | str] = field(default_factory=dict)
    #: (parameter, value, algorithm) → Q8S report or None (unavailable).
    reports: dict[tuple[str, int, str], QuerySetReport | None] = field(
        default_factory=dict
    )
    dataset_memory: dict[tuple[str, int], int] = field(default_factory=dict)
    index_memory: dict[tuple[str, int, str], int] = field(default_factory=dict)
    auxiliary_memory: dict[tuple[str, int, str], int] = field(default_factory=dict)


@lru_cache(maxsize=None)
def synthetic_matrix(
    config: BenchConfig,
    algorithms: tuple[str, ...] = SYNTHETIC_ALGORITHMS,
    index_algorithms: tuple[str, ...] = IFV_ALGORITHMS,
    query_edges: int = 8,
    dense: bool = False,
) -> SyntheticMatrix:
    """Run (once, cached) the synthetic sweep matrix on Q8S queries."""
    from repro.workloads.querysets import generate_query_set

    matrix = SyntheticMatrix(config=config)
    journal = _open_journal(config)
    run_algorithms = tuple(dict.fromkeys(algorithms + index_algorithms))
    qs_name = f"Q{query_edges}{'D' if dense else 'S'}"
    for parameter, values in config.synthetic_sweeps:
        sweep = get_synthetic_sweep(parameter, config)
        for value in values:
            db = sweep[value]
            matrix.dataset_memory[(parameter, value)] = db.csr_memory_bytes()
            query_set = generate_query_set(
                db,
                query_edges,
                dense,
                size=config.queries_per_set,
                seed=config.seed + 3,
            )
            for algorithm in run_algorithms:
                key = (parameter, value, algorithm)
                _execute_matrix_cell(
                    db=db,
                    algorithm=algorithm,
                    query_sets={qs_name: query_set},
                    config=config,
                    journal=journal,
                    scope=("syn", parameter, value),
                    index_key=key,
                    report_key=lambda name, k=key: k,
                    aux_key=key,
                    index_build=matrix.index_build,
                    index_memory=matrix.index_memory,
                    reports=matrix.reports,
                    auxiliary_memory=matrix.auxiliary_memory,
                    run_reports=algorithm in algorithms,
                )
    return matrix
