"""Microbenchmarks for the hot matching path.

Times the kernels the matching algorithms spend their lives in —
candidate generation, bitset intersection, single-query latency per
matcher — plus the parallel-vs-serial executor comparison, and writes
the lot to ``BENCH_micro.json``.  Run via ``python -m repro bench-micro``
or :mod:`benchmarks.microbench`.

The speedup section reports the machine's honest numbers: ``cpu_count``
is recorded alongside, because CPU-bound queries cannot beat serial on a
single core no matter how many workers overlap.  A second, sleep-bound
workload (fault-injected delays) isolates the pool's *overlap* from the
core count — it approaches ``jobs``× on any machine and catches
serialisation bugs in the pool itself.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import time
from typing import Callable

from repro.core.algorithms import create_pipeline
from repro.exec import faults
from repro.exec.parallel import ParallelExecutor
from repro.exec.pool import SubprocessExecutor
from repro.graph.generators import generate_database
from repro.matching import (
    CFLMatcher,
    CFQLMatcher,
    GraphQLMatcher,
    ldf_candidate_bits,
    nlf_candidate_bits,
)
from repro.utils.fsio import atomic_write_text
from repro.workloads.querysets import generate_query_set

__all__ = ["run_microbench", "write_report"]

_MATCHERS = {
    "GraphQL": GraphQLMatcher,
    "CFL": CFLMatcher,
    "CFQL": CFQLMatcher,
}


def _time_repeated(fn: Callable[[], object], repeats: int) -> dict:
    """Median/min seconds over ``repeats`` calls (after one warmup)."""
    fn()
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return {
        "median_s": statistics.median(samples),
        "min_s": min(samples),
        "repeats": repeats,
    }


def _result_signature(result) -> tuple:
    """The deterministic part of a QueryResult (timings excluded)."""
    return (
        result.algorithm,
        result.query_name,
        tuple(sorted(result.answers)),
        tuple(sorted(result.candidates)),
        result.timed_out,
        result.failure.kind if result.failure is not None else None,
    )


def _bitset_kernels(db, queries, repeats: int) -> dict:
    """Raw bitmap-kernel timings over every (query, data graph) pair."""
    graphs = db.graphs()
    pairs = [(q, g) for q in queries for g in graphs]

    def ldf_all():
        for q, g in pairs:
            ldf_candidate_bits(q, g)

    def nlf_all():
        for q, g in pairs:
            nlf_candidate_bits(q, g)

    # Pure intersection/popcount over prebuilt candidate bitmaps.
    prebuilt = [
        (nlf_candidate_bits(q, g), g) for q, g in pairs
    ]

    def intersect_all():
        total = 0
        for bitmaps, g in prebuilt:
            for bits in bitmaps:
                for v in range(min(8, g.num_vertices)):
                    total += (bits & g.neighbor_bitmap(v)).bit_count()
        return total

    return {
        "pairs": len(pairs),
        "ldf_candidate_bits": _time_repeated(ldf_all, repeats),
        "nlf_candidate_bits": _time_repeated(nlf_all, repeats),
        "bitset_and_popcount": _time_repeated(intersect_all, repeats),
    }


def _bitset_backend_bench(repeats: int, quick: bool) -> dict:
    """Python big-int vs numpy word-block backend on the batch hot paths.

    One small (paper-scale, where ``auto`` must keep python) and one large
    graph (where the word-block backend earns its keep): batch frontier
    AND+popcount over a block of adjacency rows, and full enumeration over
    identical candidate sets in each backend — both the default dispatch
    (word-block sets convert to int bitmaps at the enumeration boundary)
    and the opt-in ``REPRO_ENUM_KERNEL=wordblock`` tree walk, so the
    report records honestly that the vectorized walk loses to big ints.
    Embedding-count parity is asserted for every timed comparison — a
    speedup with wrong answers is not a speedup.
    """
    import os
    import random

    from repro.graph.generators import generate_graph, random_walk_query
    from repro.matching.enumeration import enumerate_embeddings_iterative
    from repro.utils.bitset import (
        AUTO_MIN_VERTICES,
        backend_override,
        get_kernel,
        numpy_available,
        python_kernel,
    )

    sizes = (60, 1024) if quick else (60, 2048)
    frontier = 256
    limit = 20_000 if quick else 50_000
    out: dict = {
        "numpy_available": numpy_available(),
        "auto_min_vertices": AUTO_MIN_VERTICES,
        "frontier_rows": frontier,
        "graphs": {},
    }
    for n in sizes:
        graph = generate_graph(
            num_vertices=n, avg_degree=8.0, num_labels=4 if n < 256 else 12, seed=29
        )
        from repro.matching.candidates import select_kernel

        with backend_override("auto"):
            auto_name = select_kernel(graph).name
        entry: dict = {"num_vertices": n, "auto_backend": auto_name}

        # Batch frontier intersection: AND one mask into a block of
        # adjacency rows and popcount every row.
        rng = random.Random(31)
        ids = [rng.randrange(n) for _ in range(frontier)]
        mask_vertices = rng.sample(range(n), n // 2)
        pk = python_kernel()
        py_rows = [graph.neighbor_bitmap(v) for v in ids]
        py_mask = pk.pack(mask_vertices, n)

        def py_frontier(rows=py_rows, mask=py_mask):
            total = 0
            for bits in rows:
                total += (bits & mask).bit_count()
            return total

        entry["python"] = {"frontier_and_popcount": _time_repeated(py_frontier, repeats)}
        if numpy_available():
            import numpy as np

            nk = get_kernel("numpy")
            profile = graph.bitset_profile(nk)
            adjacency = profile.adjacency()
            idx = np.array(ids, dtype=np.int64)
            np_mask = nk.pack(mask_vertices, n)

            def np_frontier(adj=adjacency, i=idx, mask=np_mask, k=nk):
                return int(k.popcount_rows(adj[i] & mask).sum())

            assert np_frontier() == py_frontier(), "frontier parity"
            entry["numpy"] = {
                "frontier_and_popcount": _time_repeated(np_frontier, repeats)
            }
            py_med = entry["python"]["frontier_and_popcount"]["median_s"]
            np_med = entry["numpy"]["frontier_and_popcount"]["median_s"]
            entry["frontier_speedup_numpy_vs_python"] = (
                py_med / np_med if np_med > 0 else None
            )

        # Full enumeration from identical candidate sets in each backend.
        query = random_walk_query(graph, num_edges=5, seed=37)
        if query is not None:
            matcher = CFQLMatcher()
            with backend_override("python"):
                candidates = matcher.build_candidates(query, graph)
            if candidates is not None and candidates.all_nonempty:
                order = tuple(matcher.matching_order(query, graph, candidates))

                def py_enum(c=candidates, o=order):
                    return enumerate_embeddings_iterative(
                        query, graph, c, o, limit=limit
                    ).num_embeddings

                py_count = py_enum()
                entry["enumeration_embeddings"] = py_count
                entry["python"]["enumeration"] = _time_repeated(py_enum, repeats)
                if numpy_available():
                    np_candidates = candidates.to_backend(
                        get_kernel("numpy"), num_vertices=n
                    )

                    def np_enum(c=np_candidates, o=order):
                        return enumerate_embeddings_iterative(
                            query, graph, c, o, limit=limit
                        ).num_embeddings

                    # Default dispatch: converts to int bitmaps up front.
                    entry["parity_ok"] = np_enum() == py_count
                    entry["numpy"]["enumeration"] = _time_repeated(np_enum, repeats)
                    py_med = entry["python"]["enumeration"]["median_s"]
                    np_med = entry["numpy"]["enumeration"]["median_s"]
                    entry["enumeration_speedup_numpy_vs_python"] = (
                        py_med / np_med if np_med > 0 else None
                    )
                    # Opt-in vectorized tree walk, timed for the record.
                    prev = os.environ.get("REPRO_ENUM_KERNEL")
                    os.environ["REPRO_ENUM_KERNEL"] = "wordblock"
                    try:
                        entry["parity_ok_wordblock"] = np_enum() == py_count
                        entry["numpy"]["enumeration_wordblock"] = _time_repeated(
                            np_enum, repeats
                        )
                    finally:
                        if prev is None:
                            os.environ.pop("REPRO_ENUM_KERNEL", None)
                        else:
                            os.environ["REPRO_ENUM_KERNEL"] = prev
                    wb_med = entry["numpy"]["enumeration_wordblock"]["median_s"]
                    entry["enumeration_speedup_wordblock_vs_python"] = (
                        py_med / wb_med if wb_med > 0 else None
                    )
        out["graphs"][str(n)] = entry
    return out


def _candidate_generation(db, queries, repeats: int) -> dict:
    """Filter-phase latency per matcher (build_candidates only)."""
    graphs = db.graphs()
    pairs = [(q, g) for q in queries for g in graphs]
    out: dict = {}
    for name, cls in _MATCHERS.items():
        matcher = cls()

        def build_all(m=matcher):
            for q, g in pairs:
                m.build_candidates(q, g)

        out[name] = _time_repeated(build_all, repeats)
        out[name]["pairs"] = len(pairs)
    return out


def _enumeration_kernels(db, queries, repeats: int) -> dict:
    """Recursive reference vs iterative kernel on identical inputs.

    Each case is a (query, graph) pair with all-non-empty CFQL candidate
    sets, enumerated to completion (full counting, no limit) from the
    same candidates and matching order.  ``parity_ok`` asserts all three
    kernel variants returned the same embedding count on every case —
    a speedup with wrong answers is not a speedup.
    """
    from repro.matching.enumeration import (
        enumerate_embeddings_iterative,
        enumerate_embeddings_recursive,
    )
    from repro.matching.plan import compile_plan

    matcher = CFQLMatcher()
    cases = []
    for q in queries:
        plan = compile_plan(q)
        for g in db.graphs():
            candidates = matcher.build_candidates(q, g, plan=plan)
            if candidates is None or not candidates.all_nonempty:
                continue
            order = tuple(matcher.matching_order(q, g, candidates, plan=plan))
            cases.append((q, g, candidates, order, plan))

    counts: dict[str, list[int]] = {}

    def run_kernel(kind: str):
        out = []
        for q, g, candidates, order, plan in cases:
            if kind == "recursive":
                r = enumerate_embeddings_recursive(q, g, candidates, order)
            else:
                r = enumerate_embeddings_iterative(
                    q,
                    g,
                    candidates,
                    order,
                    plan=plan,
                    prefix_cache=(kind == "iterative_prefix_cache"),
                )
            out.append(r.num_embeddings)
        counts[kind] = out
        return out

    kinds = ("recursive", "iterative", "iterative_prefix_cache")
    timings = {kind: _time_repeated(lambda k=kind: run_kernel(k), repeats) for kind in kinds}
    parity_ok = counts["recursive"] == counts["iterative"] == counts["iterative_prefix_cache"]
    recursive_median = timings["recursive"]["median_s"]
    out: dict = {
        "cases": len(cases),
        "total_embeddings": sum(counts["recursive"]),
        "parity_ok": parity_ok,
    }
    for kind in kinds:
        entry = dict(timings[kind])
        if kind != "recursive" and entry["median_s"] > 0:
            entry["speedup_vs_recursive"] = recursive_median / entry["median_s"]
        out[kind] = entry
    return out


def _plan_cache_bench(queries, repeats: int) -> dict:
    """Cold plan compilation vs cached lookup, plus the isomorphic hit.

    ``isomorphic_hit`` feeds a vertex-relabeled copy of a benchmark query
    to a warm cache and records whether the canonical key matched — the
    observable that distinguishes a plan cache from a dict of exact keys.
    """
    from repro.matching.plan import PlanCache, compile_plan

    def cold_compile():
        for q in queries:
            compile_plan(q)

    warm = PlanCache()
    for q in queries:
        warm.get(q)

    def cached_lookup():
        for q in queries:
            warm.get(q)

    cold = _time_repeated(cold_compile, repeats)
    cached = _time_repeated(cached_lookup, repeats)

    # Relabel the first query (reverse its vertex ids) and probe a cache
    # warmed only with the original.
    probe = PlanCache()
    query = queries[0]
    probe.get(query)
    n = query.num_vertices
    perm = [n - 1 - v for v in query.vertices()]
    labels = [0] * n
    for v in query.vertices():
        labels[perm[v]] = query.label(v)
    relabeled = type(query).from_edge_list(
        labels, [(perm[u], perm[v]) for u, v in query.edges()]
    )
    _, outcome = probe.get(relabeled)

    return {
        "queries": len(queries),
        "cold_compile": cold,
        "cached_lookup": cached,
        "speedup": (
            cold["median_s"] / cached["median_s"] if cached["median_s"] > 0 else None
        ),
        "isomorphic_hit": outcome == "hit",
    }


def _query_latency(db, queries, repeats: int) -> dict:
    """End-to-end single-query latency per matcher pipeline (in process)."""
    out: dict = {}
    for name in _MATCHERS:
        pipeline = create_pipeline(name)

        def run_all(p=pipeline):
            for q in queries:
                p.execute(q, db)

        out[name] = _time_repeated(run_all, repeats)
        out[name]["queries"] = len(queries)
    return out


def _run_serial(pipeline, queries, db, time_limit):
    executor = SubprocessExecutor()
    try:
        t0 = time.perf_counter()
        results = [executor.run(pipeline, q, db, time_limit) for q in queries]
        return time.perf_counter() - t0, results
    finally:
        executor.close()


def _run_parallel(pipeline, queries, db, time_limit, jobs):
    executor = ParallelExecutor(jobs=jobs)
    try:
        t0 = time.perf_counter()
        results = executor.run_many(pipeline, queries, db, time_limit)
        return time.perf_counter() - t0, results
    finally:
        executor.close()


def _parallel_speedup(db, queries, jobs: int, time_limit: float) -> dict:
    """Serial one-worker pool vs ``jobs``-worker pool, same workload."""
    pipeline = create_pipeline("CFQL")
    serial_s, serial_results = _run_serial(pipeline, queries, db, time_limit)
    parallel_s, parallel_results = _run_parallel(
        pipeline, queries, db, time_limit, jobs
    )
    identical = [_result_signature(r) for r in serial_results] == [
        _result_signature(r) for r in parallel_results
    ]
    return {
        "queries": len(queries),
        "jobs": jobs,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s if parallel_s > 0 else None,
        "identical_results": identical,
    }


def _overlap_speedup(db, jobs: int, delay_s: float, count: int) -> dict:
    """Pool-overlap check with sleep-bound queries (core-count agnostic).

    Every query sleeps ``delay_s`` via an injected fault before doing its
    (tiny) real work, so a correctly overlapping pool finishes the batch
    in ~``count / jobs`` sleeps.  This isolates the pool machinery from
    the machine's core count.
    """
    queries = generate_query_set(db, 4, False, size=count, seed=5).queries
    pipeline = create_pipeline("CFQL")
    faults.clear()
    try:
        faults.inject("query:start", "delay", arg=delay_s)
        serial_s, _ = _run_serial(pipeline, queries, db, None)
        parallel_s, _ = _run_parallel(pipeline, queries, db, None, jobs)
    finally:
        faults.clear()
    return {
        "queries": count,
        "jobs": jobs,
        "injected_delay_s": delay_s,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s if parallel_s > 0 else None,
    }


def _warm_start(db, queries, repeats: int) -> dict:
    """Snapshot load vs cold index build, per persisted index family.

    The store's reason for existing: loading a verified snapshot (framing,
    CRCs, parameters, database fingerprint all checked) should be much
    cheaper than rebuilding the index from the graphs.  The load timing
    includes the fingerprint verification — that is what a real warm
    start pays.  ``identical_candidates`` cross-checks that the warm-
    started index filters every benchmark query exactly like the cold-
    built one.
    """
    import shutil
    import tempfile

    from repro.store import IndexStore

    out: dict = {}
    tmp = tempfile.mkdtemp(prefix="repro-warmstart-")
    store = IndexStore(tmp)
    try:
        for name in ("Grapes", "GGSX"):
            cold = create_pipeline(name).index
            cold.build(db)
            store.save(cold, db)

            def cold_build(n=name):
                index = create_pipeline(n).index
                index.build(db)
                return index

            def warm_load(n=name):
                index = create_pipeline(n).index
                store.load_into(index, db)
                return index

            warm = warm_load(name)
            identical = all(
                cold.candidates(q) == warm.candidates(q) for q in queries
            )
            cold_t = _time_repeated(cold_build, repeats)
            warm_t = _time_repeated(warm_load, repeats)
            speedup = (
                cold_t["median_s"] / warm_t["median_s"]
                if warm_t["median_s"] > 0
                else None
            )
            out[name] = {
                "cold_build": cold_t,
                "snapshot_load": warm_t,
                "speedup": speedup,
                "snapshot_bytes": store.snapshot_path(cold.name).stat().st_size,
                "identical_candidates": identical,
            }
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    return out


def run_microbench(jobs: int = 4, quick: bool = False) -> dict:
    """Run every microbenchmark section; returns the report dict."""
    if quick:
        db = generate_database(
            num_graphs=10, num_vertices=30, avg_degree=4, num_labels=4, seed=11
        )
        queries = generate_query_set(db, 6, False, size=4, seed=13).queries
        speedup_db = generate_database(
            num_graphs=20, num_vertices=60, avg_degree=6, num_labels=3, seed=17
        )
        speedup_queries = generate_query_set(
            speedup_db, 10, False, size=6, seed=19
        ).queries
        repeats, delay_s, delay_count = 3, 0.2, 6
    else:
        db = generate_database(
            num_graphs=30, num_vertices=60, avg_degree=6, num_labels=4, seed=11
        )
        queries = generate_query_set(db, 8, False, size=8, seed=13).queries
        speedup_db = generate_database(
            num_graphs=60, num_vertices=120, avg_degree=8, num_labels=3, seed=17
        )
        speedup_queries = generate_query_set(
            speedup_db, 14, False, size=16, seed=19
        ).queries
        repeats, delay_s, delay_count = 5, 0.5, 8

    report = {
        "machine": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "workload": {
            "quick": quick,
            "kernel_db": f"{len(db)} graphs x ~{db.stats().avg_vertices:.0f} vertices",
            "speedup_db": (
                f"{len(speedup_db)} graphs x "
                f"~{speedup_db.stats().avg_vertices:.0f} vertices"
            ),
        },
        "bitset_kernels": _bitset_kernels(db, queries, repeats),
        "bitset_backend": _bitset_backend_bench(repeats, quick),
        "candidate_generation": _candidate_generation(db, queries, repeats),
        "enumeration": _enumeration_kernels(db, queries, repeats),
        "plan_cache": _plan_cache_bench(queries, repeats),
        "query_latency": _query_latency(db, queries, repeats),
        "parallel_speedup": _parallel_speedup(
            speedup_db, speedup_queries, jobs, time_limit=60.0
        ),
        "pool_overlap": _overlap_speedup(db, jobs, delay_s, delay_count),
        "warm_start": _warm_start(db, queries, repeats),
    }
    return report


def write_report(report: dict, path: str) -> None:
    # Atomic so a crash mid-dump never leaves a truncated BENCH file
    # where a previous complete one stood.
    atomic_write_text(path, json.dumps(report, indent=2) + "\n")
