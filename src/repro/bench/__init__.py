"""Benchmark harness: cached experiment matrices + per-artifact tables."""

from repro.bench.harness import (
    BenchConfig,
    IFV_ALGORITHMS,
    REAL_WORLD_ALGORITHMS,
    REAL_WORLD_DATASETS,
    SYNTHETIC_ALGORITHMS,
    build_engine,
    get_query_sets,
    get_real_dataset,
    get_synthetic_sweep,
    real_world_matrix,
    run_query_set,
    synthetic_matrix,
)
from repro.bench.reporting import Table, format_cell

__all__ = [
    "BenchConfig",
    "IFV_ALGORITHMS",
    "REAL_WORLD_ALGORITHMS",
    "REAL_WORLD_DATASETS",
    "SYNTHETIC_ALGORITHMS",
    "Table",
    "build_engine",
    "format_cell",
    "get_query_sets",
    "get_real_dataset",
    "get_synthetic_sweep",
    "real_world_matrix",
    "run_query_set",
    "synthetic_matrix",
]
