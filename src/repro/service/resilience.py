"""Service-level resilience primitives: circuit breaker, mutation dedup.

These are the pieces of the service's degraded mode that are pure state
machines — no sockets, no threads of their own — so they can be tested
exhaustively in isolation and driven by the scheduler thread (queries)
and connection threads (stats snapshots) without surprises.

**Circuit breaker** (:class:`CircuitBreaker`): consecutive *crash-class*
execution failures mean the worker pool cannot currently hold a worker —
a poison query, a storming host, an OOM-killer rampage.  Continuing to
dispatch just burns a respawn per request.  The breaker opens after
``threshold`` consecutive failures; while open, the service answers from
the result cache when it can and otherwise rejects fast with a
``degraded`` error carrying a ``retry_after_s`` hint.  After ``cooldown``
seconds one probe request is let through (half-open); success closes the
breaker, failure re-opens it for another cooldown.

**Mutation dedup** (:class:`MutationDedup`): a client retrying an
``add_graph`` after a lost response must not insert the graph twice.
Mutations carrying a client-generated ``request_key`` are remembered in a
bounded LRU window; a retry whose key is still in the window is answered
with the recorded response instead of re-applying the mutation.
"""

from __future__ import annotations

import collections
import threading
import time

__all__ = ["CircuitBreaker", "MutationDedup"]


class CircuitBreaker:
    """Classic closed → open → half-open breaker over execution failures.

    Thread-safe: the scheduler records outcomes while connection threads
    snapshot state for ``stats``.  A ``threshold`` of 0 disables the
    breaker entirely (:meth:`allow` always grants).
    """

    def __init__(self, threshold: int = 5, cooldown: float = 1.0) -> None:
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        if cooldown <= 0:
            raise ValueError("cooldown must be positive")
        self.threshold = threshold
        self.cooldown = cooldown
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive = 0
        self._opened_at = 0.0
        #: True while the single half-open probe is in flight.
        self._probing = False
        self.transitions: collections.Counter[str] = collections.Counter()

    def _transition(self, new_state: str) -> None:
        if new_state != self._state:
            self.transitions[f"{self._state}->{new_state}"] += 1
            self._state = new_state

    def allow(self) -> bool:
        """Whether a dispatch may proceed right now.

        While open, flips to half-open once the cooldown has elapsed and
        grants exactly one probe; further calls are refused until the
        probe reports back through :meth:`record_success` /
        :meth:`record_failure`.
        """
        if not self.threshold:
            return True
        with self._lock:
            if self._state == "closed":
                return True
            now = time.monotonic()
            if self._state == "open":
                if now - self._opened_at < self.cooldown:
                    return False
                self._transition("half_open")
                self._probing = True
                return True
            # half_open: one probe at a time.
            if self._probing:
                return False
            self._probing = True
            return True

    def record_success(self) -> None:
        if not self.threshold:
            return
        with self._lock:
            self._consecutive = 0
            self._probing = False
            if self._state != "closed":
                self._transition("closed")

    def record_failure(self) -> None:
        if not self.threshold:
            return
        with self._lock:
            self._consecutive += 1
            self._probing = False
            if self._state == "half_open" or (
                self._state == "closed" and self._consecutive >= self.threshold
            ):
                self._transition("open")
                self._opened_at = time.monotonic()

    def retry_after(self) -> float:
        """Seconds until the next probe could be admitted (0 when closed)."""
        with self._lock:
            if self._state != "open":
                return 0.0
            return max(0.0, self.cooldown - (time.monotonic() - self._opened_at))

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "enabled": bool(self.threshold),
                "state": self._state,
                "threshold": self.threshold,
                "cooldown_s": self.cooldown,
                "consecutive_failures": self._consecutive,
                "transitions": dict(self.transitions),
            }


class MutationDedup:
    """Bounded LRU window of answered mutation ``request_key``s.

    Only successful responses are recorded: a failed mutation did not
    change the database, so a retry is safe (and desirable) to re-apply.
    Accessed from the scheduler thread only, but locked anyway so the
    stats path may read ``hits``/size concurrently.
    """

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = capacity
        self.hits = 0
        self._lock = threading.Lock()
        self._entries: collections.OrderedDict[str, dict] = collections.OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def lookup(self, key: str) -> dict | None:
        """The recorded response for ``key``, or ``None`` (first sight)."""
        if not self.capacity or not key:
            return None
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return dict(entry)

    def store(self, key: str, response: dict) -> None:
        if not self.capacity or not key:
            return
        with self._lock:
            self._entries[key] = dict(response)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
