"""Long-running query serving on top of the engine and executors.

The serving layer turns the one-shot CLI pipeline into a resident
daemon: load the database and warm-start the indices once, then answer
queries over a socket for the life of the process —

* :mod:`repro.service.protocol` — the newline-delimited-JSON wire
  protocol, graph codec and address parsing;
* :mod:`repro.service.server` — :class:`QueryService`: bounded-queue
  admission control, the batching scheduler, the exact-match result
  cache, graceful drain and the ``stats`` verb;
* :mod:`repro.service.client` — the blocking :class:`ServiceClient`
  library with bounded retry/backoff (and :func:`wait_for_service` for
  scripts and tests);
* :mod:`repro.service.resilience` — the :class:`CircuitBreaker` and
  mutation-retry dedup window behind the service's degraded mode;
* :mod:`repro.service.bench` — the closed-/open-loop load generator
  behind ``repro bench-serve`` (including the ``--chaos`` suite).
"""

from repro.service.client import (
    ServiceClient,
    ServiceError,
    ServiceUnavailable,
    wait_for_service,
)
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    graph_from_wire,
    graph_key,
    graph_to_wire,
)
from repro.service.resilience import CircuitBreaker, MutationDedup
from repro.service.server import QueryService, ServiceConfig

__all__ = [
    "CircuitBreaker",
    "MutationDedup",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "QueryService",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceUnavailable",
    "graph_from_wire",
    "graph_key",
    "graph_to_wire",
    "wait_for_service",
]
