"""The long-running subgraph query service.

A :class:`QueryService` owns one warm :class:`~repro.core.engine.
SubgraphQueryEngine` — database loaded once, index built or warm-started
once — and serves queries over the NDJSON protocol of
:mod:`repro.service.protocol` for as long as the process lives.  The
pieces, in the order a request meets them:

* **admission control** — a bounded request queue.  A request that does
  not fit is rejected *immediately* with a structured ``overloaded``
  error; the service never builds an unbounded backlog and never answers
  load with silence.
* **batch scheduler** — one scheduler thread drains the queue in arrival
  order and coalesces adjacent queries (same time limit) into
  ``query_many`` batches of at most ``batch_max``, dispatched through the
  engine's executor — the PR 2 :class:`~repro.exec.parallel.
  ParallelExecutor` when the service runs with ``jobs > 1``, inheriting
  its per-query OOT/OOM/crash containment.  The scheduler is the *only*
  thread that touches the engine, so the core stays single-threaded.
* **result cache** — an LRU of exact-match answers keyed by
  :func:`~repro.service.protocol.graph_key`.  A repeat of a recently
  answered query skips dispatch entirely and is stamped ``cache: "hit"``.
  Database mutations (``add_graph``/``remove_graph``) invalidate exactly
  the entries they can affect — an insertion drops entries whose query
  labels the new graph covers, a removal drops entries whose cached
  answers named the removed graph — and also reach the engine-level
  containment cache and worker pool through the engine's own hooks.
* **durable mutations** — when the engine carries an
  :class:`~repro.store.IndexStore`, every mutation is journaled in the
  store's write-ahead log *before* it is applied or acknowledged, so a
  ``kill -9`` at any instant loses at most the unacknowledged request in
  flight.  The ``compact`` admin verb (and the ``wal_compact_threshold``
  auto-trigger) folds the journal into fresh snapshots; ``stats`` reports
  journal depth and warm-start replay counters under ``store``.
* **resilience layer** — per-request ``deadline_ms`` budgets propagate
  end to end (expired-in-queue requests are shed with a structured
  ``oot``; dispatched ones get their kernel budget clipped); a
  :class:`~repro.service.resilience.CircuitBreaker` opens after
  consecutive crash-class failures and answers from the cache or rejects
  fast with ``degraded`` + retry-after until a half-open probe succeeds;
  mutations carrying a client ``request_key`` are deduplicated across
  retries.  Run with the ``supervised`` executor for worker restart
  backoff and a restart-storm fuse underneath all of this.
* **graceful drain** — SIGTERM/SIGINT (or the ``shutdown`` verb) stop
  admission, finish every queued and in-flight request, then exit.  A
  kill during a batch loses nothing already answered: responses are
  written as each request completes.
* **metrics** — per-request records (queue wait, execution time, cache
  outcome, worker pid, batch size) are returned with every response and
  aggregated into mergeable :class:`~repro.utils.timing.LatencyHistogram`
  s surfaced by the ``stats`` verb.
"""

from __future__ import annotations

import collections
import os
import queue
import signal
import socket
import threading
import time
from dataclasses import dataclass

from repro.core.engine import SubgraphQueryEngine
from repro.exec import faults
from repro.service import protocol
from repro.service.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    encode_message,
    error_response,
    graph_from_wire,
    graph_key,
)
from repro.service.resilience import CircuitBreaker, MutationDedup
from repro.utils.timing import LatencyHistogram

__all__ = ["QueryService", "ServiceConfig"]


@dataclass(frozen=True)
class ServiceConfig:
    """Operational knobs of one service instance."""

    #: Bounded request-queue depth; the admission-control limit.  A
    #: request arriving when ``capacity`` requests are already queued is
    #: rejected with ``overloaded``.
    capacity: int = 64
    #: Most requests coalesced into one ``query_many`` dispatch.
    batch_max: int = 8
    #: Exact-match result-cache entries (0 disables the cache).
    cache_capacity: int = 128
    #: Per-query time budget when the request does not set one.
    default_time_limit: float | None = 600.0
    #: Consecutive crash-class execution failures that open the circuit
    #: breaker (0 disables it).  While open, cache-missed queries are
    #: rejected fast with ``degraded`` + a retry-after hint.
    breaker_threshold: int = 5
    #: Seconds the open breaker waits before letting one probe through.
    breaker_cooldown: float = 1.0
    #: Mutation ``request_key`` dedup-window entries (0 disables dedup).
    dedup_capacity: int = 512
    #: Auto-compaction trigger: when the attached store's write-ahead log
    #: holds at least this many records after a mutation, the scheduler
    #: folds it into fresh snapshots (0 disables; the ``compact`` verb
    #: always works).  Compaction failures are counted, never fatal.
    wal_compact_threshold: int = 0

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("capacity must be at least 1")
        if self.batch_max < 1:
            raise ValueError("batch_max must be at least 1")
        if self.cache_capacity < 0:
            raise ValueError("cache_capacity must be non-negative")
        if self.breaker_threshold < 0:
            raise ValueError("breaker_threshold must be non-negative")
        if self.breaker_cooldown <= 0:
            raise ValueError("breaker_cooldown must be positive")
        if self.dedup_capacity < 0:
            raise ValueError("dedup_capacity must be non-negative")
        if self.wal_compact_threshold < 0:
            raise ValueError("wal_compact_threshold must be non-negative")


class _Request:
    """One admitted operation waiting for the scheduler."""

    __slots__ = (
        "op", "request_id", "graph", "key", "time_limit", "no_cache",
        "payload", "respond", "enqueued_at", "deadline_at", "request_key",
    )

    def __init__(self, op, request_id, respond, *, graph=None, key=None,
                 time_limit=None, no_cache=False, payload=None,
                 deadline_ms=None, request_key=None) -> None:
        self.op = op
        self.request_id = request_id
        self.respond = respond
        self.graph = graph
        self.key = key
        self.time_limit = time_limit
        self.no_cache = no_cache
        self.payload = payload
        self.request_key = request_key
        self.enqueued_at = time.perf_counter()
        #: Absolute perf_counter moment the client's end-to-end budget
        #: expires; the clock starts at admission.
        self.deadline_at = (
            None if deadline_ms is None else self.enqueued_at + deadline_ms / 1000.0
        )


class _ResultCache:
    """LRU of finished query payloads, exact-match keyed.

    Each entry remembers its query's label set and its answer ids so
    mutations invalidate precisely instead of flushing everything: an
    insertion can only change the answers of queries whose labels the new
    graph covers, and a removal only affects entries whose cached answers
    named the removed graph (removal never adds answers).
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.entries_dropped = 0
        self._entries: collections.OrderedDict[
            str, tuple[dict, frozenset[int]]
        ] = collections.OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: str) -> dict | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry[0]

    def admit(self, key: str, payload: dict, labels: frozenset[int]) -> None:
        self._entries[key] = (payload, labels)
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def _drop(self, stale: list[str]) -> int:
        for key in stale:
            del self._entries[key]
        if stale:
            self.invalidations += 1
            self.entries_dropped += len(stale)
        return len(stale)

    def invalidate_added(self, graph_labels: frozenset[int]) -> int:
        """Drop entries the inserted graph could answer; returns the count."""
        return self._drop([
            key
            for key, (_, labels) in self._entries.items()
            if labels <= graph_labels
        ])

    def invalidate_removed(self, gid: int) -> int:
        """Drop entries whose cached answers include ``gid``."""
        return self._drop([
            key
            for key, (payload, _) in self._entries.items()
            if gid in payload.get("answers", ())
        ])

    def invalidate(self) -> None:
        """Unscoped full flush (admin/diagnostic; mutations use the
        scoped variants above)."""
        self.entries_dropped += len(self._entries)
        self._entries.clear()
        self.invalidations += 1


class QueryService:
    """Serves one engine over the NDJSON protocol (see module docs).

    The service separates mechanism from transport: :meth:`submit` /
    :meth:`run_scheduler` implement admission, batching, caching and
    drain against plain callables, and :meth:`serve` wires them to a
    listening socket.  Tests may drive :meth:`submit` directly.
    """

    def __init__(
        self,
        engine: SubgraphQueryEngine,
        config: ServiceConfig | None = None,
    ) -> None:
        self.engine = engine
        self.config = config or ServiceConfig()
        self.cache = _ResultCache(self.config.cache_capacity)
        self.breaker = CircuitBreaker(
            threshold=self.config.breaker_threshold,
            cooldown=self.config.breaker_cooldown,
        )
        self.dedup = MutationDedup(self.config.dedup_capacity)
        # Persist the dedup window across restarts: every request_key the
        # write-ahead log journaled with a recovered mutation is seeded
        # back, so a client retrying a mutation whose ack a crash
        # swallowed (wal.crash_before_ack) gets an idempotent replay
        # instead of a double-apply.  Compaction bounds the window — a
        # folded journal no longer carries its keys.
        self.dedup_seeded = 0
        if self.dedup.capacity:
            for key, op, gid in getattr(engine, "recovered_request_keys", ()):
                self.dedup.store(key, {
                    "ok": True,
                    "result": {
                        "gid": gid,
                        "num_graphs": len(engine.db),
                        "op": "add_graph" if op == "add" else "remove_graph",
                        "recovered": True,
                    },
                })
                self.dedup_seeded += 1
        self._queue: queue.Queue[_Request] = queue.Queue(maxsize=self.config.capacity)
        self._draining = threading.Event()
        self._drained = threading.Event()
        self._started_at = time.monotonic()
        self._lock = threading.Lock()  # counters + histograms
        self._counters = collections.Counter()
        self._hist_queue_wait = LatencyHistogram()
        self._hist_execution = LatencyHistogram()
        self._hist_total = LatencyHistogram()
        self._batch_count = 0
        self._batch_request_total = 0
        self._batch_max_seen = 0
        self._listener: socket.socket | None = None
        self._conns: set[socket.socket] = set()
        self._conn_lock = threading.Lock()
        self._exit_signal: int | None = None

    # ------------------------------------------------------------------
    # Admission (any thread)
    # ------------------------------------------------------------------

    def submit(self, message: dict, respond) -> None:
        """Admit one decoded request; ``respond(dict)`` delivers the answer.

        Never raises for a bad request and never blocks on a full queue —
        every outcome is a response, delivered either immediately
        (``ping``/``stats``/rejections) or later by the scheduler thread.
        """
        request_id = message.get("id")
        op = message.get("op")
        self._count("received")
        try:
            if op == "ping":
                respond({"id": request_id, "ok": True,
                         "result": {"protocol": PROTOCOL_VERSION, "pid": os.getpid()}})
                return
            if op == "stats":
                respond({"id": request_id, "ok": True, "result": self.stats()})
                return
            if op == "shutdown":
                # Acknowledge first: the drain closes this connection.
                respond({"id": request_id, "ok": True, "result": {"draining": True}})
                self.request_shutdown()
                return
            if op == "query":
                self._admit_query(message, request_id, respond)
                return
            if op in ("add_graph", "remove_graph"):
                self._admit_mutation(op, message, request_id, respond)
                return
            if op == "compact":
                # Admin verb: routed through the queue so it runs on the
                # scheduler thread (the only engine owner), after every
                # earlier mutation it must fold.
                self._enqueue(_Request("compact", request_id, respond))
                return
            if op == "rebalance":
                # Shard admin verb (split/merge/heal); scheduler thread
                # for the same reason as compact.
                shards = message.get("shards")
                if shards is not None and (
                    not isinstance(shards, int) or isinstance(shards, bool)
                    or shards < 1
                ):
                    raise ProtocolError(
                        f"shards must be a positive integer, got {shards!r}"
                    )
                self._enqueue(_Request("rebalance", request_id, respond,
                                       payload=shards))
                return
            raise ProtocolError(f"unknown op {op!r}")
        except ProtocolError as exc:
            self._count("bad_requests")
            respond(error_response(request_id, exc.code, str(exc)))
        except Exception as exc:  # never let a request kill a connection
            self._count("internal_errors")
            respond(error_response(
                request_id, "internal", f"{type(exc).__name__}: {exc}"
            ))

    def _admit_query(self, message: dict, request_id, respond) -> None:
        graph = graph_from_wire(message.get("graph"))
        time_limit = message.get("time_limit", self.config.default_time_limit)
        if time_limit is not None and (
            not isinstance(time_limit, (int, float)) or isinstance(time_limit, bool)
            or time_limit <= 0
        ):
            raise ProtocolError(f"time_limit must be a positive number, got "
                                f"{time_limit!r}")
        deadline_ms = message.get("deadline_ms")
        if deadline_ms is not None and (
            not isinstance(deadline_ms, (int, float)) or isinstance(deadline_ms, bool)
            or deadline_ms <= 0
        ):
            raise ProtocolError(f"deadline_ms must be a positive number, got "
                                f"{deadline_ms!r}")
        request = _Request(
            "query", request_id, respond,
            graph=graph, key=graph_key(graph),
            time_limit=None if time_limit is None else float(time_limit),
            no_cache=bool(message.get("no_cache", False)),
            deadline_ms=None if deadline_ms is None else float(deadline_ms),
        )
        self._enqueue(request)

    def _admit_mutation(self, op: str, message: dict, request_id, respond) -> None:
        request_key = message.get("request_key")
        if request_key is not None and not isinstance(request_key, str):
            raise ProtocolError("request_key must be a string")
        if op == "add_graph":
            request = _Request(op, request_id, respond,
                               graph=graph_from_wire(message.get("graph")),
                               request_key=request_key)
        else:
            gid = message.get("gid")
            if not isinstance(gid, int) or isinstance(gid, bool):
                raise ProtocolError("remove_graph needs an integer 'gid'")
            request = _Request(op, request_id, respond, payload=gid,
                               request_key=request_key)
        self._enqueue(request)

    def _enqueue(self, request: _Request) -> None:
        if self._draining.is_set():
            self._count("rejected_shutting_down")
            request.respond(error_response(
                request.request_id, "shutting_down",
                "service is draining and accepts no new requests",
            ))
            return
        try:
            self._queue.put_nowait(request)
        except queue.Full:
            self._count("rejected_overloaded")
            request.respond(error_response(
                request.request_id, "overloaded",
                f"request queue is full ({self.config.capacity} pending); "
                "back off and retry",
            ))

    def _count(self, key: str, n: int = 1) -> None:
        with self._lock:
            self._counters[key] += n

    # ------------------------------------------------------------------
    # Scheduling (the one engine-owning thread)
    # ------------------------------------------------------------------

    def run_scheduler(self) -> None:
        """Drain the request queue until shutdown completes the drain.

        Runs in the caller's thread.  Returns only when the service is
        draining *and* every admitted request has been answered.
        """
        try:
            while True:
                try:
                    first = self._queue.get(timeout=0.1)
                except queue.Empty:
                    if self._draining.is_set():
                        break
                    continue
                batch = [first]
                while len(batch) < self.config.batch_max:
                    try:
                        batch.append(self._queue.get_nowait())
                    except queue.Empty:
                        break
                self._process(batch)
        finally:
            # Close the race between "queue looked empty" and a request
            # admitted in the same instant the drain began: nothing that
            # was accepted goes unanswered.
            leftovers: list[_Request] = []
            while True:
                try:
                    leftovers.append(self._queue.get_nowait())
                except queue.Empty:
                    break
            for start in range(0, len(leftovers), self.config.batch_max):
                self._process(leftovers[start:start + self.config.batch_max])
            self._drained.set()

    def _process(self, batch: list[_Request]) -> None:
        """Answer one drained chunk in arrival order.

        Adjacent queries with the same time limit form one ``query_many``
        dispatch; a mutation is a batch boundary (it must observe all
        earlier answers and invalidate before later ones).  A request
        carrying a deadline dispatches solo: clipping the kernel budget
        to *its* remaining time must not truncate its batch-mates.
        """
        run: list[_Request] = []
        for request in batch:
            if request.op == "query":
                if run and (
                    run[0].time_limit != request.time_limit
                    or run[0].deadline_at is not None
                    or request.deadline_at is not None
                ):
                    self._dispatch(run)
                    run = []
                run.append(request)
            else:
                if run:
                    self._dispatch(run)
                    run = []
                if request.op == "compact":
                    self._apply_compact(request)
                elif request.op == "rebalance":
                    self._apply_rebalance(request)
                else:
                    self._apply_mutation(request)
        if run:
            self._dispatch(run)

    def _dispatch(self, run: list[_Request]) -> None:
        dispatch_start = time.perf_counter()
        # Deadline shedding: a request whose end-to-end budget expired
        # while it sat in the queue is answered *now* with a structured
        # ``oot`` — executing it would burn engine time on an answer the
        # client has already given up on.
        live: list[_Request] = []
        for request in run:
            if request.deadline_at is not None and dispatch_start >= request.deadline_at:
                self._count("shed_deadline")
                self._finish(request, self._shed_payload(request, dispatch_start),
                             "shed", dispatch_start, len(run))
            else:
                live.append(request)
        if not live:
            return
        run = live
        batch_size = len(run)
        with self._lock:
            self._batch_count += 1
            self._batch_request_total += batch_size
            self._batch_max_seen = max(self._batch_max_seen, batch_size)

        misses: list[_Request] = []
        # Identical queries coalesced into the same batch piggyback on a
        # single dispatch: the first occurrence computes, the rest are
        # answered from the freshly admitted cache entry.
        pending: dict[str, list[_Request]] = {}
        for request in run:
            cacheable = bool(self.cache.capacity) and not request.no_cache
            if cacheable and request.key in pending:
                pending[request.key].append(request)
                continue
            cached = self.cache.lookup(request.key) if cacheable else None
            if cached is not None:
                self._finish(request, dict(cached), "hit", dispatch_start,
                             batch_size)
            else:
                misses.append(request)
                if cacheable:
                    pending[request.key] = []
        if not misses:
            return

        # Circuit breaker gate: while open, requests the cache could not
        # answer are rejected fast with a retry-after hint instead of
        # feeding a pool that cannot currently hold workers.
        if not self.breaker.allow():
            retry_after = self.breaker.retry_after()
            for request in misses:
                for each in [request, *pending.get(request.key, ())]:
                    self._count("rejected_degraded")
                    each.respond(error_response(
                        each.request_id, "degraded",
                        "circuit breaker open after consecutive worker "
                        "failures; back off and retry",
                        retry_after=retry_after,
                    ))
            return

        time_limit = misses[0].time_limit
        deadline_at = misses[0].deadline_at
        if deadline_at is not None:
            # Deadline'd requests dispatch solo (see _process), so the
            # clip applies to exactly one query's kernel budget.
            remaining = max(0.001, deadline_at - time.perf_counter())
            time_limit = remaining if time_limit is None else min(time_limit, remaining)
        try:
            results = self.engine.query_many(
                [r.graph for r in misses], time_limit=time_limit
            )
        except Exception as exc:
            self.breaker.record_failure()
            for request in misses:
                for each in [request, *pending.get(request.key, ())]:
                    self._count("internal_errors")
                    each.respond(error_response(
                        each.request_id, "internal",
                        f"{type(exc).__name__}: {exc}",
                    ))
            return
        # Crash-class failures feed the breaker: each one means a worker
        # died and was respawned.  Anything else — success, OOT, OOM,
        # plain errors — proves the pool holds workers, and closes it.
        crashes = sum(
            1 for r in results
            if r.failure is not None and r.failure.kind == "crash"
        )
        if crashes:
            self._count("worker_crashes", crashes)
            for _ in range(crashes):
                self.breaker.record_failure()
        else:
            self.breaker.record_success()
        for request, result in zip(misses, results):
            payload = self._result_payload(result)
            cacheable = bool(self.cache.capacity) and not request.no_cache
            # A partial answer (a shard was down) must not be cached: it
            # would keep serving the degraded answer set after the shard
            # recovers.
            if cacheable and not result.failed and not result.metadata.get("partial"):
                self.cache.admit(
                    request.key, payload, frozenset(request.graph.label_set())
                )
            outcome = "bypass" if request.no_cache else (
                "miss" if self.cache.capacity else "off"
            )
            self._finish(request, dict(payload), outcome, dispatch_start,
                         batch_size)
            for duplicate in pending.get(request.key, ()) if cacheable else ():
                # A real lookup, so the hit/miss counters stay truthful
                # (a failed leader was not admitted: the repeat is a miss
                # answered with the leader's failure payload).
                entry = self.cache.lookup(duplicate.key)
                self._finish(
                    duplicate,
                    dict(entry) if entry is not None else dict(payload),
                    "hit" if entry is not None else "miss",
                    dispatch_start, batch_size,
                )

    @staticmethod
    def _shed_payload(request: _Request, now: float) -> dict:
        """A structured ``oot`` answer for a deadline expired in queue."""
        overshoot_ms = (now - request.deadline_at) * 1000.0
        return {
            "answers": [],
            "num_candidates": 0,
            "timed_out": True,
            "failure": {
                "kind": "oot",
                "message": (
                    "deadline expired while queued "
                    f"({overshoot_ms:.0f}ms past the budget); never executed"
                ),
                "retries": 0,
            },
            "query_time_s": 0.0,
            "filtering_time_s": 0.0,
            "verification_time_s": 0.0,
            "metadata": {"shed": "deadline"},
        }

    @staticmethod
    def _result_payload(result) -> dict:
        failure = None
        if result.failure is not None:
            failure = {
                "kind": result.failure.kind,
                "message": result.failure.message,
                "retries": result.failure.retries,
            }
        return {
            "answers": sorted(result.answers),
            "num_candidates": result.num_candidates,
            "timed_out": result.timed_out,
            "failure": failure,
            "query_time_s": result.query_time,
            "filtering_time_s": result.filtering_time,
            "verification_time_s": result.verification_time,
            "metadata": dict(result.metadata),
        }

    def _finish(self, request: _Request, payload: dict, cache_outcome: str,
                dispatch_start: float, batch_size: int) -> None:
        now = time.perf_counter()
        queue_wait = max(0.0, dispatch_start - request.enqueued_at)
        execution = 0.0 if cache_outcome == "hit" else payload["query_time_s"]
        payload["cache"] = cache_outcome
        payload["metrics"] = {
            "queue_wait_s": queue_wait,
            "execution_s": execution,
            "batch_size": batch_size,
            "worker_pid": (
                "cache" if cache_outcome == "hit"
                else payload["metadata"].get("worker_pid", os.getpid())
            ),
        }
        with self._lock:
            self._counters["answered"] += 1
            if payload["timed_out"] or payload["failure"] is not None:
                self._counters["query_failures"] += 1
            self._hist_queue_wait.record(queue_wait)
            self._hist_execution.record(execution)
            self._hist_total.record(now - request.enqueued_at)
        request.respond({"id": request.request_id, "ok": True, "result": payload})

    def _apply_mutation(self, request: _Request) -> None:
        # Retry dedup: a mutation whose request_key was already answered
        # inside the window is a client resend after a lost response —
        # replay the recorded answer instead of applying it twice.
        if request.request_key:
            replay = self.dedup.lookup(request.request_key)
            if replay is not None:
                self._count("dedup_hits")
                replay["id"] = request.request_id
                replay["result"] = {**replay.get("result", {}),
                                    "deduplicated": True}
                request.respond(replay)
                return
        try:
            if request.op == "add_graph":
                gid = self.engine.add_graph(
                    request.graph, request_key=request.request_key
                )
                result = {"gid": gid, "num_graphs": len(self.engine.db)}
                if self.cache.capacity:
                    self.cache.invalidate_added(
                        frozenset(request.graph.label_set())
                    )
            else:
                self.engine.remove_graph(
                    request.payload, request_key=request.request_key
                )
                result = {"gid": request.payload, "num_graphs": len(self.engine.db)}
                if self.cache.capacity:
                    self.cache.invalidate_removed(request.payload)
        except KeyError as exc:
            # Removal of an unknown graph id: a terminal, structured
            # rejection — retrying the identical request can only fail
            # the same way, so clients must not retry it.
            self._count("not_found")
            request.respond(error_response(
                request.request_id, "not_found",
                exc.args[0] if exc.args else str(exc),
            ))
            return
        except Exception as exc:
            self._count("bad_requests")
            request.respond(error_response(
                request.request_id, "bad_request", f"{type(exc).__name__}: {exc}"
            ))
            return
        self._count("mutations")
        response = {"id": request.request_id, "ok": True, "result": result}
        if request.request_key:
            self.dedup.store(request.request_key, response)
        # Chaos brackets around the acknowledgement: the mutation is
        # journaled and applied by now, so a crash on either side must be
        # recoverable — before the ack the client sees a lost response
        # (and may retry into the dedup window), after it the mutation is
        # acknowledged and must survive verbatim.
        faults.trip("wal.crash_before_ack", tag=request.op)
        request.respond(response)
        faults.trip("wal.crash_after_ack", tag=request.op)
        self._maybe_compact()

    def _apply_compact(self, request: _Request) -> None:
        """The ``compact`` admin verb (scheduler thread only)."""
        if self.engine.store is None:
            self._count("bad_requests")
            request.respond(error_response(
                request.request_id, "bad_request",
                "no index store attached; run the service with an index "
                "store to enable compaction",
            ))
            return
        try:
            summary = self.engine.compact_store()
        except Exception as exc:
            self._count("internal_errors")
            request.respond(error_response(
                request.request_id, "internal", f"{type(exc).__name__}: {exc}"
            ))
            return
        self._count("compactions")
        request.respond({"id": request.request_id, "ok": True, "result": summary})

    def _apply_rebalance(self, request: _Request) -> None:
        """The ``rebalance`` shard-admin verb (scheduler thread only)."""
        rebalance = getattr(self.engine, "rebalance", None)
        if rebalance is None:
            self._count("bad_requests")
            request.respond(error_response(
                request.request_id, "bad_request",
                "engine is not sharded; run the service with --shards to "
                "enable rebalancing",
            ))
            return
        try:
            summary = rebalance(request.payload)
        except Exception as exc:
            self._count("bad_requests")
            request.respond(error_response(
                request.request_id, "bad_request",
                f"{type(exc).__name__}: {exc}",
            ))
            return
        # Placement may have changed under cached answers' feet only if
        # graphs moved — answer sets are placement-independent, so the
        # cache stays valid; nothing to invalidate.
        self._count("rebalances")
        request.respond({"id": request.request_id, "ok": True, "result": summary})

    def _maybe_compact(self) -> None:
        """Fold the journal when it has grown past the configured depth."""
        threshold = self.config.wal_compact_threshold
        engine = self.engine
        if not threshold or engine.store is None:
            return
        if engine.store.wal.depth < threshold:
            return
        try:
            engine.compact_store()
        except Exception:
            # Auto-compaction is background hygiene: a failure (disk
            # full, injected fault) leaves the journal in place and the
            # service fully correct — count it and move on.
            self._count("compaction_errors")
            return
        self._count("compactions")

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        engine = self.engine
        with self._lock:
            counters = dict(self._counters)
            batches = {
                "count": self._batch_count,
                "max_size": self._batch_max_seen,
                "mean_size": (
                    self._batch_request_total / self._batch_count
                    if self._batch_count else 0.0
                ),
            }
            latency = {
                "queue_wait": self._hist_queue_wait.summary(),
                "execution": self._hist_execution.summary(),
                "total": self._hist_total.summary(),
            }
            histograms = {
                "queue_wait": self._hist_queue_wait.to_dict(),
                "execution": self._hist_execution.to_dict(),
                "total": self._hist_total.to_dict(),
            }
        # Age of the oldest waiting request: the operator-facing wedge
        # signal (a deep queue is fine; an *old* head means the scheduler
        # is stuck).  Peeked under the queue's own mutex.
        oldest_wait = None
        with self._queue.mutex:
            if self._queue.queue:
                oldest_wait = time.perf_counter() - self._queue.queue[0].enqueued_at
        cache_lookups = self.cache.hits + self.cache.misses
        return {
            "protocol": PROTOCOL_VERSION,
            "pid": os.getpid(),
            "uptime_s": time.monotonic() - self._started_at,
            "draining": self._draining.is_set(),
            "engine": {
                "algorithm": engine.name,
                "num_graphs": len(engine.db),
                "executor": type(engine.executor).__name__,
                "index_source": engine.index_source,
                "degraded": engine.degraded,
                "containment_cache": engine.cache is not None,
            },
            "queue": {"capacity": self.config.capacity,
                      "depth": self._queue.qsize(),
                      "oldest_wait_s": oldest_wait},
            # Per-worker liveness (None for in-process execution).
            "workers": engine.executor_stats(),
            "breaker": self.breaker.snapshot(),
            # Per-shard health rows (None for an unsharded engine).
            "shards": (
                engine.shard_stats()
                if hasattr(engine, "shard_stats") else None
            ),
            # Router label-summary pruning counters (None when unsharded).
            "pruning": (
                engine.prune_stats()
                if hasattr(engine, "prune_stats") else None
            ),
            "dedup": {
                "capacity": self.dedup.capacity,
                "size": len(self.dedup),
                "hits": self.dedup.hits,
                "seeded": self.dedup_seeded,
            },
            "requests": counters,
            "batches": batches,
            "cache": {
                "capacity": self.cache.capacity,
                "size": len(self.cache),
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "hit_rate": self.cache.hits / cache_lookups if cache_lookups else 0.0,
                "invalidations": self.cache.invalidations,
                "entries_dropped": self.cache.entries_dropped,
            },
            # Durable-store state: journal depth, warm-start replay
            # counters, compactions (None without an index store).
            "store": engine.store_stats(),
            # Compiled-query-plan cache (isomorphism-invariant, unlike the
            # exact-match result cache above).
            "plan_cache": (
                engine.plans.stats() if engine.plans is not None
                else {"enabled": False}
            ),
            "latency": latency,
            "histograms": histograms,
        }

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------

    def request_shutdown(self, signum: int | None = None) -> None:
        """Begin the graceful drain; safe from any thread or a signal
        handler, idempotent."""
        if signum is not None and self._exit_signal is None:
            self._exit_signal = signum
        if self._draining.is_set():
            return
        self._draining.set()
        # Refuse new connections immediately; closing the listener
        # unblocks the accept loop.
        listener = self._listener
        if listener is not None:
            try:
                listener.close()
            except OSError:
                pass

    # ------------------------------------------------------------------
    # Socket transport
    # ------------------------------------------------------------------

    def serve(self, listen_address: str, *, ready_callback=None) -> int:
        """Listen, serve until drained, and return a CLI exit code.

        Runs the scheduler in the calling thread (so SIGTERM/SIGINT
        handlers installed here fire promptly when that is the main
        thread) and one reader thread per connection.  Returns 0 after a
        ``shutdown``-verb drain, ``128 + signum`` after a signal drain.
        """
        self._listener = protocol.listen(listen_address)
        restore: list[tuple[int, object]] = []
        if threading.current_thread() is threading.main_thread():
            for sig in (signal.SIGTERM, signal.SIGINT):
                previous = signal.signal(
                    sig, lambda signum, frame: self.request_shutdown(signum)
                )
                restore.append((sig, previous))
        accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-serve-accept", daemon=True
        )
        accept_thread.start()
        if ready_callback is not None:
            ready_callback(self)
        try:
            self.run_scheduler()
        finally:
            self.request_shutdown()
            for sig, previous in restore:
                signal.signal(sig, previous)
            accept_thread.join(timeout=5.0)
            with self._conn_lock:
                conns = list(self._conns)
            for conn in conns:
                try:
                    conn.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    conn.close()
                except OSError:
                    pass
            self.engine.close()
        return 0 if self._exit_signal is None else 128 + self._exit_signal

    def _accept_loop(self) -> None:
        listener = self._listener
        while not self._draining.is_set():
            try:
                conn, _ = listener.accept()
            except OSError:
                return  # listener closed by the drain
            with self._conn_lock:
                self._conns.add(conn)
            threading.Thread(
                target=self._client_loop, args=(conn,),
                name="repro-serve-client", daemon=True,
            ).start()

    def _client_loop(self, conn: socket.socket) -> None:
        write_lock = threading.Lock()

        def respond(payload: dict) -> None:
            data = encode_message(payload)
            try:
                with write_lock:
                    conn.sendall(data)
            except OSError:
                pass  # client went away; the answer is simply dropped

        try:
            with conn.makefile("rb") as rfile:
                while True:
                    line = rfile.readline(MAX_LINE_BYTES + 2)
                    if not line:
                        return
                    # Chaos hook: a ``drop`` here models the transport
                    # dying just as a request arrives — the raised
                    # ConnectionResetError unwinds into the OSError
                    # handler below and closes this connection, which is
                    # exactly what a retrying client must survive.
                    faults.trip("serve.connection")
                    if len(line) > MAX_LINE_BYTES:
                        respond(error_response(
                            None, "bad_request",
                            f"request line exceeds {MAX_LINE_BYTES} bytes",
                        ))
                        return  # cannot resynchronise mid-line
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        message = protocol.decode_line(line)
                    except ProtocolError as exc:
                        self._count("bad_requests")
                        respond(error_response(None, exc.code, str(exc)))
                        continue
                    self.submit(message, respond)
        except OSError:
            pass
        finally:
            with self._conn_lock:
                self._conns.discard(conn)
            try:
                conn.close()
            except OSError:
                pass
