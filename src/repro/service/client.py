"""Blocking client for the subgraph query service.

One :class:`ServiceClient` wraps one connection and speaks the NDJSON
protocol synchronously: each call sends a request line and blocks for the
matching response line.  Protocol-level rejections (``overloaded``,
``degraded``, ``shutting_down``, ``bad_request``) raise
:class:`ServiceError` with the structured code; a *transport* failure —
connection refused, reset mid-read, or closed by the service — raises the
:class:`ServiceUnavailable` subclass instead, so callers can tell "the
service said no" from "the wire died" without parsing messages.
Per-query algorithmic failures (OOT/OOM/crash) do *not* raise — they come
back inside the result payload, exactly like
:class:`~repro.core.metrics.QueryResult` does locally.

Retries: construct with ``retries=N`` and the client transparently
retries *safe* operations — reads, queries (queries are idempotent), and
mutations (made idempotent by the client-generated ``request_key`` the
server deduplicates on) — after transport failures and after retryable
rejections (:data:`~repro.service.protocol.RETRYABLE_CODES`), honouring
the server's ``retry_after_s`` hint and reconnecting as needed.

Typical use::

    from repro.service.client import ServiceClient

    with ServiceClient("unix:/tmp/repro.sock", retries=3) as client:
        result = client.query(graph, deadline_ms=250)
        print(result["answers"], result["cache"])
        print(client.stats()["breaker"]["state"])
"""

from __future__ import annotations

import socket
import time
import uuid

from repro.graph.labeled_graph import Graph
from repro.service.protocol import (
    MAX_LINE_BYTES,
    RETRYABLE_CODES,
    ProtocolError,
    connect,
    decode_line,
    encode_message,
    graph_to_wire,
)
from repro.utils.errors import ReproError

__all__ = [
    "ServiceClient",
    "ServiceError",
    "ServiceUnavailable",
    "wait_for_service",
]


class ServiceError(ReproError):
    """An error response from the service, with its stable ``code``.

    ``retry_after`` carries the server's backoff hint in seconds when the
    response included one (``degraded`` rejections do), else ``None``.
    """

    def __init__(self, code: str, message: str,
                 retry_after: float | None = None) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.retry_after = retry_after


class ServiceUnavailable(ServiceError):
    """The transport failed before a response arrived.

    Raised for connection loss (reset/refused/closed mid-exchange) rather
    than for any structured server answer.  Always safe to retry reads
    and queries; mutations are safe to retry because each logical
    mutation carries one ``request_key`` the server deduplicates on.
    """

    def __init__(self, message: str) -> None:
        super().__init__("unavailable", message)


class ServiceClient:
    """A synchronous connection to a running query service.

    ``retries`` bounds *extra* attempts per logical call (0 = fail fast);
    ``retry_backoff`` seeds the exponential client-side backoff used when
    the server's response carried no ``retry_after_s`` hint.
    """

    def __init__(
        self,
        address: str,
        timeout: float | None = None,
        retries: int = 0,
        retry_backoff: float = 0.05,
    ) -> None:
        if retries < 0:
            raise ValueError("retries must be non-negative")
        self.address = address
        self.timeout = timeout
        self.retries = retries
        self.retry_backoff = retry_backoff
        self._sock: socket.socket | None = None
        self._rfile = None
        self._next_id = 0
        self._connect()

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def _connect(self) -> None:
        self._teardown()
        try:
            self._sock = connect(self.address, timeout=self.timeout)
        except OSError as exc:
            raise ServiceUnavailable(f"cannot connect to {self.address}: {exc}") \
                from exc
        self._rfile = self._sock.makefile("rb")

    def _teardown(self) -> None:
        if self._rfile is not None:
            try:
                self._rfile.close()
            except OSError:
                pass
            self._rfile = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _exchange(self, message: dict) -> dict:
        """One send/receive round trip; :class:`ServiceUnavailable` when
        the wire dies at any point."""
        if self._sock is None:
            self._connect()
        try:
            self._sock.sendall(encode_message(message))
            line = self._rfile.readline(MAX_LINE_BYTES + 2)
        except (OSError, socket.timeout) as exc:
            self._teardown()
            raise ServiceUnavailable(f"connection lost: {exc}") from exc
        if not line:
            self._teardown()
            raise ServiceUnavailable("connection closed by the service")
        response = decode_line(line.strip())
        if response.get("id") not in (message["id"], None):
            raise ProtocolError(
                f"response id {response.get('id')!r} does not match request "
                f"id {message['id']!r}"
            )
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ServiceError(
                error.get("code", "internal"),
                error.get("message", "unknown error"),
                retry_after=error.get("retry_after_s"),
            )
        return response.get("result", {})

    def _call(self, message: dict, retryable: bool | None = None) -> dict:
        """Send one request with the client's retry budget.

        ``retryable`` defaults to True for anything carrying a
        ``request_key`` (deduplicated server-side) and for everything
        else too — every verb without a key is a read or an idempotent
        query.  Pass False to force fail-fast semantics.
        """
        if retryable is None:
            retryable = True
        attempts = 0
        while True:
            self._next_id += 1
            framed = {"id": self._next_id, **message}
            try:
                return self._exchange(framed)
            except ServiceUnavailable:
                if not retryable or attempts >= self.retries:
                    raise
                delay = self.retry_backoff * (2 ** attempts)
                attempts += 1
                time.sleep(delay)
                try:
                    self._connect()
                except ServiceUnavailable:
                    continue  # spend another attempt on the reconnect
            except ServiceError as exc:
                if (not retryable or attempts >= self.retries
                        or exc.code not in RETRYABLE_CODES):
                    raise
                delay = exc.retry_after
                if delay is None:
                    delay = self.retry_backoff * (2 ** attempts)
                attempts += 1
                time.sleep(delay)

    # ------------------------------------------------------------------
    # Verbs
    # ------------------------------------------------------------------

    def ping(self) -> dict:
        return self._call({"op": "ping"})

    def stats(self) -> dict:
        return self._call({"op": "stats"})

    def query(
        self,
        graph: "Graph | dict",
        time_limit: float | None = None,
        no_cache: bool = False,
        deadline_ms: float | None = None,
    ) -> dict:
        """Answer one subgraph query; returns the result payload.

        The payload mirrors a :class:`~repro.core.metrics.QueryResult`:
        ``answers`` (sorted graph ids), ``timed_out``, ``failure``,
        per-phase timings, ``cache`` (``hit``/``miss``/``bypass``/``off``/
        ``shed``) and the per-request ``metrics`` record (queue wait,
        execution time, batch size, worker pid).

        ``deadline_ms`` is an end-to-end budget: the server sheds the
        request with a structured ``oot`` if it is still queued past the
        deadline, and clips the kernel time limit to the remaining budget
        otherwise.
        """
        wire = graph_to_wire(graph) if isinstance(graph, Graph) else graph
        message: dict = {"op": "query", "graph": wire}
        if time_limit is not None:
            message["time_limit"] = time_limit
        if no_cache:
            message["no_cache"] = True
        if deadline_ms is not None:
            message["deadline_ms"] = deadline_ms
        return self._call(message)

    def add_graph(self, graph: "Graph | dict") -> int:
        """Insert a data graph; returns its assigned id.  Invalidates the
        service's result cache (and the engine's index/worker state).

        One ``request_key`` covers all retries of this logical insert, so
        a retry after a lost response cannot insert the graph twice.
        """
        wire = graph_to_wire(graph) if isinstance(graph, Graph) else graph
        message = {"op": "add_graph", "graph": wire,
                   "request_key": uuid.uuid4().hex}
        return self._call(message)["gid"]

    def remove_graph(self, gid: int) -> None:
        """Delete a data graph by id.

        Raises :class:`ServiceError` with code ``not_found`` when no such
        graph exists — terminal by design: it is not in
        :data:`~repro.service.protocol.RETRYABLE_CODES`, so the retry
        loop never resends it (the identical request can only fail the
        same way).
        """
        self._call({"op": "remove_graph", "gid": gid,
                    "request_key": uuid.uuid4().hex})

    def compact(self) -> dict:
        """Fold the service's write-ahead mutation log into snapshots.

        Returns the compaction summary (``wal_seq``, ``folded``,
        ``log_depth``, ``snapshots``).  Requires the service to run with
        an index store; idempotent, so safe to retry.
        """
        return self._call({"op": "compact"})

    def rebalance(self, shards: int | None = None) -> dict:
        """Migrate graphs onto their owning shards (sharded services).

        With ``shards`` the fleet is first grown or shrunk to that count
        (the ``shard split`` admin path).  Returns the migration summary
        (``num_shards``, ``moved``, ``healed``, per-shard graph counts).
        Idempotent — the moves are journaled two-phase, so retrying after
        a lost response only heals whatever the first attempt finished.
        """
        message: dict = {"op": "rebalance"}
        if shards is not None:
            message["shards"] = shards
        return self._call(message)

    def shutdown(self) -> None:
        """Ask the service to drain gracefully and exit.

        Never retried: a lost response almost always means the drain is
        already under way.
        """
        self._call({"op": "shutdown"}, retryable=False)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        self._teardown()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def wait_for_service(
    address: str, timeout: float = 10.0, poll_interval: float = 0.05
) -> None:
    """Block until a service answers ``ping`` at ``address``.

    Used by tests and the CI smoke script to synchronise with a service
    that was just started in another thread or process.  Raises
    :class:`ServiceError` when the deadline passes without an answer.
    """
    deadline = time.monotonic() + timeout
    last: Exception | None = None
    while time.monotonic() < deadline:
        try:
            with ServiceClient(address, timeout=poll_interval * 10) as client:
                client.ping()
                return
        except (OSError, ReproError, socket.timeout) as exc:
            last = exc
            time.sleep(poll_interval)
    raise ServiceError(
        "internal", f"service at {address} did not come up within {timeout}s "
        f"(last error: {last})"
    )
