"""Blocking client for the subgraph query service.

One :class:`ServiceClient` wraps one connection and speaks the NDJSON
protocol synchronously: each call sends a request line and blocks for the
matching response line.  Protocol-level rejections (``overloaded``,
``shutting_down``, ``bad_request``) raise :class:`ServiceError` with the
structured code; per-query algorithmic failures (OOT/OOM/crash) do *not*
raise — they come back inside the result payload, exactly like
:class:`~repro.core.metrics.QueryResult` does locally.

Typical use::

    from repro.service.client import ServiceClient

    with ServiceClient("unix:/tmp/repro.sock") as client:
        result = client.query(graph)          # graph: repro Graph or wire dict
        print(result["answers"], result["cache"])
        print(client.stats()["cache"]["hits"])
"""

from __future__ import annotations

import socket
import time

from repro.graph.labeled_graph import Graph
from repro.service.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    connect,
    decode_line,
    encode_message,
    graph_to_wire,
)
from repro.utils.errors import ReproError

__all__ = ["ServiceClient", "ServiceError", "wait_for_service"]


class ServiceError(ReproError):
    """An error response from the service, with its stable ``code``."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code


class ServiceClient:
    """A synchronous connection to a running query service."""

    def __init__(self, address: str, timeout: float | None = None) -> None:
        self.address = address
        self._sock = connect(address, timeout=timeout)
        self._rfile = self._sock.makefile("rb")
        self._next_id = 0

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def _call(self, message: dict) -> dict:
        self._next_id += 1
        message = {"id": self._next_id, **message}
        try:
            self._sock.sendall(encode_message(message))
            line = self._rfile.readline(MAX_LINE_BYTES + 2)
        except OSError as exc:
            raise ServiceError("internal", f"connection lost: {exc}") from exc
        if not line:
            raise ServiceError("internal", "connection closed by the service")
        response = decode_line(line.strip())
        if response.get("id") not in (message["id"], None):
            raise ProtocolError(
                f"response id {response.get('id')!r} does not match request "
                f"id {message['id']!r}"
            )
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ServiceError(
                error.get("code", "internal"), error.get("message", "unknown error")
            )
        return response.get("result", {})

    # ------------------------------------------------------------------
    # Verbs
    # ------------------------------------------------------------------

    def ping(self) -> dict:
        return self._call({"op": "ping"})

    def stats(self) -> dict:
        return self._call({"op": "stats"})

    def query(
        self,
        graph: "Graph | dict",
        time_limit: float | None = None,
        no_cache: bool = False,
    ) -> dict:
        """Answer one subgraph query; returns the result payload.

        The payload mirrors a :class:`~repro.core.metrics.QueryResult`:
        ``answers`` (sorted graph ids), ``timed_out``, ``failure``,
        per-phase timings, ``cache`` (``hit``/``miss``/``bypass``/``off``)
        and the per-request ``metrics`` record (queue wait, execution
        time, batch size, worker pid).
        """
        wire = graph_to_wire(graph) if isinstance(graph, Graph) else graph
        message: dict = {"op": "query", "graph": wire}
        if time_limit is not None:
            message["time_limit"] = time_limit
        if no_cache:
            message["no_cache"] = True
        return self._call(message)

    def add_graph(self, graph: "Graph | dict") -> int:
        """Insert a data graph; returns its assigned id.  Invalidates the
        service's result cache (and the engine's index/worker state)."""
        wire = graph_to_wire(graph) if isinstance(graph, Graph) else graph
        return self._call({"op": "add_graph", "graph": wire})["gid"]

    def remove_graph(self, gid: int) -> None:
        self._call({"op": "remove_graph", "gid": gid})

    def shutdown(self) -> None:
        """Ask the service to drain gracefully and exit."""
        self._call({"op": "shutdown"})

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        try:
            self._rfile.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def wait_for_service(
    address: str, timeout: float = 10.0, poll_interval: float = 0.05
) -> None:
    """Block until a service answers ``ping`` at ``address``.

    Used by tests and the CI smoke script to synchronise with a service
    that was just started in another thread or process.  Raises
    :class:`ServiceError` when the deadline passes without an answer.
    """
    deadline = time.monotonic() + timeout
    last: Exception | None = None
    while time.monotonic() < deadline:
        try:
            with ServiceClient(address, timeout=poll_interval * 10) as client:
                client.ping()
                return
        except (OSError, ReproError, socket.timeout) as exc:
            last = exc
            time.sleep(poll_interval)
    raise ServiceError(
        "internal", f"service at {address} did not come up within {timeout}s "
        f"(last error: {last})"
    )
