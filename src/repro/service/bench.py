"""Closed- and open-loop load benchmark for the query service.

Answers the serving-side questions the per-query microbenchmarks cannot:
what throughput does a *resident* engine sustain under concurrent
clients, what do tail latencies look like once queue wait is included,
and how much the result cache buys on repeated workloads.

Two load models, both driven through real sockets and the real client
library:

* **closed loop** — ``concurrency`` clients, each with one connection,
  each sending its next query the moment the previous answer arrives.
  Throughput scales with client count until the service saturates;
  latency hides queueing (each client only ever has one request in
  flight).
* **open loop** — requests depart on a fixed schedule (``rate`` per
  second) regardless of completions, the way independent users arrive.
  Latency is measured from the *scheduled* departure time, so queue
  buildup shows up in the tail instead of being silently absorbed
  (no coordinated omission).

A **sharding sweep** (always on) prices scatter-gather routing: the same
workload is served at every count in ``shard_counts`` (1/2/4 by default)
and each cell's answers are asserted bit-identical to an unsharded
reference engine before its throughput is recorded.

Each cell runs against a fresh service (fresh cache, fresh counters) on a
Unix socket.  Per-thread latencies land in private
:class:`~repro.utils.timing.LatencyHistogram` s merged at reporting time
— the same mergeable histogram the service itself uses.  Results are
written to ``BENCH_serve.json`` by ``repro bench-serve``.

``repro bench-serve --chaos`` additionally runs the **resilience suite**
(:func:`run_resilience_bench`): supervised-vs-in-process overhead cells,
a scripted breaker lifecycle (crash storm → ``degraded`` rejections →
recovery probe), and a chaos cell that injects ``worker.query`` crashes
into ~10 % of executions under closed-loop load, and a durability cell
that prices the write-ahead mutation log and proves recovery replays
every journaled mutation bit-identically.  The chaos and durability
cells are self-asserting — the service must survive, every request must
receive a terminal response, the pool must show restarts, and recovery
must reproduce the mutated database exactly — so a regression fails the
run instead of silently skewing a number.
"""

from __future__ import annotations

import json
import os
import platform
import tempfile
import threading
import time
from dataclasses import asdict, dataclass, replace

from repro.core.algorithms import create_engine
from repro.exec import create_executor, faults
from repro.graph.database import GraphDatabase
from repro.graph.generators import generate_database
from repro.service.client import ServiceClient, ServiceError, wait_for_service
from repro.service.server import QueryService, ServiceConfig
from repro.store import IndexStore, database_fingerprint
from repro.utils.fsio import atomic_write_text
from repro.utils.timing import LatencyHistogram
from repro.workloads.querysets import generate_query_set

__all__ = [
    "BenchServeConfig",
    "run_bench_serve",
    "run_resilience_bench",
    "write_report",
]


@dataclass(frozen=True)
class BenchServeConfig:
    """Workload and matrix knobs for one ``bench-serve`` run."""

    algorithm: str = "CFQL"
    num_graphs: int = 60
    num_vertices: int = 24
    avg_degree: float = 2.8
    num_labels: int = 5
    query_edges: int = 5
    num_queries: int = 12
    requests_per_client: int = 40
    concurrency: tuple[int, ...] = (1, 2, 4)
    jobs: int = 1
    time_limit: float = 60.0
    capacity: int = 64
    batch_max: int = 8
    cache_capacity: int = 128
    #: Open-loop arrival rate in requests/s; None derives ~75 % of the
    #: measured closed-loop throughput so the queue is loaded but stable.
    open_loop_rate: float | None = None
    open_loop_requests: int = 80
    seed: int = 0
    #: Resilience-suite knobs (``--chaos``): client fan-out for the
    #: supervised-vs-in-process overhead cells, pool width for the
    #: supervised cells, and the deterministic crash rate of the chaos
    #: cell (every N-th worker execution crashes; 10 = 10 %).
    resilience_concurrency: tuple[int, ...] = (1, 4)
    resilience_jobs: int = 2
    chaos_crash_every: int = 10
    chaos_requests_per_client: int = 25
    #: Shard counts for the scatter-gather scaling sweep; every cell is
    #: asserted bit-identical to an unsharded reference engine.
    shard_counts: tuple[int, ...] = (1, 2, 4)

    @classmethod
    def quick(cls) -> "BenchServeConfig":
        """CI-sized variant: seconds, not minutes."""
        # Fewer distinct queries than requests per client, so even the
        # single-client cell repeats queries and exercises the cache.
        return cls(
            num_graphs=24,
            num_queries=6,
            requests_per_client=12,
            concurrency=(1, 2),
            open_loop_requests=24,
            resilience_concurrency=(1, 2),
            chaos_crash_every=6,
            chaos_requests_per_client=15,
            shard_counts=(1, 2),
        )


def _make_workload(config: BenchServeConfig):
    db = generate_database(
        num_graphs=config.num_graphs,
        num_vertices=config.num_vertices,
        avg_degree=config.avg_degree,
        num_labels=config.num_labels,
        seed=config.seed,
        name="bench-serve",
    )
    queries = list(
        generate_query_set(
            db,
            num_edges=config.query_edges,
            dense=False,
            size=config.num_queries,
            seed=config.seed + 1,
        )
    )
    return db, queries


class _ServiceUnderTest:
    """A service on a temp Unix socket, drained and checked on exit.

    ``executor`` overrides the default choice (``parallel`` when
    ``config.jobs > 1``, in-process otherwise): the resilience suite
    passes ``"supervised"``/``"inprocess"`` explicitly and tunes the
    breaker through ``breaker_threshold``/``breaker_cooldown``.
    """

    def __init__(self, config: BenchServeConfig, cache_on: bool, *,
                 executor: str | None = None, jobs: int | None = None,
                 breaker_threshold: int = 5,
                 breaker_cooldown: float = 1.0,
                 shards: int | None = None,
                 shard_host: str = "thread",
                 pruning: bool = True,
                 partitioner: str = "hash",
                 database=None) -> None:
        self._config = config
        self._cache_on = cache_on
        self._executor = executor
        self._jobs = config.jobs if jobs is None else jobs
        self._breaker_threshold = breaker_threshold
        self._breaker_cooldown = breaker_cooldown
        self._shards = shards
        self._shard_host = shard_host
        self._pruning = pruning
        self._partitioner = partitioner
        self._database = database
        self._tmp = tempfile.TemporaryDirectory(prefix="repro-bench-serve-")
        self.address = f"unix:{os.path.join(self._tmp.name, 'serve.sock')}"
        self._exit_code: int | None = None
        self._thread: threading.Thread | None = None
        self.service: QueryService | None = None

    def __enter__(self) -> "_ServiceUnderTest":
        config = self._config
        if self._database is not None:
            db = self._database
        else:
            db, _ = _make_workload(config)
        if self._shards is not None:
            # Sharded cells always route through the ShardedEngine, even
            # at one shard, so the sweep prices the router itself.
            from repro.core.algorithms import create_pipeline
            from repro.shard import ShardedEngine

            engine = ShardedEngine(
                db,
                self._shards,
                lambda: create_pipeline(config.algorithm),
                executor_factory=(
                    (lambda index: create_executor("parallel", jobs=self._jobs))
                    if self._jobs > 1 else None
                ),
                shard_host=self._shard_host,
                pruning=self._pruning,
                partitioner=self._partitioner,
            )
        else:
            if self._executor is None:
                executor = (
                    create_executor("parallel", jobs=self._jobs)
                    if self._jobs > 1 else None
                )
            elif self._executor == "inprocess":
                executor = None
            else:
                executor = create_executor(self._executor, jobs=self._jobs)
            engine = create_engine(db, config.algorithm, executor=executor)
        engine.build_index()
        self.service = QueryService(
            engine,
            ServiceConfig(
                capacity=config.capacity,
                batch_max=config.batch_max,
                cache_capacity=config.cache_capacity if self._cache_on else 0,
                default_time_limit=config.time_limit,
                breaker_threshold=self._breaker_threshold,
                breaker_cooldown=self._breaker_cooldown,
            ),
        )

        def run() -> None:
            self._exit_code = self.service.serve(self.address)

        self._thread = threading.Thread(
            target=run, name="bench-serve-server", daemon=True
        )
        self._thread.start()
        wait_for_service(self.address)
        return self

    def __exit__(self, *exc_info: object) -> None:
        try:
            if exc_info[0] is None:
                with ServiceClient(self.address) as client:
                    client.shutdown()
            else:
                self.service.request_shutdown()
            self._thread.join(timeout=30.0)
            if exc_info[0] is None and self._exit_code != 0:
                raise RuntimeError(
                    f"service exited with code {self._exit_code}, expected 0"
                )
        finally:
            self._tmp.cleanup()


class _ClientTally:
    """One load-generating thread's private counters (merged at the end)."""

    def __init__(self) -> None:
        self.histogram = LatencyHistogram()
        self.attempts = 0
        self.terminal = 0
        self.completed = 0
        self.cache_hits = 0
        self.failures = 0
        self.crashes = 0
        self.overloaded = 0
        self.degraded = 0


def _send_one(client: ServiceClient, query, tally: _ClientTally,
              latency_origin: float, time_limit: float,
              no_cache: bool = False) -> None:
    tally.attempts += 1
    try:
        result = client.query(query, time_limit=time_limit, no_cache=no_cache)
    except ServiceError as exc:
        # Fast rejections are *terminal* answers — the request's fate is
        # settled, nothing was silently dropped.
        if exc.code == "overloaded":
            tally.overloaded += 1
            tally.terminal += 1
            return
        if exc.code == "degraded":
            tally.degraded += 1
            tally.terminal += 1
            return
        raise
    tally.terminal += 1
    tally.histogram.record(time.perf_counter() - latency_origin)
    tally.completed += 1
    if result.get("cache") == "hit":
        tally.cache_hits += 1
    if result.get("timed_out") or result.get("failure"):
        tally.failures += 1
        failure = result.get("failure") or {}
        if failure.get("kind") == "crash":
            tally.crashes += 1


def _run_closed_loop(address: str, queries, config: BenchServeConfig,
                     concurrency: int) -> dict:
    tallies = [_ClientTally() for _ in range(concurrency)]
    barrier = threading.Barrier(concurrency + 1)
    errors: list[Exception] = []

    def worker(thread_index: int) -> None:
        tally = tallies[thread_index]
        try:
            with ServiceClient(address) as client:
                barrier.wait()
                for r in range(config.requests_per_client):
                    # Stagger starting offsets so clients do not move in
                    # lockstep through the query list.
                    query = queries[(thread_index * 3 + r) % len(queries)]
                    _send_one(client, query, tally, time.perf_counter(),
                              config.time_limit)
        except Exception as exc:  # surfaced after the join
            errors.append(exc)
            try:
                barrier.abort()
            except threading.BrokenBarrierError:
                pass

    threads = [
        threading.Thread(target=worker, args=(i,), daemon=True)
        for i in range(concurrency)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    started = time.perf_counter()
    for t in threads:
        t.join()
    wall = time.perf_counter() - started
    if errors:
        raise errors[0]
    return _fold(tallies, wall, {"concurrency": concurrency, "mode": "closed"})


def _run_open_loop(address: str, queries, config: BenchServeConfig,
                   rate: float, connections: int) -> dict:
    tallies = [_ClientTally() for _ in range(connections)]
    next_index = [0]
    index_lock = threading.Lock()
    start_holder = [0.0]
    barrier = threading.Barrier(connections + 1)
    errors: list[Exception] = []

    def worker(thread_index: int) -> None:
        tally = tallies[thread_index]
        try:
            with ServiceClient(address) as client:
                barrier.wait()
                while True:
                    with index_lock:
                        i = next_index[0]
                        if i >= config.open_loop_requests:
                            return
                        next_index[0] += 1
                    departure = start_holder[0] + i / rate
                    delay = departure - time.perf_counter()
                    if delay > 0:
                        time.sleep(delay)
                    # Latency from the scheduled departure: a late send
                    # (all connections busy) counts against the service.
                    _send_one(client, queries[i % len(queries)], tally,
                              departure, config.time_limit)
        except Exception as exc:
            errors.append(exc)
            try:
                barrier.abort()
            except threading.BrokenBarrierError:
                pass

    threads = [
        threading.Thread(target=worker, args=(i,), daemon=True)
        for i in range(connections)
    ]
    for t in threads:
        t.start()
    start_holder[0] = time.perf_counter() + 0.05
    barrier.wait()
    for t in threads:
        t.join()
    wall = time.perf_counter() - start_holder[0]
    if errors:
        raise errors[0]
    return _fold(tallies, wall, {
        "mode": "open", "rate_qps": rate, "connections": connections,
    })


def _fold(tallies: list[_ClientTally], wall: float, extra: dict) -> dict:
    merged = LatencyHistogram()
    attempts = terminal = completed = cache_hits = 0
    failures = crashes = overloaded = degraded = 0
    for tally in tallies:
        merged.merge(tally.histogram)
        attempts += tally.attempts
        terminal += tally.terminal
        completed += tally.completed
        cache_hits += tally.cache_hits
        failures += tally.failures
        crashes += tally.crashes
        overloaded += tally.overloaded
        degraded += tally.degraded
    return {
        **extra,
        "attempts": attempts,
        "terminal_responses": terminal,
        "completed": completed,
        "cache_hits": cache_hits,
        "failures": failures,
        "crashes": crashes,
        "overloaded": overloaded,
        "degraded": degraded,
        "wall_s": wall,
        "throughput_qps": completed / wall if wall > 0 else 0.0,
        "latency_ms": {
            "mean": merged.mean * 1000.0,
            "p50": merged.percentile(50) * 1000.0,
            "p95": merged.percentile(95) * 1000.0,
            "p99": merged.percentile(99) * 1000.0,
            "max": merged.max_value * 1000.0,
        },
    }


def _server_digest(address: str) -> dict:
    with ServiceClient(address) as client:
        stats = client.stats()
    return {
        "batches": stats["batches"],
        "cache": stats["cache"],
        "queue_wait_p99_ms": stats["latency"]["queue_wait"]["p99_s"] * 1000.0,
        "requests": stats["requests"],
    }


# ----------------------------------------------------------------------
# Resilience suite (``--chaos``)
# ----------------------------------------------------------------------

def _overhead_cells(config: BenchServeConfig, queries) -> list[dict]:
    """Supervised-vs-in-process isolation tax, closed loop, cache off."""
    cells: list[dict] = []
    p50_baseline: dict[int, float] = {}
    for executor in ("inprocess", "supervised"):
        for concurrency in config.resilience_concurrency:
            with _ServiceUnderTest(
                config, cache_on=False,
                executor=executor, jobs=config.resilience_jobs,
            ) as under_test:
                cell = _run_closed_loop(
                    under_test.address, queries, config, concurrency
                )
            cell["executor"] = executor
            if executor == "inprocess":
                p50_baseline[concurrency] = cell["latency_ms"]["p50"]
            else:
                base = p50_baseline.get(concurrency)
                if base:
                    cell["p50_overhead_pct"] = (
                        (cell["latency_ms"]["p50"] / base - 1.0) * 100.0
                    )
            cells.append(cell)
    return cells


def _breaker_lifecycle(config: BenchServeConfig, queries) -> dict:
    """Drive the breaker through closed → open → half-open → closed.

    Phase A arms a 100 % ``worker.query`` crash (a storm, not the chaos
    cell's background rate — consecutive failures are what open a
    breaker) and queries until a ``degraded`` rejection proves it open.
    Phase B disarms the fault and probes until a clean answer proves the
    half-open probe closed it again.
    """
    threshold, cooldown = 3, 0.4
    with _ServiceUnderTest(
        config, cache_on=False,
        executor="supervised", jobs=config.resilience_jobs,
        breaker_threshold=threshold, breaker_cooldown=cooldown,
    ) as under_test:
        try:
            faults.inject("worker.query", "crash")
            opened = False
            with ServiceClient(under_test.address) as client:
                for i in range(threshold * 10):
                    try:
                        client.query(
                            queries[i % len(queries)],
                            time_limit=config.time_limit,
                        )
                    except ServiceError as exc:
                        if exc.code == "degraded":
                            opened = True
                            break
                        raise
                state_open = client.stats()["breaker"]["state"]
                faults.clear()
                reclosed = False
                for _ in range(50):
                    time.sleep(cooldown / 2)
                    try:
                        result = client.query(
                            queries[0], time_limit=config.time_limit
                        )
                    except ServiceError as exc:
                        if exc.code == "degraded":
                            continue  # probe not admitted yet, or failed
                        raise
                    if not result.get("failure"):
                        reclosed = True
                        break
                final = client.stats()
        finally:
            faults.clear()
    transitions = final["breaker"]["transitions"]
    cell = {
        "opened": opened,
        "reclosed": reclosed,
        "state_while_open": state_open,
        "state_final": final["breaker"]["state"],
        "transitions": transitions,
        "worker_restarts": (final["workers"] or {}).get("restarts", 0),
    }
    for required in ("closed->open", "open->half_open", "half_open->closed"):
        if not opened or not reclosed or transitions.get(required, 0) < 1:
            raise RuntimeError(
                "breaker lifecycle incomplete: expected closed→open→"
                f"half-open→closed, observed {cell!r}"
            )
    return cell


def _chaos_cell(config: BenchServeConfig, queries) -> dict:
    """Closed-loop load with crashes injected into ~1/N executions.

    Self-asserting: the service must survive the storm (clean drain on
    exit), every request must get a terminal response, the supervised
    pool must show restarts, and the non-success rate must stay bounded.
    """
    load = replace(
        config, requests_per_client=config.chaos_requests_per_client
    )
    concurrency = max(config.resilience_concurrency)
    with _ServiceUnderTest(
        config, cache_on=False,
        executor="supervised", jobs=config.resilience_jobs,
        breaker_threshold=5, breaker_cooldown=0.25,
    ) as under_test:
        try:
            faults.inject(
                "worker.query", "crash", every=config.chaos_crash_every
            )
            cell = _run_closed_loop(
                under_test.address, queries, load, concurrency
            )
            with ServiceClient(under_test.address) as client:
                stats = client.stats()
        finally:
            faults.clear()
    workers = stats["workers"] or {}
    injected_pct = 100.0 / config.chaos_crash_every
    error_pct = (
        100.0 * (cell["crashes"] + cell["degraded"]) / max(1, cell["attempts"])
    )
    cell.update({
        "concurrency": concurrency,
        "crash_every": config.chaos_crash_every,
        "injected_rate_pct": injected_pct,
        "error_rate_pct": error_pct,
        "worker_restarts": workers.get("restarts", 0),
        "breaker": stats["breaker"],
    })
    if cell["terminal_responses"] != cell["attempts"]:
        raise RuntimeError(
            f"chaos cell lost responses: {cell['attempts']} requests, "
            f"{cell['terminal_responses']} terminal responses"
        )
    if cell["crashes"] + cell["degraded"] == 0:
        raise RuntimeError(
            "chaos cell injected crashes but observed none — the fault "
            "site is dead or the load never reached the workers"
        )
    if cell["worker_restarts"] < 1:
        raise RuntimeError("chaos cell killed workers but the pool shows "
                           "zero restarts")
    # Crashes surface as structured answers at roughly the injected rate;
    # 3× + 10pt leaves room for breaker-open bursts on slow hosts.
    bound_pct = min(95.0, 3.0 * injected_pct + 10.0)
    if error_pct > bound_pct:
        raise RuntimeError(
            f"chaos error rate {error_pct:.1f}% exceeds the "
            f"{bound_pct:.1f}% bound for an injected {injected_pct:.1f}%"
        )
    return cell


def _durability_cell(config: BenchServeConfig) -> dict:
    """Durable-mutation tax and recovery proof.

    Streams one mutation batch through a plain engine and through a
    WAL-backed one (a durable journal append + fsync per mutation),
    reports the throughput cost, then warm-starts a fresh engine from
    the store and requires every mutation to replay bit-identically —
    answers included — before compaction folds the journal to zero.
    Self-asserting, like the chaos cell: a broken recovery path fails
    the run instead of skewing a number.
    """
    _, queries = _make_workload(config)

    def ops():
        db, _ = _make_workload(config)
        adds = [graph for _, graph in list(db.items())[:12]]
        return db, adds

    def apply(engine, adds):
        start = time.perf_counter()
        for graph in adds:
            engine.add_graph(graph)
        for gid in range(4):
            engine.remove_graph(gid)
        return time.perf_counter() - start

    db, adds = ops()
    with create_engine(db, config.algorithm) as baseline:
        baseline.build_index()
        base_elapsed = apply(baseline, adds)
        total = len(adds) + 4
        with tempfile.TemporaryDirectory(prefix="repro-bench-wal-") as tmp:
            store_dir = os.path.join(tmp, "store")
            durable_db, durable_adds = ops()
            with create_engine(durable_db, config.algorithm) as durable:
                durable.build_index(store=IndexStore(store_dir))
                durable_elapsed = apply(durable, durable_adds)
                wal_bytes = IndexStore(store_dir).wal.path.stat().st_size
                mutated_fingerprint = database_fingerprint(durable.db)
                expected = [
                    sorted(r.answers) for r in durable.query_many(queries)
                ]
            warm_db, _ = ops()
            with create_engine(warm_db, config.algorithm) as warm:
                warm.build_index(store=IndexStore(store_dir))
                replayed = warm.wal_recovery["replayed"]
                if replayed != total:
                    raise RuntimeError(
                        f"durability cell journaled {total} mutations but "
                        f"recovery replayed {replayed}"
                    )
                if database_fingerprint(warm.db) != mutated_fingerprint:
                    raise RuntimeError(
                        "durability cell recovered a database that is not "
                        "bit-identical to the mutated original"
                    )
                got = [sorted(r.answers) for r in warm.query_many(queries)]
                if got != expected:
                    raise RuntimeError(
                        "durability cell answers diverged after recovery"
                    )
                summary = warm.compact_store()
                if summary["log_depth"] != 0:
                    raise RuntimeError(
                        f"compaction left {summary['log_depth']} journal "
                        "records behind"
                    )
    return {
        "mutations": total,
        "baseline_mut_per_s": total / max(base_elapsed, 1e-9),
        "durable_mut_per_s": total / max(durable_elapsed, 1e-9),
        "overhead_pct": 100.0 * (durable_elapsed / max(base_elapsed, 1e-9) - 1.0),
        "wal_bytes": wal_bytes,
        "replayed": replayed,
        "folded": summary["folded"],
    }


def _sharding_cells(config: BenchServeConfig, queries) -> dict:
    """Scatter-gather shard-scaling sweep, asserted against an unsharded
    reference.

    For every shard count the service's answer to every query must be
    bit-identical to a plain single-engine run — the partition-then-merge
    route may change timings, never answers — and no cell may report a
    degraded or partial result (every shard is up).  A violation raises
    instead of skewing the numbers.
    """
    db, _ = _make_workload(config)
    with create_engine(db, config.algorithm) as reference:
        reference.build_index()
        expected = [sorted(r.answers) for r in reference.query_many(queries)]
    cells: list[dict] = []
    concurrency = max(config.concurrency)
    for shards in config.shard_counts:
        # The host axis: identical fleet, identical answers — the only
        # difference is where the shard engines run.  The thread host
        # serialises CPU-bound matching on the GIL; the process host is
        # the same scatter-gather over per-shard worker processes.
        for shard_host in ("thread", "process"):
            if shards == 1 and shard_host == "process":
                continue  # one process behind a pipe prices nothing new
            with _ServiceUnderTest(
                config, cache_on=False, shards=shards, shard_host=shard_host
            ) as under_test:
                with ServiceClient(under_test.address) as client:
                    for query, answers in zip(queries, expected):
                        result = client.query(
                            query, time_limit=config.time_limit
                        )
                        if result.get("failure") or result.get("timed_out"):
                            raise RuntimeError(
                                f"sharding cell n={shards} "
                                f"host={shard_host} failed a query with "
                                f"every shard up: {result.get('failure')!r}"
                            )
                        if sorted(result["answers"]) != answers:
                            raise RuntimeError(
                                f"sharding cell n={shards} "
                                f"host={shard_host} diverged from the "
                                "unsharded reference: "
                                f"{sorted(result['answers'])} != {answers}"
                            )
                cell = _run_closed_loop(
                    under_test.address, queries, config, concurrency
                )
                with ServiceClient(under_test.address) as client:
                    shard_rows = client.stats()["shards"] or []
            if cell["failures"] or cell["crashes"]:
                raise RuntimeError(
                    f"sharding cell n={shards} host={shard_host} saw "
                    f"{cell['failures']} failures under load with every "
                    "shard up"
                )
            cell.update({
                "shards": shards,
                "shard_host": shard_host,
                "parity": "identical",
                "per_shard_graphs": [row["graphs"] for row in shard_rows],
            })
            cells.append(cell)
    return {"queries": len(expected), "cells": cells}


def _skewed_workload(config: BenchServeConfig):
    """A label-skewed copy of the bench workload for the pruning cells.

    Odd-id graphs get their labels offset past the base label range, so
    modulo placement over two shards gives each shard a disjoint label
    family — every query (a subgraph of one data graph, so single-family
    by construction) is then prunable on exactly one shard.
    """
    from repro.graph.labeled_graph import Graph

    base = generate_database(
        num_graphs=config.num_graphs,
        num_vertices=config.num_vertices,
        avg_degree=config.avg_degree,
        num_labels=config.num_labels,
        seed=config.seed + 7,
        name="bench-serve-skewed",
    )
    db = GraphDatabase(name="bench-serve-skewed")
    for gid, graph in base.items():
        offset = 0 if gid % 2 == 0 else config.num_labels
        db.add_graph_with_id(gid, Graph(
            [label + offset for label in graph.labels],
            [list(graph.neighbors(v)) for v in graph.vertices()],
            name=graph.name,
        ))
    queries = list(
        generate_query_set(
            db,
            num_edges=config.query_edges,
            dense=False,
            size=config.num_queries,
            seed=config.seed + 8,
        )
    )
    return db, queries


def _pruning_cells(config: BenchServeConfig) -> dict:
    """Label-summary pruning on vs off over the skewed workload.

    Both cells must answer bit-identically to the unsharded reference;
    the pruning-on cell must actually skip shards (``shards_pruned`` in
    the service's counters), or the sweep is measuring nothing.
    """
    db, queries = _skewed_workload(config)
    with create_engine(db, config.algorithm) as reference:
        reference.build_index()
        expected = [sorted(r.answers) for r in reference.query_many(queries)]
    cells: list[dict] = []
    concurrency = max(config.concurrency)
    for pruning in (True, False):
        with _ServiceUnderTest(
            config, cache_on=False, shards=2, partitioner="modulo",
            pruning=pruning, database=db,
        ) as under_test:
            with ServiceClient(under_test.address) as client:
                for query, answers in zip(queries, expected):
                    result = client.query(query, time_limit=config.time_limit)
                    if result.get("failure") or result.get("timed_out"):
                        raise RuntimeError(
                            f"pruning cell (pruning={pruning}) failed a "
                            f"query: {result.get('failure')!r}"
                        )
                    if sorted(result["answers"]) != answers:
                        raise RuntimeError(
                            f"pruning cell (pruning={pruning}) diverged "
                            f"from the unsharded reference: "
                            f"{sorted(result['answers'])} != {answers}"
                        )
            cell = _run_closed_loop(
                under_test.address, queries, config, concurrency
            )
            with ServiceClient(under_test.address) as client:
                prune_stats = client.stats()["pruning"]
        if cell["failures"] or cell["crashes"]:
            raise RuntimeError(
                f"pruning cell (pruning={pruning}) saw {cell['failures']} "
                "failures under load with every shard up"
            )
        if pruning and prune_stats["shards_pruned"] < 1:
            raise RuntimeError(
                "pruning cell skipped no shards on the label-skewed "
                "workload — the summary oracle is not firing"
            )
        cell.update({
            "pruning": pruning,
            "parity": "identical",
            "shard_queries": prune_stats["shard_queries"],
            "shards_pruned": prune_stats["shards_pruned"],
            "prune_rate": prune_stats["prune_rate"],
        })
        cells.append(cell)
    return {"queries": len(expected), "shards": 2, "cells": cells}


def run_resilience_bench(config: BenchServeConfig | None = None) -> dict:
    """The ``--chaos`` suite: isolation tax, breaker lifecycle, crash
    storm under load, durable-mutation recovery.  Raises on any
    survivability violation."""
    config = config or BenchServeConfig()
    _, queries = _make_workload(config)
    return {
        "overhead": _overhead_cells(config, queries),
        "breaker_lifecycle": _breaker_lifecycle(config, queries),
        "chaos": _chaos_cell(config, queries),
        "durability": _durability_cell(config),
    }


def run_bench_serve(
    config: BenchServeConfig | None = None, chaos: bool = False
) -> dict:
    """Run the full matrix: {cache off, on} × concurrency levels, closed
    loop, plus one open-loop cell per cache setting.  ``chaos=True``
    appends the self-asserting resilience suite as a ``resilience``
    section."""
    config = config or BenchServeConfig()
    _, queries = _make_workload(config)
    closed: list[dict] = []
    open_loop: list[dict] = []
    for cache_on in (False, True):
        cache_label = "on" if cache_on else "off"
        peak_throughput = 0.0
        for concurrency in config.concurrency:
            with _ServiceUnderTest(config, cache_on) as under_test:
                cell = _run_closed_loop(
                    under_test.address, queries, config, concurrency
                )
                cell["cache"] = cache_label
                cell["server"] = _server_digest(under_test.address)
                closed.append(cell)
                peak_throughput = max(peak_throughput, cell["throughput_qps"])
        rate = config.open_loop_rate or max(1.0, 0.75 * peak_throughput)
        connections = max(config.concurrency)
        with _ServiceUnderTest(config, cache_on) as under_test:
            cell = _run_open_loop(
                under_test.address, queries, config, rate, connections
            )
            cell["cache"] = cache_label
            cell["server"] = _server_digest(under_test.address)
            open_loop.append(cell)
    report = {
        "schema": "repro-bench-serve/1",
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "workload": asdict(config),
        "closed_loop": closed,
        "open_loop": open_loop,
        "sharding": _sharding_cells(config, queries),
        "pruning": _pruning_cells(config),
    }
    if chaos:
        report["resilience"] = run_resilience_bench(config)
    return report


def write_report(report: dict, path: str) -> None:
    atomic_write_text(path, json.dumps(report, indent=2, sort_keys=True) + "\n")
