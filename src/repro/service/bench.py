"""Closed- and open-loop load benchmark for the query service.

Answers the serving-side questions the per-query microbenchmarks cannot:
what throughput does a *resident* engine sustain under concurrent
clients, what do tail latencies look like once queue wait is included,
and how much the result cache buys on repeated workloads.

Two load models, both driven through real sockets and the real client
library:

* **closed loop** — ``concurrency`` clients, each with one connection,
  each sending its next query the moment the previous answer arrives.
  Throughput scales with client count until the service saturates;
  latency hides queueing (each client only ever has one request in
  flight).
* **open loop** — requests depart on a fixed schedule (``rate`` per
  second) regardless of completions, the way independent users arrive.
  Latency is measured from the *scheduled* departure time, so queue
  buildup shows up in the tail instead of being silently absorbed
  (no coordinated omission).

Each cell runs against a fresh service (fresh cache, fresh counters) on a
Unix socket.  Per-thread latencies land in private
:class:`~repro.utils.timing.LatencyHistogram` s merged at reporting time
— the same mergeable histogram the service itself uses.  Results are
written to ``BENCH_serve.json`` by ``repro bench-serve``.
"""

from __future__ import annotations

import json
import os
import platform
import tempfile
import threading
import time
from dataclasses import asdict, dataclass

from repro.core.algorithms import create_engine
from repro.exec import create_executor
from repro.graph.generators import generate_database
from repro.service.client import ServiceClient, ServiceError, wait_for_service
from repro.service.server import QueryService, ServiceConfig
from repro.utils.fsio import atomic_write_text
from repro.utils.timing import LatencyHistogram
from repro.workloads.querysets import generate_query_set

__all__ = ["BenchServeConfig", "run_bench_serve", "write_report"]


@dataclass(frozen=True)
class BenchServeConfig:
    """Workload and matrix knobs for one ``bench-serve`` run."""

    algorithm: str = "CFQL"
    num_graphs: int = 60
    num_vertices: int = 24
    avg_degree: float = 2.8
    num_labels: int = 5
    query_edges: int = 5
    num_queries: int = 12
    requests_per_client: int = 40
    concurrency: tuple[int, ...] = (1, 2, 4)
    jobs: int = 1
    time_limit: float = 60.0
    capacity: int = 64
    batch_max: int = 8
    cache_capacity: int = 128
    #: Open-loop arrival rate in requests/s; None derives ~75 % of the
    #: measured closed-loop throughput so the queue is loaded but stable.
    open_loop_rate: float | None = None
    open_loop_requests: int = 80
    seed: int = 0

    @classmethod
    def quick(cls) -> "BenchServeConfig":
        """CI-sized variant: seconds, not minutes."""
        # Fewer distinct queries than requests per client, so even the
        # single-client cell repeats queries and exercises the cache.
        return cls(
            num_graphs=24,
            num_queries=6,
            requests_per_client=12,
            concurrency=(1, 2),
            open_loop_requests=24,
        )


def _make_workload(config: BenchServeConfig):
    db = generate_database(
        num_graphs=config.num_graphs,
        num_vertices=config.num_vertices,
        avg_degree=config.avg_degree,
        num_labels=config.num_labels,
        seed=config.seed,
        name="bench-serve",
    )
    queries = list(
        generate_query_set(
            db,
            num_edges=config.query_edges,
            dense=False,
            size=config.num_queries,
            seed=config.seed + 1,
        )
    )
    return db, queries


class _ServiceUnderTest:
    """A service on a temp Unix socket, drained and checked on exit."""

    def __init__(self, config: BenchServeConfig, cache_on: bool) -> None:
        self._config = config
        self._cache_on = cache_on
        self._tmp = tempfile.TemporaryDirectory(prefix="repro-bench-serve-")
        self.address = f"unix:{os.path.join(self._tmp.name, 'serve.sock')}"
        self._exit_code: int | None = None
        self._thread: threading.Thread | None = None
        self.service: QueryService | None = None

    def __enter__(self) -> "_ServiceUnderTest":
        config = self._config
        db, _ = _make_workload(config)
        executor = (
            create_executor("parallel", jobs=config.jobs) if config.jobs > 1 else None
        )
        engine = create_engine(db, config.algorithm, executor=executor)
        engine.build_index()
        self.service = QueryService(
            engine,
            ServiceConfig(
                capacity=config.capacity,
                batch_max=config.batch_max,
                cache_capacity=config.cache_capacity if self._cache_on else 0,
                default_time_limit=config.time_limit,
            ),
        )

        def run() -> None:
            self._exit_code = self.service.serve(self.address)

        self._thread = threading.Thread(
            target=run, name="bench-serve-server", daemon=True
        )
        self._thread.start()
        wait_for_service(self.address)
        return self

    def __exit__(self, *exc_info: object) -> None:
        try:
            if exc_info[0] is None:
                with ServiceClient(self.address) as client:
                    client.shutdown()
            else:
                self.service.request_shutdown()
            self._thread.join(timeout=30.0)
            if exc_info[0] is None and self._exit_code != 0:
                raise RuntimeError(
                    f"service exited with code {self._exit_code}, expected 0"
                )
        finally:
            self._tmp.cleanup()


class _ClientTally:
    """One load-generating thread's private counters (merged at the end)."""

    def __init__(self) -> None:
        self.histogram = LatencyHistogram()
        self.completed = 0
        self.cache_hits = 0
        self.failures = 0
        self.overloaded = 0


def _send_one(client: ServiceClient, query, tally: _ClientTally,
              latency_origin: float, time_limit: float) -> None:
    try:
        result = client.query(query, time_limit=time_limit)
    except ServiceError as exc:
        if exc.code == "overloaded":
            tally.overloaded += 1
            return
        raise
    tally.histogram.record(time.perf_counter() - latency_origin)
    tally.completed += 1
    if result.get("cache") == "hit":
        tally.cache_hits += 1
    if result.get("timed_out") or result.get("failure"):
        tally.failures += 1


def _run_closed_loop(address: str, queries, config: BenchServeConfig,
                     concurrency: int) -> dict:
    tallies = [_ClientTally() for _ in range(concurrency)]
    barrier = threading.Barrier(concurrency + 1)
    errors: list[Exception] = []

    def worker(thread_index: int) -> None:
        tally = tallies[thread_index]
        try:
            with ServiceClient(address) as client:
                barrier.wait()
                for r in range(config.requests_per_client):
                    # Stagger starting offsets so clients do not move in
                    # lockstep through the query list.
                    query = queries[(thread_index * 3 + r) % len(queries)]
                    _send_one(client, query, tally, time.perf_counter(),
                              config.time_limit)
        except Exception as exc:  # surfaced after the join
            errors.append(exc)
            try:
                barrier.abort()
            except threading.BrokenBarrierError:
                pass

    threads = [
        threading.Thread(target=worker, args=(i,), daemon=True)
        for i in range(concurrency)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    started = time.perf_counter()
    for t in threads:
        t.join()
    wall = time.perf_counter() - started
    if errors:
        raise errors[0]
    return _fold(tallies, wall, {"concurrency": concurrency, "mode": "closed"})


def _run_open_loop(address: str, queries, config: BenchServeConfig,
                   rate: float, connections: int) -> dict:
    tallies = [_ClientTally() for _ in range(connections)]
    next_index = [0]
    index_lock = threading.Lock()
    start_holder = [0.0]
    barrier = threading.Barrier(connections + 1)
    errors: list[Exception] = []

    def worker(thread_index: int) -> None:
        tally = tallies[thread_index]
        try:
            with ServiceClient(address) as client:
                barrier.wait()
                while True:
                    with index_lock:
                        i = next_index[0]
                        if i >= config.open_loop_requests:
                            return
                        next_index[0] += 1
                    departure = start_holder[0] + i / rate
                    delay = departure - time.perf_counter()
                    if delay > 0:
                        time.sleep(delay)
                    # Latency from the scheduled departure: a late send
                    # (all connections busy) counts against the service.
                    _send_one(client, queries[i % len(queries)], tally,
                              departure, config.time_limit)
        except Exception as exc:
            errors.append(exc)
            try:
                barrier.abort()
            except threading.BrokenBarrierError:
                pass

    threads = [
        threading.Thread(target=worker, args=(i,), daemon=True)
        for i in range(connections)
    ]
    for t in threads:
        t.start()
    start_holder[0] = time.perf_counter() + 0.05
    barrier.wait()
    for t in threads:
        t.join()
    wall = time.perf_counter() - start_holder[0]
    if errors:
        raise errors[0]
    return _fold(tallies, wall, {
        "mode": "open", "rate_qps": rate, "connections": connections,
    })


def _fold(tallies: list[_ClientTally], wall: float, extra: dict) -> dict:
    merged = LatencyHistogram()
    completed = cache_hits = failures = overloaded = 0
    for tally in tallies:
        merged.merge(tally.histogram)
        completed += tally.completed
        cache_hits += tally.cache_hits
        failures += tally.failures
        overloaded += tally.overloaded
    return {
        **extra,
        "completed": completed,
        "cache_hits": cache_hits,
        "failures": failures,
        "overloaded": overloaded,
        "wall_s": wall,
        "throughput_qps": completed / wall if wall > 0 else 0.0,
        "latency_ms": {
            "mean": merged.mean * 1000.0,
            "p50": merged.percentile(50) * 1000.0,
            "p95": merged.percentile(95) * 1000.0,
            "p99": merged.percentile(99) * 1000.0,
            "max": merged.max_value * 1000.0,
        },
    }


def _server_digest(address: str) -> dict:
    with ServiceClient(address) as client:
        stats = client.stats()
    return {
        "batches": stats["batches"],
        "cache": stats["cache"],
        "queue_wait_p99_ms": stats["latency"]["queue_wait"]["p99_s"] * 1000.0,
        "requests": stats["requests"],
    }


def run_bench_serve(config: BenchServeConfig | None = None) -> dict:
    """Run the full matrix: {cache off, on} × concurrency levels, closed
    loop, plus one open-loop cell per cache setting."""
    config = config or BenchServeConfig()
    _, queries = _make_workload(config)
    closed: list[dict] = []
    open_loop: list[dict] = []
    for cache_on in (False, True):
        cache_label = "on" if cache_on else "off"
        peak_throughput = 0.0
        for concurrency in config.concurrency:
            with _ServiceUnderTest(config, cache_on) as under_test:
                cell = _run_closed_loop(
                    under_test.address, queries, config, concurrency
                )
                cell["cache"] = cache_label
                cell["server"] = _server_digest(under_test.address)
                closed.append(cell)
                peak_throughput = max(peak_throughput, cell["throughput_qps"])
        rate = config.open_loop_rate or max(1.0, 0.75 * peak_throughput)
        connections = max(config.concurrency)
        with _ServiceUnderTest(config, cache_on) as under_test:
            cell = _run_open_loop(
                under_test.address, queries, config, rate, connections
            )
            cell["cache"] = cache_label
            cell["server"] = _server_digest(under_test.address)
            open_loop.append(cell)
    return {
        "schema": "repro-bench-serve/1",
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "workload": asdict(config),
        "closed_loop": closed,
        "open_loop": open_loop,
    }


def write_report(report: dict, path: str) -> None:
    atomic_write_text(path, json.dumps(report, indent=2, sort_keys=True) + "\n")
