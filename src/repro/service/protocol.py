"""The wire protocol of the query service: newline-delimited JSON.

One request per line, one response per line, UTF-8, over a Unix or TCP
socket.  Every request is a JSON object with an ``op`` and a client-chosen
``id`` that the response echoes back, so a client may pipeline requests
and still correlate answers::

    → {"id": 1, "op": "query", "graph": {"labels": [0, 1], "edges": [[0, 1]]}}
    ← {"id": 1, "ok": true, "result": {"answers": [0, 2], ...}}

Failure responses carry ``ok: false`` and a structured error with a
stable ``code`` (:data:`ERROR_CODES`) — notably ``overloaded``, the
admission-control rejection a client receives *immediately* when the
request queue is full, instead of a hang.  Per-query algorithmic failures
(OOT/OOM/crash) are *successful* protocol exchanges: they come back as
``ok: true`` with ``result.failure`` set, mirroring
:class:`~repro.core.metrics.QueryResult`.

Graphs travel as ``{"name": ..., "labels": [l0, l1, ...], "edges":
[[u, v], ...]}`` — the JSON twin of the t/v/e exchange format of
:mod:`repro.graph.io`.  See ``docs/SERVICE.md`` for the full spec.

Two optional request fields serve the resilience layer:

* ``deadline_ms`` (query) — an end-to-end latency budget in milliseconds,
  measured from admission.  A request still queued past its deadline is
  shed with a structured ``oot`` answer instead of being executed; a
  dispatched request's kernel time limit is clipped to the remaining
  budget.
* ``request_key`` (add_graph / remove_graph) — a client-generated opaque
  string identifying the *logical* mutation.  The server keeps a bounded
  dedup window of answered keys, so a client that retries after a lost
  response cannot apply the mutation twice.
"""

from __future__ import annotations

import json
import socket

from repro.graph.builder import GraphBuilder
from repro.graph.labeled_graph import Graph
from repro.utils.errors import ReproError

__all__ = [
    "ERROR_CODES",
    "MAX_LINE_BYTES",
    "PROTOCOL_VERSION",
    "RETRYABLE_CODES",
    "ProtocolError",
    "connect",
    "decode_line",
    "encode_message",
    "error_response",
    "format_address",
    "graph_from_wire",
    "graph_key",
    "graph_to_wire",
    "listen",
    "parse_address",
]

#: Bumped on incompatible wire changes; echoed by ``ping`` and ``stats``.
PROTOCOL_VERSION = 1

#: Upper bound on one request line — admission control for memory, not
#: just queue slots (a 4 MiB line is a ~100k-edge query, far beyond any
#: sane subgraph query).
MAX_LINE_BYTES = 4 * 1024 * 1024

#: Stable error codes carried in ``{"ok": false, "error": {"code": ...}}``.
#:
#: * ``bad_request``    — unparsable line or malformed/unknown operation;
#: * ``overloaded``     — the bounded request queue is full (back off and
#:   retry; never queued, never hangs);
#: * ``degraded``       — the circuit breaker is open after consecutive
#:   worker crashes; the error carries ``retry_after_s``, the earliest
#:   time the service will probe the pool again (back off at least that
#:   long and retry);
#: * ``shutting_down``  — the service is draining and accepts no new work;
#: * ``not_found``      — the named entity does not exist (e.g.
#:   ``remove_graph`` of an unknown graph id).  Terminal: retrying the
#:   identical request can only fail the same way;
#: * ``internal``       — unexpected server-side error.
#:
#: ``overloaded`` and ``degraded`` are *retryable*: the request was never
#: executed, so a client may safely resend it after the hinted backoff.
ERROR_CODES = (
    "bad_request", "overloaded", "degraded", "shutting_down", "not_found",
    "internal",
)

#: Error codes a client may retry without risking double execution.
RETRYABLE_CODES = frozenset({"overloaded", "degraded"})


class ProtocolError(ReproError):
    """A malformed message, or an error response surfaced client-side."""

    def __init__(self, message: str, code: str = "bad_request") -> None:
        super().__init__(message)
        self.code = code


# ----------------------------------------------------------------------
# Graph codec
# ----------------------------------------------------------------------

def graph_to_wire(graph: Graph) -> dict:
    """JSON-ready form of a labeled graph."""
    wire = {
        "labels": list(graph.labels),
        "edges": [[u, v] for u, v in graph.edges()],
    }
    if graph.name is not None:
        wire["name"] = graph.name
    return wire


def graph_from_wire(obj) -> Graph:
    """Validate and rebuild a graph from its wire form.

    Raises :class:`ProtocolError` (``bad_request``) on anything malformed,
    so the server can reject a single bad request without trusting the
    graph layer to produce a catchable error.
    """
    if not isinstance(obj, dict):
        raise ProtocolError("graph must be a JSON object")
    labels = obj.get("labels")
    edges = obj.get("edges", [])
    name = obj.get("name")
    if name is not None and not isinstance(name, str):
        raise ProtocolError("graph name must be a string")
    if not isinstance(labels, list) or not labels:
        raise ProtocolError("graph needs a non-empty 'labels' list")
    if not all(isinstance(l, int) and not isinstance(l, bool) and l >= 0
               for l in labels):
        raise ProtocolError("vertex labels must be non-negative integers")
    if not isinstance(edges, list):
        raise ProtocolError("'edges' must be a list of [u, v] pairs")
    builder = GraphBuilder(name=name)
    builder.add_vertices(labels)
    n = len(labels)
    for edge in edges:
        if (
            not isinstance(edge, (list, tuple))
            or len(edge) != 2
            or not all(isinstance(e, int) and not isinstance(e, bool) for e in edge)
        ):
            raise ProtocolError(f"malformed edge {edge!r}; expected [u, v]")
        u, v = edge
        if not (0 <= u < n and 0 <= v < n) or u == v:
            raise ProtocolError(f"edge {edge!r} out of range for {n} vertices")
        if not builder.try_add_edge(u, v):
            raise ProtocolError(f"duplicate edge {edge!r}")
    return builder.build()


def graph_key(graph: Graph) -> str:
    """Canonical cache key for *exact-match* result caching.

    Two requests share a key iff they send the same labeled adjacency
    under the same vertex numbering — deliberately not isomorphism-
    invariant (canonical labeling costs more than the lookup saves; the
    GraphCache-style containment cache handles the isomorphic case).
    """
    edges = ",".join(
        f"{u}-{v}" for u, v in sorted(min((u, v), (v, u)) for u, v in graph.edges())
    )
    return ":".join(str(l) for l in graph.labels) + "|" + edges


# ----------------------------------------------------------------------
# Message framing
# ----------------------------------------------------------------------

def encode_message(obj: dict) -> bytes:
    """One protocol message as a single UTF-8 JSON line."""
    return json.dumps(obj, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_line(line: bytes) -> dict:
    """Parse one received line into a message object."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"message exceeds {MAX_LINE_BYTES} bytes")
    try:
        obj = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"not a JSON line: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError("message must be a JSON object")
    return obj


def error_response(
    request_id, code: str, message: str, retry_after: float | None = None
) -> dict:
    assert code in ERROR_CODES, code
    error: dict = {"code": code, "message": message}
    if retry_after is not None:
        error["retry_after_s"] = retry_after
    return {"id": request_id, "ok": False, "error": error}


# ----------------------------------------------------------------------
# Addresses and sockets
# ----------------------------------------------------------------------

def parse_address(text: str) -> tuple[str, object]:
    """Parse ``unix:<path>`` or ``[host]:<port>`` into (family, address).

    ``unix:/tmp/repro.sock`` → ``("unix", "/tmp/repro.sock")``;
    ``127.0.0.1:7687`` / ``:7687`` → ``("tcp", (host, port))`` with the
    empty host defaulting to localhost.
    """
    if text.startswith("unix:"):
        path = text[len("unix:"):]
        if not path:
            raise ProtocolError("unix address needs a socket path after 'unix:'")
        return ("unix", path)
    host, sep, port_text = text.rpartition(":")
    if not sep:
        raise ProtocolError(
            f"address {text!r} is neither 'unix:<path>' nor '<host>:<port>'"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ProtocolError(f"invalid port {port_text!r} in address {text!r}") from None
    if not 0 <= port <= 65535:
        raise ProtocolError(f"port {port} out of range in address {text!r}")
    return ("tcp", (host or "127.0.0.1", port))


def format_address(family: str, address) -> str:
    if family == "unix":
        return f"unix:{address}"
    host, port = address
    return f"{host}:{port}"


def listen(text: str, backlog: int = 64) -> socket.socket:
    """Bind and listen on a parsed address; returns the server socket."""
    family, address = parse_address(text)
    if family == "unix":
        import os

        try:
            # Replace a stale socket file from a previous unclean exit.
            if os.path.exists(address):
                os.unlink(address)
        except OSError:
            pass
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.bind(address)
    else:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind(address)
    sock.listen(backlog)
    return sock


def connect(text: str, timeout: float | None = None) -> socket.socket:
    """Connect a client socket to a parsed address."""
    family, address = parse_address(text)
    if family == "unix":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    else:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.settimeout(timeout)
    try:
        sock.connect(address)
    except OSError:
        sock.close()
        raise
    return sock
